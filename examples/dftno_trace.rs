//! Figure 3.1.1, regenerated: `DFTNO` node labeling on the paper's 5-node
//! example network.
//!
//! The token starts at the root `r`, visits `b`, `d`, `c` (the chord
//! `b−c` is skipped), backtracks to `r`, then visits `a` — assigning
//! names `r=0, b=1, d=2, c=3, a=4` and propagating the running maximum on
//! every backtrack, exactly as in the figure's steps (i)–(x).
//!
//! ```sh
//! cargo run --example dftno_trace
//! ```

use sno::core::trace::dftno_figure_trace;

fn main() {
    println!("DFTNO on the Figure 3.1.1 network (r,a,b,c,d; chord b−c)\n");
    println!(" step  event      node  η      Max");
    let (rows, etas) = dftno_figure_trace();
    for r in &rows {
        let eta = r.eta.map(|e| e.to_string()).unwrap_or_else(|| "—".into());
        println!(
            " {:>4}  {:<9}  {:<4}  {:<5}  {}",
            r.step, r.event, r.node, eta, r.max
        );
    }
    println!("\nfinal names (paper: r=0, b=1, d=2, c=3, a=4):");
    for (i, name) in ["r", "a", "b", "c", "d"].iter().enumerate() {
        println!("  {name} = {}", etas[i]);
    }
}
