//! Quickstart: orient an arbitrary rooted network.
//!
//! Builds a random connected network, runs `STNO` over the
//! self-stabilizing BFS spanning tree from a *completely arbitrary*
//! initial configuration, and prints the resulting names and chordal edge
//! labels.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rand::SeedableRng;
use sno::core::orientation::format_labels;
use sno::core::stno::{stno_orientation, stno_oriented, Stno};
use sno::engine::daemon::CentralRoundRobin;
use sno::engine::{Network, Simulation};
use sno::graph::{generators, NodeId};
use sno::tree::BfsSpanningTree;

fn main() {
    let n = 12;
    let g = generators::random_connected(n, 8, 42);
    println!(
        "network: {} processors, {} links, root n0",
        g.node_count(),
        g.edge_count()
    );
    let net = Network::new(g, NodeId::new(0));

    // Self-stabilization means *any* starting configuration works.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut sim = Simulation::from_random(&net, Stno::new(BfsSpanningTree), &mut rng);

    let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 1_000_000);
    assert!(run.converged, "STNO stabilizes");
    println!(
        "stabilized in {} moves / {} rounds (silent fixpoint)",
        run.moves, run.rounds
    );

    assert!(stno_oriented(&net, sim.config()), "SP1 ∧ SP2 hold");
    let o = stno_orientation(sim.config());
    println!("\n node  η   edge labels π_p[l] = (η_p − η_q) mod N");
    for p in net.nodes() {
        println!(
            "  n{:<3} {:<3} {}",
            p.index(),
            o.names[p.index()],
            format_labels(&o, p)
        );
    }
    println!(
        "\nthe orientation is a chordal sense of direction: {}",
        o.is_chordal_sense_of_direction(&net)
    );
}
