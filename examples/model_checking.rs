//! Exhaustive verification of Definition 2.1.2 on small instances.
//!
//! Enumerates *every* configuration of each substrate on a small network
//! and checks the two halves of self-stabilization:
//!
//! * **closure** — no transition leaves the legitimate set;
//! * **convergence** — no execution can avoid the legitimate set forever
//!   (under every central schedule for the silent substrates; under the
//!   weakly fair round-robin schedule for the token wave, which never
//!   terminates).
//!
//! ```sh
//! cargo run --release --example model_checking
//! ```

use sno::engine::modelcheck::ModelChecker;
use sno::engine::Network;
use sno::graph::{generators, traverse, NodeId, RootedTree};
use sno::token::{CollinDolev, FixedTreeToken};
use sno::tree::BfsSpanningTree;

fn main() {
    println!("Exhaustive model checking (Definition 2.1.2)\n");

    // --- BFS spanning tree: silent, any-schedule convergence.
    let g = generators::ring(3);
    let net = Network::new(g, NodeId::new(0));
    let mc = ModelChecker::new(&net, &BfsSpanningTree, 10_000_000).unwrap();
    let legit = |c: &[sno::tree::BfsState]| sno::tree::bfs_legit(&net, c);
    let closure = mc.check_closure(legit).expect("closure holds");
    let conv = mc
        .check_convergence_any_schedule(legit)
        .expect("convergence holds");
    println!(
        "BFS tree on a triangle: {} configurations, {} legitimate, {} transitions — closure + any-schedule convergence verified",
        closure.configs, closure.legitimate, conv.transitions
    );

    // --- Collin–Dolev DFS words.
    let g = generators::path(3);
    let net = Network::new(g, NodeId::new(0));
    let mc = ModelChecker::new(&net, &CollinDolev, 10_000_000).unwrap();
    let legit = |c: &[sno::token::DfsPath]| sno::token::cd::cd_legit(&net, c);
    let closure = mc.check_closure(legit).expect("closure holds");
    mc.check_convergence_any_schedule(legit)
        .expect("convergence holds");
    println!(
        "Collin–Dolev on a 3-path: {} configurations, {} legitimate — closure + any-schedule convergence verified",
        closure.configs, closure.legitimate
    );

    // --- The token wave on a frozen tree (never terminates: weakly fair
    //     round-robin convergence).
    let g = generators::star(4);
    let dfs = traverse::first_dfs(&g, NodeId::new(0));
    let tree = RootedTree::from_parents(&g, NodeId::new(0), &dfs.parent).unwrap();
    let proto = FixedTreeToken::from_graph(&g, &tree);
    let net = Network::new(g, NodeId::new(0));
    let mc = ModelChecker::new(&net, &proto, 10_000_000).unwrap();
    let legit = |c: &[sno::token::tok::TokState]| proto.is_legitimate(c);
    let closure = mc.check_closure(legit).expect("closure holds");
    let conv = mc
        .check_convergence_round_robin(legit)
        .expect("convergence holds");
    println!(
        "token wave on a 4-star: {} configurations, {} legitimate, {} schedule transitions — closure + weakly-fair convergence verified",
        closure.configs, closure.legitimate, conv.transitions
    );

    // --- And a negative control: a bogus legitimacy predicate is caught.
    let g = generators::path(2);
    let net = Network::new(g, NodeId::new(0));
    let mc = ModelChecker::new(&net, &sno::engine::examples::HopDistance, 10_000_000).unwrap();
    let bogus = |c: &[u32]| c[1] == 2; // "node 1 holds 2" is not closed
    match mc.check_closure(bogus) {
        Err(v) => println!("\nnegative control: bogus predicate rejected ({v:?})"),
        Ok(_) => unreachable!("the checker must catch the violation"),
    }
}
