//! Exhaustive verification of Definition 2.1.2 on small instances.
//!
//! Runs the fleet-parallel `sno-check` model checker over every
//! configuration of each substrate on a small network and checks the
//! two halves of self-stabilization:
//!
//! * **closure** — no transition leaves the legitimate set;
//! * **convergence** — no execution can avoid the legitimate set forever
//!   (under every central schedule for the silent substrates; under the
//!   weakly fair round-robin schedule for the token wave, which never
//!   terminates).
//!
//! Certificates are deterministic JSON at any thread/shard count; the
//! retired serial `ModelChecker` in `sno::engine::modelcheck` remains
//! the reference semantics, pinned against this checker by
//! `crates/check/tests/modelcheck_lockstep.rs`.
//!
//! ```sh
//! cargo run --release --example model_checking
//! ```

use sno::check::{check, CheckOptions, CheckSpec, Liveness, Seeds, WorkerPool};
use sno::engine::Network;
use sno::graph::{generators, traverse, NodeId, RootedTree};
use sno::token::FixedTreeToken;

fn spec<'a, P: sno::engine::Enumerable>(
    name: &str,
    topology: &str,
    legit: sno::check::PredFn<'a, P>,
    liveness: Liveness,
) -> CheckSpec<'a, P> {
    CheckSpec {
        protocol: name.into(),
        topology: topology.into(),
        legit,
        invariants: Vec::new(),
        closure: true,
        liveness,
        seeds: Seeds::AllConfigs,
        seed_list: None,
        faults: Vec::new(),
    }
}

fn main() {
    println!("Exhaustive model checking (Definition 2.1.2)\n");
    let pool = WorkerPool::new(4);
    let options = CheckOptions {
        threads: 4,
        shards: 4,
        ..CheckOptions::default()
    };

    // --- BFS spanning tree: silent, any-schedule convergence.
    let net = Network::new(generators::ring(3), NodeId::new(0));
    let cert = check(
        &net,
        &sno::tree::BfsSpanningTree,
        &spec("bfs-tree", "ring:3", &sno::tree::bfs_legit, Liveness::Both),
        &options,
        &pool,
    )
    .unwrap();
    assert!(cert.all_hold(), "closure + convergence hold");
    println!(
        "BFS tree on a triangle: {} states, {} legitimate, {} transitions — closure + any-schedule convergence verified",
        cert.states, cert.legitimate, cert.transitions
    );

    // --- Collin–Dolev DFS words.
    let net = Network::new(generators::path(3), NodeId::new(0));
    let cert = check(
        &net,
        &sno::token::CollinDolev,
        &spec(
            "cd-token",
            "path:3",
            &sno::token::cd::cd_legit,
            Liveness::Both,
        ),
        &options,
        &pool,
    )
    .unwrap();
    assert!(cert.all_hold(), "closure + convergence hold");
    println!(
        "Collin–Dolev on a 3-path: {} states, {} legitimate — closure + any-schedule convergence verified",
        cert.states, cert.legitimate
    );

    // --- The token wave on a frozen tree (never terminates: weakly fair
    //     round-robin convergence).
    let g = generators::star(4);
    let dfs = traverse::first_dfs(&g, NodeId::new(0));
    let tree = RootedTree::from_parents(&g, NodeId::new(0), &dfs.parent).unwrap();
    let proto = FixedTreeToken::from_graph(&g, &tree);
    let net = Network::new(g, NodeId::new(0));
    let legit = |_: &Network, c: &[sno::token::tok::TokState]| proto.is_legitimate(c);
    let cert = check(
        &net,
        &proto,
        &spec("fixed-token", "star:4", &legit, Liveness::RoundRobin),
        &options,
        &pool,
    )
    .unwrap();
    assert!(cert.all_hold(), "closure + round-robin convergence hold");
    println!(
        "token wave on a 4-star: {} states, {} legitimate, {} transitions — closure + weakly-fair convergence verified",
        cert.states, cert.legitimate, cert.transitions
    );

    // --- And a negative control: a bogus legitimacy predicate is caught,
    //     with a minimized, replayable counterexample in the certificate.
    let net = Network::new(generators::path(2), NodeId::new(0));
    let bogus = |_: &Network, c: &[u32]| c[1] == 2; // "node 1 holds 2" is not closed
    let cert = check(
        &net,
        &sno::engine::examples::HopDistance,
        &spec("hop", "path:2", &bogus, Liveness::Unfair),
        &options,
        &pool,
    )
    .unwrap();
    match cert.properties.iter().find(|p| p.name == "closure") {
        Some(p) if !p.holds => {
            let cx = p
                .counterexample
                .as_ref()
                .expect("refutations carry a witness");
            println!(
                "\nnegative control: bogus predicate rejected (closure breaks in {} moves: {} → {})",
                cx.stem.len() - 1,
                cx.stem[cx.stem.len() - 2].config,
                cx.stem.last().unwrap().config
            );
        }
        _ => unreachable!("the checker must catch the violation"),
    }
}
