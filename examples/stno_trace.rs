//! Figure 4.1.1, regenerated: `STNO` weight computation and naming on the
//! paper's 5-node example tree.
//!
//! Leaves set `Weight = 1`; the internal node computes 3; the root
//! computes 5 (bottom-up, figure steps (i)–(iii)). The root then takes
//! name 0 and distributes ranges; the nodes settle on the preorder naming
//! `0,1,2,3,4` (top-down, steps (iv)–(vi)).
//!
//! ```sh
//! cargo run --example stno_trace
//! ```

use sno::core::trace::stno_figure_trace;

fn main() {
    println!("STNO on the Figure 4.1.1 tree (root 0; internal 1; leaves 2,3,4)\n");
    println!(" step  phase    node  Weight  η");
    let (rows, weights, etas) = stno_figure_trace();
    for r in &rows {
        println!(
            " {:>4}  {:<7}  n{:<4} {:<7} {}",
            r.step, r.phase, r.node, r.weight, r.eta
        );
    }
    println!("\nfinal weights (paper: 5,3,1,1,1): {weights:?}");
    println!("final names   (paper: 0,1,2,3,4): {etas:?}");
}
