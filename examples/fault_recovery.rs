//! Transient-fault recovery: the self-stabilization promise, live.
//!
//! Stabilizes `STNO` on a random network, then repeatedly corrupts the
//! variables of `k` random processors and measures how long the system
//! takes to re-orient itself — without any external intervention, exactly
//! as Definition 2.1.2 promises.
//!
//! ```sh
//! cargo run --example fault_recovery
//! ```

use rand::SeedableRng;
use sno::core::stno::{stno_oriented, Stno};
use sno::engine::daemon::CentralRoundRobin;
use sno::engine::{faults, Network, Simulation};
use sno::graph::{generators, NodeId};
use sno::tree::BfsSpanningTree;

fn main() {
    let n = 24;
    let g = generators::random_connected(n, 16, 3);
    let net = Network::new(g, NodeId::new(0));
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);

    let mut sim = Simulation::from_random(&net, Stno::new(BfsSpanningTree), &mut rng);
    let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 2_000_000);
    println!(
        "initial stabilization from an arbitrary configuration: {} moves / {} rounds",
        run.moves, run.rounds
    );
    assert!(stno_oriented(&net, sim.config()));

    println!("\n  k corrupted | recovery moves | recovery rounds | re-oriented");
    println!("  ------------+----------------+-----------------+------------");
    for k in [1usize, 2, 4, 8, 16, 24] {
        let hit = faults::corrupt_random(&mut sim, k, &mut rng);
        debug_assert_eq!(hit.len(), k);
        let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 2_000_000);
        let ok = stno_oriented(&net, sim.config());
        println!(
            "  {:>11} | {:>14} | {:>15} | {}",
            k, run.moves, run.rounds, ok
        );
        assert!(ok, "the system always recovers");
    }
    println!("\nevery fault healed without restart or reinitialization.");
}
