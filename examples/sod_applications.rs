//! What the chordal sense of direction buys you (Figure 2.2.1 + the
//! message-complexity motivation).
//!
//! 1. Reproduces the Figure 2.2.1 setting: a ring with chords, every edge
//!    labeled with the cyclic distance at one end and its inverse modulo
//!    `N` at the other.
//! 2. Demonstrates neighbor identification by name with zero
//!    communication.
//! 3. Quantifies Santoro's claim: a depth-first traversal needs `2m`
//!    messages unoriented but only `2(n−1)` once oriented.
//!
//! ```sh
//! cargo run --example sod_applications
//! ```

use sno::core::apps::compare_traversals;
use sno::core::orientation::golden_dfs_orientation;
use sno::core::sod::{verify_neighbor_identification, NeighborDirectory};
use sno::engine::Network;
use sno::graph::{generators, NodeId, Port};

fn main() {
    // --- Figure 2.2.1: chordal sense of direction on a ring with chords.
    let n = 8;
    let g = generators::ring_with_chords(n, 3, 9);
    let net = Network::new(g, NodeId::new(0));
    // Label the ring by the identity naming (node i is the i-th on the
    // cycle), mirroring the figure.
    let names: Vec<u32> = (0..n as u32).collect();
    let o = sno::core::Orientation::from_names(&net, names);
    println!("Figure 2.2.1 — chordal labels on a ring of {n} with 3 chords");
    println!("(each edge: label d at one end, N − d at the other)\n");
    for (u, v) in net.graph().edges() {
        let lu = net.graph().port_to(u, v).unwrap();
        let lv = net.graph().port_to(v, u).unwrap();
        let du = o.labels[u.index()][lu.index()];
        let dv = o.labels[v.index()][lv.index()];
        println!("  edge {u}−{v}: δ({u},{v}) = {du}, δ({v},{u}) = {dv} = {n} − {du}");
        assert_eq!((du + dv) % n as u32, 0);
    }
    assert!(o.is_chordal_sense_of_direction(&net));

    // --- Neighbor identification with zero communication.
    let checked = verify_neighbor_identification(&net, &o);
    println!("\nneighbor identification: {checked} (node,port) pairs derived from labels alone");
    let dir = NeighborDirectory::of(&o, NodeId::new(0), net.n_bound());
    println!(
        "node n0 knows, without asking: port p0 leads to name {}, p1 to {}",
        dir.names[Port::new(0).index()],
        dir.names[Port::new(1).index()],
    );

    // --- The message-complexity gap, across densities.
    println!("\nDFS traversal messages, unoriented (2m) vs oriented (2(n−1)):");
    println!("  topology       |    n |    m | unoriented | oriented | saved");
    println!("  ---------------+------+------+------------+----------+------");
    for t in generators::Topology::ALL {
        let g = t.build(16, 5);
        let net = Network::new(g, NodeId::new(0));
        let (n, m) = (net.node_count(), net.graph().edge_count());
        let c = compare_traversals(&net);
        println!(
            "  {:<14} | {:>4} | {:>4} | {:>10} | {:>8} | {:>4}",
            t.to_string(),
            n,
            m,
            c.unoriented,
            c.oriented,
            c.unoriented - c.oriented
        );
    }
    // --- Zero-setup convergecast: every node knows its DFS-tree parent
    //     from the labels alone (the largest-named smaller neighbor).
    println!("\nzero-setup convergecast (n−1 messages, no tree construction):");
    for t in [
        generators::Topology::Complete,
        generators::Topology::RandomDense,
    ] {
        let g = t.build(16, 5);
        let net = Network::new(g, NodeId::new(0));
        let o = golden_dfs_orientation(&net);
        let rep = sno::core::sod::convergecast_oriented(&net, &o);
        println!(
            "  {}: {} messages, {} reports aggregated at the root",
            t, rep.messages, rep.reports_at_root
        );
    }

    // Sanity: the golden orientation really is an orientation.
    let net = Network::new(generators::complete(10), NodeId::new(0));
    assert!(golden_dfs_orientation(&net).satisfies_spec(&net));
}
