//! The standard scenario-fleet campaign: 576 simulations across three
//! topology families, two sizes, all six protocol stacks, two daemons,
//! and two fault plans — executed in parallel, aggregated into per-cell
//! moves/steps/rounds percentiles and convergence rates, and written to
//! `BENCH_campaign.json` (the `sno-lab/v1` interchange format).
//!
//! The report is bit-for-bit deterministic in the matrix: re-running this
//! example (on any machine, with any thread count) produces the same
//! JSON.
//!
//! ```sh
//! cargo run --release --example campaign
//! ```

use std::time::Instant;

use sno::graph::GeneratorSpec;
use sno::lab::{run_campaign, DaemonSpec, FaultPlan, ProtocolSpec, ScenarioMatrix};

fn main() {
    let matrix = ScenarioMatrix::new("standard-campaign")
        .topologies([
            GeneratorSpec::Ring,
            GeneratorSpec::Star,
            GeneratorSpec::RandomSparse { extra_per_node: 2 },
        ])
        .sizes([12, 24])
        // Both protocols, every substrate: the oracle regimes the paper's
        // O(n)/O(h) bounds are phrased in, plus the full self-stabilizing
        // stacks (DFTC token circulation, BFS and Collin–Dolev trees).
        .protocols(ProtocolSpec::ALL)
        // Randomized-action daemons; deterministic-action schedulers can
        // starve DFTNO's Edgelabel repair (see ROADMAP open items / E12).
        .daemons([DaemonSpec::CentralRandom, DaemonSpec::Distributed])
        .faults([FaultPlan::None, FaultPlan::AfterConvergence { hits: 3 }])
        .seeds(0, 4)
        .max_steps(30_000_000);

    println!(
        "campaign `{}`: {} cells × {} seeds = {} simulations\n",
        matrix.name,
        matrix.cells().len(),
        matrix.seeds_per_cell,
        matrix.run_count()
    );

    let start = Instant::now();
    let report = run_campaign(&matrix);
    let elapsed = start.elapsed();

    println!("{}", report.to_markdown());
    println!(
        "{} of {} runs converged ({:.1}%) in {:.2?} wall time",
        report.total_converged,
        report.total_runs,
        100.0 * report.convergence_rate(),
        elapsed
    );

    report
        .write_json("BENCH_campaign.json")
        .expect("write report");
    println!(
        "wrote BENCH_campaign.json ({} bytes)",
        report.to_json().len()
    );

    assert!(report.total_runs >= 200, "fleet-scale campaign");
    let faultless_failures: Vec<_> = report
        .cells
        .iter()
        .filter(|c| c.converged < c.runs)
        .map(|c| format!("{} n={} {} {}", c.topology, c.nodes, c.protocol, c.daemon))
        .collect();
    assert!(
        faultless_failures.is_empty(),
        "every cell must fully converge under randomized-action daemons: {faultless_failures:?}"
    );
}
