//! Topology mutation events and their incremental-repair descriptors.
//!
//! The paper's fault model corrupts *state*; production rooted networks
//! are additionally defined by churn — links failing, links appearing,
//! processors crashing and (re)joining. This module names those events
//! ([`TopologyEvent`]) and describes exactly how each one reshapes the
//! CSR arrays ([`CsrDelta`]), so that every consumer keeping flat
//! per-half-edge side tables (the engine's port-dirty guard cache in
//! particular) can **splice** its arrays in lockstep with the graph
//! instead of rebuilding them.
//!
//! # The incremental-repair contract
//!
//! [`Graph::add_edge`], [`Graph::remove_edge`], [`Graph::add_node`], and
//! [`Graph::detach_node`](crate::Graph::detach_node) mutate the CSR
//! arrays in place and return deltas with this invariant: rebuilding
//! from scratch with [`Graph::from_edges`](crate::Graph::from_edges)
//! over the equivalent edge log produces a **bit-identical** graph —
//! same offsets, same flat neighbor array, same back ports, same
//! [`csr_index`](crate::Graph::csr_index) numbering. Concretely:
//!
//! * **adding** an edge appends one port at each endpoint (ports of
//!   other edges keep their numbers), inserting two slots into the flat
//!   arrays;
//! * **removing** an edge deletes one port at each endpoint and shifts
//!   that endpoint's higher-numbered ports down by one (edge-log order
//!   compaction), deleting two slots and patching the back ports that
//!   named the shifted ports;
//! * **appending** a node grows `offsets` by one empty range;
//! * **detaching** a node removes its incident edges one at a time
//!   (highest port first), leaving a degree-0 node — `NodeId`s are
//!   *stable*, departed processors become zombies rather than
//!   renumbering every per-node array downstream.
//!
//! The proptest suite (`tests/topology_mutation.rs` at the workspace
//! root) drives random event sequences and asserts the
//! incremental-vs-rebuild equality.

use std::fmt;

use crate::NodeId;

/// One dynamic-topology fault: the unit the engine applies atomically
/// between steps and the lab schedules from a [`FaultPlan`].
///
/// [`FaultPlan`]: https://docs.rs/sno-lab
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TopologyEvent {
    /// A new bidirectional link appears between two existing processors.
    LinkAdd {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// An existing bidirectional link fails.
    LinkFail {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// A processor crashes: all incident links vanish and its state is
    /// dropped. The `NodeId` remains valid (a degree-0 zombie) so no
    /// per-node array anywhere needs renumbering.
    NodeCrash {
        /// The crashed processor (never the root).
        node: NodeId,
    },
    /// A fresh processor joins (at the next free `NodeId`), linking to
    /// the given existing processors. Arrivals boot with a fresh state
    /// — `random_state` under an adversarial arrival, `initial_state`
    /// otherwise.
    NodeJoin {
        /// Existing processors the arrival links to (distinct, ≥ 1).
        links: Vec<NodeId>,
    },
}

impl fmt::Display for TopologyEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyEvent::LinkAdd { u, v } => write!(f, "link-add({}-{})", u.index(), v.index()),
            TopologyEvent::LinkFail { u, v } => {
                write!(f, "link-fail({}-{})", u.index(), v.index())
            }
            TopologyEvent::NodeCrash { node } => write!(f, "node-crash({})", node.index()),
            TopologyEvent::NodeJoin { links } => {
                write!(f, "node-join([")?;
                for (i, q) in links.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", q.index())?;
                }
                write!(f, "])")
            }
        }
    }
}

/// How one CSR mutation reshaped the flat half-edge arrays — the splice
/// recipe for side tables aligned with
/// [`csr_index`](crate::Graph::csr_index).
///
/// Apply the removals first (descending over `removed`, which indexes
/// the **old** layout), then the insertions (ascending over `inserted`,
/// which indexes the **new** layout). Slots not named here keep their
/// values; only their positions shift, exactly as the graph's own flat
/// arrays shifted.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CsrDelta {
    /// Flat-array slots deleted by this mutation, as indices into the
    /// **pre-mutation** layout, ascending.
    pub removed: Vec<usize>,
    /// Flat-array slots created by this mutation, as indices into the
    /// **post-mutation** layout, ascending.
    pub inserted: Vec<usize>,
}

impl CsrDelta {
    /// Number of slot edits (removals + insertions) this delta performs.
    pub fn edits(&self) -> usize {
        self.removed.len() + self.inserted.len()
    }

    /// Splices a side table aligned with the flat CSR arrays: removals
    /// first (descending, old indices), then insertions (ascending, new
    /// indices) filling fresh slots with `fill`.
    pub fn splice<T: Clone>(&self, table: &mut Vec<T>, fill: T) {
        for &i in self.removed.iter().rev() {
            table.remove(i);
        }
        for &i in &self.inserted {
            table.insert(i, fill.clone());
        }
    }
}

/// The full repair record of one applied [`TopologyEvent`]: the CSR
/// splices (in application order) plus the affected processors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyRepair {
    /// CSR splices, to be mirrored **in order** into aligned side
    /// tables (a multi-edge event like `NodeCrash` produces one delta
    /// per removed edge, each relative to the intermediate layout).
    pub deltas: Vec<CsrDelta>,
    /// Processors whose port space or membership changed: link
    /// endpoints, the crashed node plus its former neighbors, or the
    /// arrival plus its link targets. (Neighbors of these may still
    /// need derived-cache refreshes downstream; this names only the
    /// direct footprint.)
    pub endpoints: Vec<NodeId>,
    /// The arrival's `NodeId` for [`TopologyEvent::NodeJoin`].
    pub joined: Option<NodeId>,
}

impl TopologyRepair {
    /// Total CSR slot edits across all deltas.
    pub fn edits(&self) -> usize {
        self.deltas.iter().map(CsrDelta::edits).sum()
    }
}
