//! Deterministic and seeded topology generators.
//!
//! All generators return connected graphs with deterministic port numbering,
//! so simulations driven by seeded daemons are fully reproducible. The
//! `paper_*` generators reconstruct the exact example instances used in the
//! paper's figures.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{Graph, GraphBuilder, NodeId};

/// A single node and no edges (the degenerate rooted network).
pub fn singleton() -> Graph {
    Graph::from_edges(1, &[]).expect("singleton is valid")
}

/// A path `0 − 1 − ⋯ − (n−1)`.
///
/// Rooted at node 0 this is the worst case for the `O(h)` bound of `STNO`
/// (`h = n − 1`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n > 0, "path needs at least one node");
    let edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Graph::from_edges(n, &edges).expect("path is valid")
}

/// A ring of `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "ring needs at least three nodes");
    let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Graph::from_edges(n, &edges).expect("ring is valid")
}

/// A star: node 0 is the hub connected to all `n − 1` leaves.
///
/// Rooted at the hub this is the best case for the `O(h)` bound of `STNO`
/// (`h = 1`).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs at least two nodes");
    let edges: Vec<_> = (1..n).map(|i| (0, i)).collect();
    Graph::from_edges(n, &edges).expect("star is valid")
}

/// The complete graph `K_n`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete(n: usize) -> Graph {
    assert!(n >= 2, "complete graph needs at least two nodes");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.edge(u, v);
        }
    }
    b.build().expect("complete graph is valid")
}

/// A `w × h` grid (4-neighborhood), nodes numbered row-major.
///
/// # Panics
///
/// Panics if `w == 0 || h == 0`.
pub fn grid(w: usize, h: usize) -> Graph {
    assert!(w > 0 && h > 0, "grid needs positive dimensions");
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let u = y * w + x;
            if x + 1 < w {
                b.edge(u, u + 1);
            }
            if y + 1 < h {
                b.edge(u, u + w);
            }
        }
    }
    b.build().expect("grid is valid")
}

/// A `w × h` torus (grid with wrap-around edges); requires `w, h ≥ 3` so the
/// graph stays simple.
///
/// # Panics
///
/// Panics if `w < 3 || h < 3`.
pub fn torus(w: usize, h: usize) -> Graph {
    assert!(w >= 3 && h >= 3, "torus needs dimensions of at least three");
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let u = y * w + x;
            b.edge(u, y * w + (x + 1) % w);
            b.edge(u, ((y + 1) % h) * w + x);
        }
    }
    b.build().expect("torus is valid")
}

/// The `d`-dimensional hypercube `Q_d` with `2^d` nodes.
///
/// # Panics
///
/// Panics if `d == 0` or `d > 20`.
pub fn hypercube(d: u32) -> Graph {
    assert!(
        (1..=20).contains(&d),
        "hypercube dimension must be in 1..=20"
    );
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for bit in 0..d {
            let v = u ^ (1 << bit);
            if u < v {
                b.edge(u, v);
            }
        }
    }
    b.build().expect("hypercube is valid")
}

/// A complete `arity`-ary tree of the given `depth` (depth 0 = single root).
///
/// Node 0 is the root; children of node `u` are `u*arity + 1 ..= u*arity +
/// arity` in level order. Its height equals `depth`, so with
/// `n = Θ(arity^depth)` the height is `Θ(log n)` — used to separate the
/// `O(h)` and `O(n)` stabilization bounds empirically.
///
/// # Panics
///
/// Panics if `arity == 0`.
pub fn balanced_tree(arity: usize, depth: u32) -> Graph {
    assert!(arity > 0, "arity must be positive");
    // n = 1 + arity + arity^2 + … + arity^depth
    let mut n = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= arity;
        n += level;
    }
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for c in 1..=arity {
            let child = u * arity + c;
            if child < n {
                b.edge(u, child);
            }
        }
    }
    b.build().expect("balanced tree is valid")
}

/// A caterpillar: a spine path of `spine` nodes, each carrying `legs` leaf
/// nodes. Height from node 0 is `spine` (last spine node's leg), while
/// `n = spine · (1 + legs)`; lets experiments vary `n` at nearly fixed `h`.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine > 0, "caterpillar needs a spine");
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::new(n);
    for s in 0..spine.saturating_sub(1) {
        b.edge(s, s + 1);
    }
    let mut next = spine;
    for s in 0..spine {
        for _ in 0..legs {
            b.edge(s, next);
            next += 1;
        }
    }
    b.build().expect("caterpillar is valid")
}

/// A lollipop: a clique of `k` nodes with a path of `len` nodes attached to
/// clique node 0. A classic stress topology mixing high and low degree.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn lollipop(k: usize, len: usize) -> Graph {
    assert!(k >= 2, "lollipop clique needs at least two nodes");
    let n = k + len;
    let mut b = GraphBuilder::new(n);
    for u in 0..k {
        for v in (u + 1)..k {
            b.edge(u, v);
        }
    }
    for i in 0..len {
        let prev = if i == 0 { 0 } else { k + i - 1 };
        b.edge(prev, k + i);
    }
    b.build().expect("lollipop is valid")
}

/// A wheel: a hub (node 0) connected to every node of an outer ring of
/// `n − 1` nodes.
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "wheel needs at least four nodes");
    let mut b = GraphBuilder::new(n);
    let ring_len = n - 1;
    for i in 0..ring_len {
        b.edge(0, 1 + i);
        b.edge(1 + i, 1 + (i + 1) % ring_len);
    }
    b.build().expect("wheel is valid")
}

/// A hub graph: nodes `0..h` are hubs wired to **every** other node
/// (including each other), nodes `h..n` are spokes — a power-law-ish
/// degree profile (h nodes of degree `n − 1`, the rest of degree `h`)
/// between the star (`h = 1`) and the clique (`h = n`).
///
/// The `seed` shuffles the spoke attachment order, and with it the hubs'
/// port numbering, so campaigns over a seed range see different
/// port-local traversal orders on the same degree profile. The
/// *topology* is the same for every seed; only port numbers move.
///
/// This is the skewed-degree family the engine's star gate only proxies:
/// several hubs keep the high-degree worst case while giving an edge-cut
/// partitioner something meaningful to balance.
///
/// # Panics
///
/// Panics if `h == 0` or `n <= h`.
pub fn hubs(n: usize, h: usize, seed: u64) -> Graph {
    assert!(h > 0, "hub graph needs at least one hub");
    assert!(n > h, "hub graph needs at least one spoke");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Hub–hub clique first: deterministic low ports between hubs.
    for u in 0..h {
        for v in (u + 1)..h {
            b.edge(u, v);
        }
    }
    // Hub–spoke edges in a seeded order (the shuffle permutes ports).
    let mut spoke_edges: Vec<(usize, usize)> =
        (0..h).flat_map(|u| (h..n).map(move |v| (u, v))).collect();
    spoke_edges.shuffle(&mut rng);
    b.edges(spoke_edges);
    b.build().expect("hub graph is valid")
}

/// The complete bipartite graph `K_{a,b}`: nodes `0..a` on one side,
/// `a..a+b` on the other.
///
/// # Panics
///
/// Panics if `a == 0 || b == 0`.
pub fn complete_bipartite(a: usize, b_size: usize) -> Graph {
    assert!(a > 0 && b_size > 0, "both sides need nodes");
    let mut b = GraphBuilder::new(a + b_size);
    for u in 0..a {
        for v in 0..b_size {
            b.edge(u, a + v);
        }
    }
    b.build().expect("complete bipartite is valid")
}

/// The Petersen graph: 10 nodes, 15 edges, 3-regular, girth 5 — a
/// classic adversarial instance for traversal algorithms.
pub fn petersen() -> Graph {
    let mut b = GraphBuilder::new(10);
    // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i — i+5.
    for i in 0..5 {
        b.edge(i, (i + 1) % 5);
        b.edge(5 + i, 5 + (i + 2) % 5);
        b.edge(i, 5 + i);
    }
    b.build().expect("petersen is valid")
}

/// A uniformly seeded random tree built by random attachment: node `i`
/// attaches to a uniformly chosen node `< i`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n > 0, "random tree needs at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let parent = rng.random_range(0..i);
        b.edge(parent, i);
    }
    b.build().expect("random tree is valid")
}

/// A connected random graph: a random spanning tree (random attachment)
/// plus `extra` additional distinct random edges.
///
/// `extra` is silently capped at the number of available non-tree slots, so
/// asking for a very dense graph degrades to the complete graph.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    assert!(n > 0, "random graph needs at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut present: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    for i in 1..n {
        let parent = rng.random_range(0..i);
        edges.push((parent, i));
        present.insert((parent.min(i), parent.max(i)));
    }
    let max_extra = n * (n - 1) / 2 - edges.len();
    let extra = extra.min(max_extra);
    let mut added = 0;
    while added < extra {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if present.insert(key) {
            edges.push((u, v));
            added += 1;
        }
    }
    // Shuffle edge insertion order so port numbering is also randomized,
    // then rebuild. Keeps the adversarial flavor of arbitrary networks.
    edges.shuffle(&mut rng);
    Graph::from_edges(n, &edges).expect("random connected graph is valid")
}

/// A ring of `n` nodes with `chords` random chords — the shape of the
/// paper's Figure 2.2.1 (chordal sense of direction).
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn ring_with_chords(n: usize, chords: usize, seed: u64) -> Graph {
    assert!(n >= 4, "chordal ring needs at least four nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let mut present: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    for i in 0..n {
        let j = (i + 1) % n;
        b.edge(i, j);
        present.insert((i.min(j), i.max(j)));
    }
    let max_chords = n * (n - 1) / 2 - n;
    let chords = chords.min(max_chords);
    let mut added = 0;
    while added < chords {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if present.insert(key) {
            b.edge(u, v);
            added += 1;
        }
    }
    b.build().expect("chordal ring is valid")
}

/// The 5-node example network of the paper's **Figure 3.1.1** (DFTNO node
/// labeling), with node 0 = `r`, 1 = `a`, 2 = `b`, 3 = `c`, 4 = `d`.
///
/// Edges: `r−b`, `r−a`, `b−d`, `b−c` (the chord), `d−c`. Port order is
/// arranged so the deterministic depth-first traversal from `r` visits
/// `r, b, d, c`, backtracks to `r`, then visits `a` — reproducing the
/// figure's trace exactly (names `r=0, b=1, d=2, c=3, a=4`).
pub fn paper_example_dftno() -> Graph {
    // Port order is edge-insertion order, so list r's edge to b before r-a,
    // b's edge to r first (parent), then d, then the chord to c.
    const R: usize = 0;
    const A: usize = 1;
    const B: usize = 2;
    const C: usize = 3;
    const D: usize = 4;
    Graph::from_edges(5, &[(R, B), (B, D), (D, C), (B, C), (R, A)]).expect("paper example is valid")
}

/// Human-readable names for [`paper_example_dftno`] nodes, indexed by node
/// id (`r`, `a`, `b`, `c`, `d`).
pub fn paper_example_dftno_names() -> [&'static str; 5] {
    ["r", "a", "b", "c", "d"]
}

/// The 5-node example tree of the paper's **Figure 4.1.1** (STNO weights and
/// naming): a root with two children, the first child having two leaf
/// children.
///
/// Node 0 = root, node 1 = internal child, nodes 2 and 3 = its leaves,
/// node 4 = the root's second (leaf) child. Weights stabilize to
/// `w(2)=w(3)=w(4)=1`, `w(1)=3`, `w(0)=5`, and names to the preorder
/// `0,1,2,3,4` — the figure's final labeling.
pub fn paper_example_stno() -> Graph {
    Graph::from_edges(5, &[(0, 1), (1, 2), (1, 3), (0, 4)]).expect("paper tree is valid")
}

/// Kinds of topology, for sweep-style experiments and property tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// [`path`]
    Path,
    /// [`ring`]
    Ring,
    /// [`star`]
    Star,
    /// [`complete`]
    Complete,
    /// [`random_tree`]
    RandomTree,
    /// [`random_connected`] with `2n` extra edges
    RandomSparse,
    /// [`random_connected`] with `n²/4` extra edges
    RandomDense,
    /// [`hypercube`] (rounds `n` down to a power of two)
    Hypercube,
}

impl Topology {
    /// All topology kinds, for exhaustive sweeps.
    pub const ALL: [Topology; 8] = [
        Topology::Path,
        Topology::Ring,
        Topology::Star,
        Topology::Complete,
        Topology::RandomTree,
        Topology::RandomSparse,
        Topology::RandomDense,
        Topology::Hypercube,
    ];

    /// Instantiates this topology with roughly `n` nodes.
    pub fn build(self, n: usize, seed: u64) -> Graph {
        match self {
            Topology::Path => path(n.max(1)),
            Topology::Ring => ring(n.max(3)),
            Topology::Star => star(n.max(2)),
            Topology::Complete => complete(n.clamp(2, 64)),
            Topology::RandomTree => random_tree(n.max(1), seed),
            Topology::RandomSparse => random_connected(n.max(2), 2 * n, seed),
            Topology::RandomDense => random_connected(n.max(2), n * n / 4, seed),
            Topology::Hypercube => {
                let d = (usize::BITS - n.max(2).leading_zeros() - 1).max(1);
                hypercube(d)
            }
        }
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Topology::Path => "path",
            Topology::Ring => "ring",
            Topology::Star => "star",
            Topology::Complete => "complete",
            Topology::RandomTree => "random-tree",
            Topology::RandomSparse => "random-sparse",
            Topology::RandomDense => "random-dense",
            Topology::Hypercube => "hypercube",
        };
        f.write_str(s)
    }
}

/// Returns the canonical root used throughout the experiments: node 0.
pub fn default_root() -> NodeId {
    NodeId::new(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert!(g.is_tree());
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert_eq!(g.degree(NodeId::new(2)), 2);
    }

    #[test]
    fn ring_shape() {
        let g = ring(6);
        assert_eq!(g.edge_count(), 6);
        assert!(g.nodes().all(|u| g.degree(u) == 2));
        assert!(g.is_connected());
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.degree(NodeId::new(0)), 6);
        assert!((1..7).all(|i| g.degree(NodeId::new(i)) == 1));
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
        assert!(g.nodes().all(|u| g.degree(u) == 4));
    }

    #[test]
    fn hubs_shape_and_seed_behavior() {
        let g = hubs(20, 3, 1);
        assert_eq!(g.node_count(), 20);
        // Hub–hub clique + every hub wired to every spoke.
        assert_eq!(g.edge_count(), 3 + 3 * 17);
        for i in 0..3 {
            assert_eq!(g.degree(NodeId::new(i)), 19, "hub {i}");
        }
        for i in 3..20 {
            assert_eq!(g.degree(NodeId::new(i)), 3, "spoke {i}");
        }
        assert!(g.is_connected());
        // Seeds permute ports, not the topology.
        assert_eq!(hubs(20, 3, 4), hubs(20, 3, 4), "deterministic in seed");
        let a = hubs(20, 3, 1);
        let b = hubs(20, 3, 2);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_ne!(a, b, "port numbering differs across seeds");
        // h = 1 degenerates to a star.
        assert_eq!(hubs(9, 1, 0).degree(NodeId::new(0)), 8);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // vertical + horizontal
        assert!(g.is_connected());
    }

    #[test]
    fn torus_is_regular() {
        let g = torus(4, 3);
        assert!(g.nodes().all(|u| g.degree(u) == 4));
        assert_eq!(g.edge_count(), 2 * 12);
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert!(g.nodes().all(|u| g.degree(u) == 4));
        assert!(g.is_connected());
    }

    #[test]
    fn balanced_tree_shape() {
        let g = balanced_tree(2, 3);
        assert_eq!(g.node_count(), 15);
        assert!(g.is_tree());
        let g3 = balanced_tree(3, 2);
        assert_eq!(g3.node_count(), 13);
        assert!(g3.is_tree());
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 2);
        assert_eq!(g.node_count(), 12);
        assert!(g.is_tree());
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(4, 3);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 6 + 3);
        assert!(g.is_connected());
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(7);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 2 * 6);
        assert_eq!(g.degree(NodeId::new(0)), 6, "hub");
        assert!((1..7).all(|i| g.degree(NodeId::new(i)) == 3), "rim");
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert!((0..3).all(|i| g.degree(NodeId::new(i)) == 4));
        assert!((3..7).all(|i| g.degree(NodeId::new(i)) == 3));
        // Bipartite: no edge within a side.
        for u in 0..3 {
            for v in 0..3 {
                if u != v {
                    assert_eq!(g.port_to(NodeId::new(u), NodeId::new(v)), None);
                }
            }
        }
    }

    #[test]
    fn petersen_shape() {
        let g = petersen();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 15);
        assert!(g.nodes().all(|u| g.degree(u) == 3), "3-regular");
        assert!(g.is_connected());
        // Girth 5: no triangles — no two neighbors of a node are adjacent.
        for u in g.nodes() {
            let ns = g.neighbors(u);
            for &a in ns {
                for &b in ns {
                    if a != b {
                        assert_eq!(g.port_to(a, b), None, "triangle at {u}");
                    }
                }
            }
        }
    }

    #[test]
    fn random_tree_is_tree_for_many_seeds() {
        for seed in 0..20 {
            let g = random_tree(17, seed);
            assert!(g.is_tree(), "seed {seed}");
        }
    }

    #[test]
    fn random_connected_is_connected_and_sized() {
        for seed in 0..10 {
            let g = random_connected(20, 15, seed);
            assert!(g.is_connected(), "seed {seed}");
            assert_eq!(g.edge_count(), 19 + 15);
        }
    }

    #[test]
    fn random_connected_caps_extra_edges() {
        let g = random_connected(4, 1000, 7);
        assert_eq!(g.edge_count(), 6); // complete K4
    }

    #[test]
    fn random_generators_are_deterministic_per_seed() {
        let a = random_connected(12, 8, 99);
        let b = random_connected(12, 8, 99);
        assert_eq!(a, b);
        assert_ne!(a, random_connected(12, 8, 100));
    }

    #[test]
    fn chordal_ring_shape() {
        let g = ring_with_chords(8, 3, 5);
        assert_eq!(g.edge_count(), 11);
        assert!(g.is_connected());
    }

    #[test]
    fn paper_dftno_example_visits_in_figure_order() {
        let g = paper_example_dftno();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 5);
        let dfs = traverse::first_dfs(&g, NodeId::new(0));
        // Figure 3.1.1: r=0, b=1, d=2, c=3, a=4.
        let order: Vec<usize> = dfs.order.iter().map(|p| p.index()).collect();
        assert_eq!(order, vec![0, 2, 4, 3, 1], "visit order r,b,d,c,a");
    }

    #[test]
    fn paper_stno_example_is_the_figure_tree() {
        let g = paper_example_stno();
        assert!(g.is_tree());
        assert_eq!(g.degree(NodeId::new(0)), 2);
        assert_eq!(g.degree(NodeId::new(1)), 3);
    }

    #[test]
    fn topology_sweep_builds_connected_graphs() {
        for t in Topology::ALL {
            let g = t.build(16, 3);
            assert!(g.is_connected(), "{t} must be connected");
            assert!(g.node_count() >= 2, "{t} has nodes");
        }
    }
}
