//! Strongly-typed identifiers for processors and ports.

use std::fmt;

/// Identifier of a processor (node) in a network.
///
/// Node identifiers are only used by the *simulator* to index configurations;
/// the simulated protocols themselves are anonymous (except for the root
/// flag), exactly as in the paper's model.
///
/// # Example
///
/// ```
/// use sno_graph::NodeId;
/// let p = NodeId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "n3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node identifier from a raw index.
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the raw index of this node.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

/// A local port: the index of an incident edge in a processor's neighbor
/// list.
///
/// Ports are the only way a processor refers to its incident edges. The
/// *order* of ports at a node fixes the deterministic depth-first scan order
/// ("lowest unvisited port first") used by the token circulation substrate
/// and by the golden traversals.
///
/// # Example
///
/// ```
/// use sno_graph::Port;
/// let l = Port::new(1);
/// assert_eq!(l.index(), 1);
/// assert_eq!(l.to_string(), "p1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Port(usize);

impl Port {
    /// Creates a port from a raw index.
    pub const fn new(index: usize) -> Self {
        Port(index)
    }

    /// Returns the raw index of this port.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for Port {
    fn from(index: usize) -> Self {
        Port(index)
    }
}

impl From<Port> for usize {
    fn from(p: Port) -> Self {
        p.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let id = NodeId::new(42);
        assert_eq!(usize::from(id), 42);
        assert_eq!(NodeId::from(42usize), id);
    }

    #[test]
    fn port_round_trip() {
        let p = Port::new(7);
        assert_eq!(usize::from(p), 7);
        assert_eq!(Port::from(7usize), p);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(Port::new(0) < Port::new(1));
    }

    #[test]
    fn debug_is_never_empty() {
        assert_eq!(format!("{:?}", NodeId::new(0)), "n0");
        assert_eq!(format!("{:?}", Port::new(0)), "p0");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId::new(0));
        assert_eq!(Port::default(), Port::new(0));
    }
}
