//! The port-numbered undirected graph at the heart of every simulation.

use std::collections::HashSet;
use std::fmt;

use crate::{NodeId, Port};

/// Error building or validating a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no nodes.
    Empty,
    /// An edge endpoint referred to a node index `>= n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// An edge connected a node to itself; the model only allows simple
    /// bidirectional links between distinct processors.
    SelfLoop {
        /// The node with the self-loop.
        node: usize,
    },
    /// The same undirected edge was added twice.
    DuplicateEdge {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph has no nodes"),
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::DuplicateEdge { a, b } => {
                write!(f, "duplicate edge between {a} and {b}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected, simple, port-numbered graph.
///
/// Each node's incident edges are numbered `0..degree` in the order the
/// edges were added (its *ports*). For every port the graph also records the
/// *back port*: the port index of the same edge at the other endpoint. This
/// mirrors the paper's assumption that each processor maintains its neighbor
/// set `N_p` via an underlying protocol.
///
/// Adjacency is stored in **CSR (compressed sparse row) layout**: one flat
/// neighbor array plus per-node offsets, so [`Graph::neighbors`] and
/// [`Graph::back_ports`] are contiguous slices of one allocation. Hot loops
/// that fan out over a node's neighborhood (the engine's incremental
/// enabled-set maintenance in particular) iterate cache-line-adjacent
/// memory and never allocate.
///
/// `Graph` is immutable once built; use [`GraphBuilder`] or
/// [`Graph::from_edges`] to construct one.
///
/// # Example
///
/// ```
/// use sno_graph::{Graph, NodeId, Port};
///
/// // A triangle.
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)])?;
/// assert_eq!(g.degree(NodeId::new(0)), 2);
/// let q = g.neighbor(NodeId::new(0), Port::new(0));
/// assert_eq!(q, NodeId::new(1));
/// # Ok::<(), sno_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Graph {
    /// Node `u`'s ports occupy `flat_adj[offsets[u] .. offsets[u + 1]]`.
    offsets: Vec<u32>,
    /// Flat neighbor array: `flat_adj[offsets[u] + p]` = neighbor of `u`
    /// through port `p`.
    flat_adj: Vec<NodeId>,
    /// Flat back-port array, aligned with `flat_adj`.
    flat_back: Vec<Port>,
    /// Number of undirected edges.
    m: usize,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let adj: Vec<&[NodeId]> = self.nodes().map(|p| self.neighbors(p)).collect();
        f.debug_struct("Graph")
            .field("n", &self.node_count())
            .field("m", &self.m)
            .field("adj", &adj)
            .finish()
    }
}

impl Graph {
    /// Builds a graph with `n` nodes from an edge list.
    ///
    /// Ports are assigned in edge-list order: the `k`-th edge incident to a
    /// node (in list order) becomes its port `k`. This makes topology
    /// generation fully deterministic, which in turn makes every simulated
    /// execution reproducible from a seed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `n == 0`, an endpoint is out of range, an
    /// edge is a self-loop, or an edge appears twice.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.edge(u, v);
        }
        b.build()
    }

    /// Number of processors `|V|`.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of bidirectional links `|E|`.
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// The CSR range of node `p`'s ports in the flat arrays.
    #[inline]
    fn range(&self, p: NodeId) -> std::ops::Range<usize> {
        self.offsets[p.index()] as usize..self.offsets[p.index() + 1] as usize
    }

    /// Iterator over all node identifiers, in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Degree `Δ_p` of node `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn degree(&self, p: NodeId) -> usize {
        self.range(p).len()
    }

    /// The maximum degree `Δ` over all nodes.
    pub fn max_degree(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Neighbors of `p` in port order — a contiguous slice of the CSR
    /// neighbor array.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn neighbors(&self, p: NodeId) -> &[NodeId] {
        &self.flat_adj[self.range(p)]
    }

    /// The neighbor of `p` through port `l`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `l` is out of range.
    #[inline]
    pub fn neighbor(&self, p: NodeId, l: Port) -> NodeId {
        self.neighbors(p)[l.index()]
    }

    /// The port of the edge `(p, q)` at the *other* endpoint `q`, where the
    /// edge is designated by its port `l` at `p`.
    ///
    /// If `q = neighbor(p, l)` then `neighbor(q, back_port(p, l)) == p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `l` is out of range.
    pub fn back_port(&self, p: NodeId, l: Port) -> Port {
        self.back_ports(p)[l.index()]
    }

    /// All back ports of `p`, in port order — a contiguous slice of the
    /// CSR back-port array.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn back_ports(&self, p: NodeId) -> &[Port] {
        &self.flat_back[self.range(p)]
    }

    /// The index of `(p, l)` in the flat CSR arrays — a stable dense
    /// numbering of the graph's directed half-edges in `0..csr_len()`.
    ///
    /// Engines that keep per-port side tables (the port-dirty guard cache
    /// in `sno-engine` in particular) use this to address "the port `l` of
    /// processor `p`" in one flat allocation, aligned with
    /// [`Graph::neighbors`] / [`Graph::back_ports`].
    ///
    /// # Panics
    ///
    /// Panics if `p` or `l` is out of range.
    #[inline]
    pub fn csr_index(&self, p: NodeId, l: Port) -> usize {
        let r = self.range(p);
        debug_assert!(l.index() < r.len(), "port out of range");
        r.start + l.index()
    }

    /// Total number of directed half-edges (`2m`) — the length of the flat
    /// CSR arrays and the valid range of [`Graph::csr_index`].
    pub fn csr_len(&self) -> usize {
        self.flat_adj.len()
    }

    /// The CSR index of node `p`'s first port (ports occupy
    /// `csr_base(p) .. csr_base(p) + degree(p)`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn csr_base(&self, p: NodeId) -> usize {
        self.offsets[p.index()] as usize
    }

    /// Finds the port of `p` that leads to `q`, if the edge exists.
    pub fn port_to(&self, p: NodeId, q: NodeId) -> Option<Port> {
        self.neighbors(p)
            .iter()
            .position(|&x| x == q)
            .map(Port::new)
    }

    /// Iterator over all undirected edges as `(u, v)` pairs with
    /// `u.index() < v.index()`, each edge reported once.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |v| u.index() < v.index())
                .map(move |&v| (u, v))
        })
    }

    /// `true` iff the graph is connected (the paper's model requires it).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return false;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// `true` iff the graph is a tree (`connected` and `m == n − 1`).
    pub fn is_tree(&self) -> bool {
        self.m + 1 == self.node_count() && self.is_connected()
    }
}

/// Incremental builder for [`Graph`].
///
/// # Example
///
/// ```
/// use sno_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(4);
/// b.edge(0, 1).edge(1, 2).edge(2, 3).edge(3, 0);
/// let ring = b.build()?;
/// assert_eq!(ring.edge_count(), 4);
/// # Ok::<(), sno_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// Port numbers are assigned in call order. Validation happens in
    /// [`GraphBuilder::build`].
    pub fn edge(&mut self, u: usize, v: usize) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Adds many edges at once.
    pub fn edges<I: IntoIterator<Item = (usize, usize)>>(&mut self, it: I) -> &mut Self {
        self.edges.extend(it);
        self
    }

    /// Validates and builds the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] for an empty node set, out-of-range endpoints,
    /// self-loops, or duplicate edges.
    pub fn build(&self) -> Result<Graph, GraphError> {
        if self.n == 0 {
            return Err(GraphError::Empty);
        }
        // First pass: validate and count degrees for the CSR offsets.
        let mut seen: HashSet<(usize, usize)> = HashSet::with_capacity(self.edges.len());
        let mut degree = vec![0u32; self.n];
        for &(u, v) in &self.edges {
            if u >= self.n {
                return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
            }
            if v >= self.n {
                return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            let key = (u.min(v), u.max(v));
            if !seen.insert(key) {
                return Err(GraphError::DuplicateEdge { a: u, b: v });
            }
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut total = 0u32;
        offsets.push(0);
        for &d in &degree {
            total += d;
            offsets.push(total);
        }
        // Second pass: fill the flat arrays; `cursor[u] - offsets[u]` is the
        // next free port of `u`, so ports keep their edge-list order.
        let mut cursor: Vec<u32> = offsets[..self.n].to_vec();
        let mut flat_adj = vec![NodeId::new(0); total as usize];
        let mut flat_back = vec![Port::new(0); total as usize];
        for &(u, v) in &self.edges {
            let pu = cursor[u] - offsets[u];
            let pv = cursor[v] - offsets[v];
            flat_adj[cursor[u] as usize] = NodeId::new(v);
            flat_back[cursor[u] as usize] = Port::new(pv as usize);
            flat_adj[cursor[v] as usize] = NodeId::new(u);
            flat_back[cursor[v] as usize] = Port::new(pu as usize);
            cursor[u] += 1;
            cursor[v] += 1;
        }
        Ok(Graph {
            offsets,
            flat_adj,
            flat_back,
            m: self.edges.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn back_ports_are_symmetric() {
        let g = triangle();
        for u in g.nodes() {
            for l in 0..g.degree(u) {
                let l = Port::new(l);
                let v = g.neighbor(u, l);
                let bl = g.back_port(u, l);
                assert_eq!(g.neighbor(v, bl), u, "back port must return to origin");
                assert_eq!(g.back_port(v, bl), l, "back of back is identity");
            }
        }
    }

    #[test]
    fn port_order_is_insertion_order() {
        let g = Graph::from_edges(3, &[(0, 2), (0, 1)]).unwrap();
        assert_eq!(g.neighbor(NodeId::new(0), Port::new(0)), NodeId::new(2));
        assert_eq!(g.neighbor(NodeId::new(0), Port::new(1)), NodeId::new(1));
    }

    #[test]
    fn port_to_finds_edges() {
        let g = triangle();
        assert_eq!(
            g.port_to(NodeId::new(0), NodeId::new(2)),
            Some(Port::new(1))
        );
        let path = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(path.port_to(NodeId::new(0), NodeId::new(2)), None);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Graph::from_edges(0, &[]), Err(GraphError::Empty));
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Graph::from_edges(2, &[(1, 1)]),
            Err(GraphError::SelfLoop { node: 1 })
        );
    }

    #[test]
    fn rejects_duplicate_edges_in_any_orientation() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge { a: 1, b: 0 })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 5)]),
            Err(GraphError::NodeOutOfRange { node: 5, n: 2 })
        );
    }

    #[test]
    fn connectivity() {
        assert!(triangle().is_connected());
        let disconnected = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!disconnected.is_connected());
        let singleton = Graph::from_edges(1, &[]).unwrap();
        assert!(singleton.is_connected());
    }

    #[test]
    fn tree_detection() {
        let path = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(path.is_tree());
        assert!(!triangle().is_tree());
        let forest = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!forest.is_tree());
    }

    #[test]
    fn csr_indices_are_dense_and_aligned() {
        let g = triangle();
        assert_eq!(g.csr_len(), 2 * g.edge_count());
        let mut seen = vec![false; g.csr_len()];
        for u in g.nodes() {
            assert_eq!(g.csr_base(u), g.csr_index(u, Port::new(0)));
            for l in 0..g.degree(u) {
                let idx = g.csr_index(u, Port::new(l));
                assert!(!std::mem::replace(&mut seen[idx], true), "dense");
                // Alignment with the flat neighbor slice.
                assert_eq!(g.neighbors(u)[l], g.neighbor(u, Port::new(l)));
            }
        }
        assert!(seen.into_iter().all(|b| b), "covers 0..csr_len");
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v) in edges {
            assert!(u.index() < v.index());
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = GraphError::DuplicateEdge { a: 1, b: 2 };
        assert!(e.to_string().contains("duplicate"));
    }
}
