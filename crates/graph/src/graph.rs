//! The port-numbered undirected graph at the heart of every simulation.

use std::collections::HashSet;
use std::fmt;

use crate::{NodeId, Port};

/// Error building or validating a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no nodes.
    Empty,
    /// An edge endpoint referred to a node index `>= n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// An edge connected a node to itself; the model only allows simple
    /// bidirectional links between distinct processors.
    SelfLoop {
        /// The node with the self-loop.
        node: usize,
    },
    /// The same undirected edge was added twice.
    DuplicateEdge {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// A mutation named an edge the graph does not contain.
    MissingEdge {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph has no nodes"),
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::DuplicateEdge { a, b } => {
                write!(f, "duplicate edge between {a} and {b}")
            }
            GraphError::MissingEdge { a, b } => {
                write!(f, "no edge between {a} and {b}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected, simple, port-numbered graph.
///
/// Each node's incident edges are numbered `0..degree` in the order the
/// edges were added (its *ports*). For every port the graph also records the
/// *back port*: the port index of the same edge at the other endpoint. This
/// mirrors the paper's assumption that each processor maintains its neighbor
/// set `N_p` via an underlying protocol.
///
/// Adjacency is stored in **CSR (compressed sparse row) layout**: one flat
/// neighbor array plus per-node offsets, so [`Graph::neighbors`] and
/// [`Graph::back_ports`] are contiguous slices of one allocation. Hot loops
/// that fan out over a node's neighborhood (the engine's incremental
/// enabled-set maintenance in particular) iterate cache-line-adjacent
/// memory and never allocate.
///
/// Construct a `Graph` with [`GraphBuilder`] or [`Graph::from_edges`].
/// After construction the topology can still *mutate* — [`Graph::add_edge`],
/// [`Graph::remove_edge`], [`Graph::add_node`], [`Graph::detach_node`] —
/// with **incremental CSR repair**: each mutation splices the flat
/// arrays in place (no rebuild) and returns a
/// [`CsrDelta`](crate::mutate::CsrDelta) describing the splice so
/// aligned side tables can mirror it. See [`crate::mutate`].
///
/// # Example
///
/// ```
/// use sno_graph::{Graph, NodeId, Port};
///
/// // A triangle.
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)])?;
/// assert_eq!(g.degree(NodeId::new(0)), 2);
/// let q = g.neighbor(NodeId::new(0), Port::new(0));
/// assert_eq!(q, NodeId::new(1));
/// # Ok::<(), sno_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Graph {
    /// Node `u`'s ports occupy `flat_adj[offsets[u] .. offsets[u + 1]]`.
    offsets: Vec<u32>,
    /// Flat neighbor array: `flat_adj[offsets[u] + p]` = neighbor of `u`
    /// through port `p`.
    flat_adj: Vec<NodeId>,
    /// Flat back-port array, aligned with `flat_adj`.
    flat_back: Vec<Port>,
    /// Number of undirected edges.
    m: usize,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let adj: Vec<&[NodeId]> = self.nodes().map(|p| self.neighbors(p)).collect();
        f.debug_struct("Graph")
            .field("n", &self.node_count())
            .field("m", &self.m)
            .field("adj", &adj)
            .finish()
    }
}

impl Graph {
    /// Builds a graph with `n` nodes from an edge list.
    ///
    /// Ports are assigned in edge-list order: the `k`-th edge incident to a
    /// node (in list order) becomes its port `k`. This makes topology
    /// generation fully deterministic, which in turn makes every simulated
    /// execution reproducible from a seed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `n == 0`, an endpoint is out of range, an
    /// edge is a self-loop, or an edge appears twice.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.edge(u, v);
        }
        b.build()
    }

    /// Number of processors `|V|`.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of bidirectional links `|E|`.
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// The CSR range of node `p`'s ports in the flat arrays.
    #[inline]
    fn range(&self, p: NodeId) -> std::ops::Range<usize> {
        self.offsets[p.index()] as usize..self.offsets[p.index() + 1] as usize
    }

    /// Iterator over all node identifiers, in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Degree `Δ_p` of node `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn degree(&self, p: NodeId) -> usize {
        self.range(p).len()
    }

    /// The maximum degree `Δ` over all nodes.
    pub fn max_degree(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Neighbors of `p` in port order — a contiguous slice of the CSR
    /// neighbor array.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn neighbors(&self, p: NodeId) -> &[NodeId] {
        &self.flat_adj[self.range(p)]
    }

    /// The neighbor of `p` through port `l`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `l` is out of range.
    #[inline]
    pub fn neighbor(&self, p: NodeId, l: Port) -> NodeId {
        self.neighbors(p)[l.index()]
    }

    /// The port of the edge `(p, q)` at the *other* endpoint `q`, where the
    /// edge is designated by its port `l` at `p`.
    ///
    /// If `q = neighbor(p, l)` then `neighbor(q, back_port(p, l)) == p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `l` is out of range.
    pub fn back_port(&self, p: NodeId, l: Port) -> Port {
        self.back_ports(p)[l.index()]
    }

    /// All back ports of `p`, in port order — a contiguous slice of the
    /// CSR back-port array.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn back_ports(&self, p: NodeId) -> &[Port] {
        &self.flat_back[self.range(p)]
    }

    /// The index of `(p, l)` in the flat CSR arrays — a stable dense
    /// numbering of the graph's directed half-edges in `0..csr_len()`.
    ///
    /// Engines that keep per-port side tables (the port-dirty guard cache
    /// in `sno-engine` in particular) use this to address "the port `l` of
    /// processor `p`" in one flat allocation, aligned with
    /// [`Graph::neighbors`] / [`Graph::back_ports`].
    ///
    /// # Panics
    ///
    /// Panics if `p` or `l` is out of range.
    #[inline]
    pub fn csr_index(&self, p: NodeId, l: Port) -> usize {
        let r = self.range(p);
        debug_assert!(l.index() < r.len(), "port out of range");
        r.start + l.index()
    }

    /// Total number of directed half-edges (`2m`) — the length of the flat
    /// CSR arrays and the valid range of [`Graph::csr_index`].
    pub fn csr_len(&self) -> usize {
        self.flat_adj.len()
    }

    /// The CSR index of node `p`'s first port (ports occupy
    /// `csr_base(p) .. csr_base(p) + degree(p)`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn csr_base(&self, p: NodeId) -> usize {
        self.offsets[p.index()] as usize
    }

    /// Finds the port of `p` that leads to `q`, if the edge exists.
    pub fn port_to(&self, p: NodeId, q: NodeId) -> Option<Port> {
        self.neighbors(p)
            .iter()
            .position(|&x| x == q)
            .map(Port::new)
    }

    /// Iterator over all undirected edges as `(u, v)` pairs with
    /// `u.index() < v.index()`, each edge reported once.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |v| u.index() < v.index())
                .map(move |&v| (u, v))
        })
    }

    /// `true` iff the graph is connected (the paper's model requires it).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return false;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// `true` iff the graph is a tree (`connected` and `m == n − 1`).
    pub fn is_tree(&self) -> bool {
        self.m + 1 == self.node_count() && self.is_connected()
    }

    /// `true` iff the graph contains the undirected edge `(u, v)`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u.index() < self.node_count() && self.port_to(u, v).is_some()
    }

    /// `true` iff the graph stays connected after removing the edge
    /// `(u, v)` — i.e. the edge is **not a bridge**. Non-mutating: the
    /// connectivity probe skips the edge without touching the CSR
    /// arrays (re-adding a removed edge would renumber ports, so "remove,
    /// test, revert" is *not* an identity).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn is_connected_without(&self, u: NodeId, v: NodeId) -> bool {
        let n = self.node_count();
        assert!(u.index() < n && v.index() < n, "endpoint out of range");
        if n == 0 {
            return false;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(p) = stack.pop() {
            for &q in self.neighbors(p) {
                if (p == u && q == v) || (p == v && q == u) {
                    continue;
                }
                if !seen[q.index()] {
                    seen[q.index()] = true;
                    count += 1;
                    stack.push(q);
                }
            }
        }
        count == n
    }

    // -----------------------------------------------------------------
    // Incremental mutation (see `crate::mutate` for the repair contract)
    // -----------------------------------------------------------------

    /// Adds the undirected edge `(u, v)` **in place**, appending port
    /// `degree(u)` at `u` and `degree(v)` at `v`. No existing port is
    /// renumbered. `O(csr_len)` for the two flat-array insertions plus
    /// `O(n)` for the offset shift — no rebuild, no re-hash of the edge
    /// set.
    ///
    /// Returns the [`CsrDelta`](crate::mutate::CsrDelta) naming the two
    /// inserted flat-array slots (post-mutation indices).
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`], [`GraphError::SelfLoop`], or
    /// [`GraphError::DuplicateEdge`].
    pub fn add_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
    ) -> Result<crate::mutate::CsrDelta, GraphError> {
        let n = self.node_count();
        for x in [u, v] {
            if x.index() >= n {
                return Err(GraphError::NodeOutOfRange { node: x.index(), n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u.index() });
        }
        if self.port_to(u, v).is_some() {
            return Err(GraphError::DuplicateEdge {
                a: u.index(),
                b: v.index(),
            });
        }
        // Normalize so `a` is the smaller NodeId: its range end comes no
        // later than `b`'s in the flat arrays.
        let (a, b) = if u.index() < v.index() {
            (u, v)
        } else {
            (v, u)
        };
        let deg_a = self.degree(a);
        let deg_b = self.degree(b);
        let pa = self.offsets[a.index() + 1] as usize;
        let pb = self.offsets[b.index() + 1] as usize;
        // Insert `b`'s slot first (the higher old position), so `a`'s
        // old position stays valid; the second insert shifts `b`'s new
        // slot to `pb + 1`.
        self.flat_adj.insert(pb, a);
        self.flat_back.insert(pb, Port::new(deg_a));
        self.flat_adj.insert(pa, b);
        self.flat_back.insert(pa, Port::new(deg_b));
        for i in a.index() + 1..=b.index() {
            self.offsets[i] += 1;
        }
        for o in self.offsets[b.index() + 1..].iter_mut() {
            *o += 2;
        }
        self.m += 1;
        debug_assert_eq!(self.back_port(a, Port::new(deg_a)), Port::new(deg_b));
        Ok(crate::mutate::CsrDelta {
            removed: Vec::new(),
            inserted: vec![pa, pb + 1],
        })
    }

    /// Removes the undirected edge `(u, v)` **in place**. The removed
    /// port vanishes at each endpoint and that endpoint's
    /// higher-numbered ports shift down by one (edge-log compaction
    /// order — exactly the numbering [`Graph::from_edges`] would assign
    /// without the edge); back ports naming the shifted ports are
    /// patched. `O(csr_len + Δ_u + Δ_v)`, no rebuild.
    ///
    /// Returns the [`CsrDelta`](crate::mutate::CsrDelta) naming the two
    /// removed flat-array slots (pre-mutation indices).
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] or [`GraphError::MissingEdge`].
    pub fn remove_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
    ) -> Result<crate::mutate::CsrDelta, GraphError> {
        let n = self.node_count();
        for x in [u, v] {
            if x.index() >= n {
                return Err(GraphError::NodeOutOfRange { node: x.index(), n });
            }
        }
        let (a, b) = if u.index() < v.index() {
            (u, v)
        } else {
            (v, u)
        };
        let la = self.port_to(a, b).ok_or(GraphError::MissingEdge {
            a: u.index(),
            b: v.index(),
        })?;
        let lb = self.back_port(a, la);
        let ia = self.csr_index(a, la);
        let ib = self.csr_index(b, lb);
        debug_assert!(ia < ib, "a's range precedes b's");
        // Splice out the higher slot first so the lower index stays valid.
        self.flat_adj.remove(ib);
        self.flat_back.remove(ib);
        self.flat_adj.remove(ia);
        self.flat_back.remove(ia);
        for i in a.index() + 1..=b.index() {
            self.offsets[i] -= 1;
        }
        for o in self.offsets[b.index() + 1..].iter_mut() {
            *o -= 2;
        }
        self.m -= 1;
        // Ports `la..` of `a` and `lb..` of `b` were renumbered down by
        // one: patch the back ports stored at their neighbors.
        self.fix_back_ports_from(a, la.index());
        self.fix_back_ports_from(b, lb.index());
        Ok(crate::mutate::CsrDelta {
            removed: vec![ia, ib],
            inserted: Vec::new(),
        })
    }

    /// Rewrites the back ports of `p`'s ports `from..degree(p)` at their
    /// neighbors, after those ports were renumbered by a removal.
    fn fix_back_ports_from(&mut self, p: NodeId, from: usize) {
        for l in from..self.degree(p) {
            let q = self.neighbor(p, Port::new(l));
            let bp = self.back_port(p, Port::new(l));
            let idx = self.csr_index(q, bp);
            self.flat_back[idx] = Port::new(l);
        }
    }

    /// Appends a fresh degree-0 node and returns its `NodeId` (always
    /// the previous `node_count()`). `O(1)`: one empty CSR range.
    pub fn add_node(&mut self) -> NodeId {
        let last = *self.offsets.last().expect("offsets non-empty");
        self.offsets.push(last);
        NodeId::new(self.node_count() - 1)
    }

    /// Removes every edge incident to `x` (highest port first), leaving
    /// a degree-0 zombie. `NodeId`s are stable — nothing is renumbered
    /// — so per-node arrays downstream keep their indices.
    ///
    /// Returns one [`CsrDelta`](crate::mutate::CsrDelta) per removed
    /// edge, each relative to the intermediate layout, in application
    /// order.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`].
    pub fn detach_node(&mut self, x: NodeId) -> Result<Vec<crate::mutate::CsrDelta>, GraphError> {
        let n = self.node_count();
        if x.index() >= n {
            return Err(GraphError::NodeOutOfRange { node: x.index(), n });
        }
        let mut deltas = Vec::with_capacity(self.degree(x));
        while self.degree(x) > 0 {
            let q = self.neighbor(x, Port::new(self.degree(x) - 1));
            deltas.push(self.remove_edge(x, q)?);
        }
        Ok(deltas)
    }

    /// Applies one [`TopologyEvent`](crate::mutate::TopologyEvent) and
    /// returns its full [`TopologyRepair`](crate::mutate::TopologyRepair)
    /// record (CSR splices in order + the affected processors).
    ///
    /// # Errors
    ///
    /// Any [`GraphError`] from the underlying mutation; the graph is
    /// unchanged on error for single-edge events and for `NodeJoin`
    /// (links are validated before the node is appended).
    pub fn apply_event(
        &mut self,
        event: &crate::mutate::TopologyEvent,
    ) -> Result<crate::mutate::TopologyRepair, GraphError> {
        use crate::mutate::{TopologyEvent, TopologyRepair};
        match event {
            TopologyEvent::LinkAdd { u, v } => Ok(TopologyRepair {
                deltas: vec![self.add_edge(*u, *v)?],
                endpoints: vec![*u, *v],
                joined: None,
            }),
            TopologyEvent::LinkFail { u, v } => Ok(TopologyRepair {
                deltas: vec![self.remove_edge(*u, *v)?],
                endpoints: vec![*u, *v],
                joined: None,
            }),
            TopologyEvent::NodeCrash { node } => {
                let x = *node;
                if x.index() >= self.node_count() {
                    return Err(GraphError::NodeOutOfRange {
                        node: x.index(),
                        n: self.node_count(),
                    });
                }
                let mut endpoints = vec![x];
                endpoints.extend_from_slice(self.neighbors(x));
                let deltas = self.detach_node(x)?;
                Ok(TopologyRepair {
                    deltas,
                    endpoints,
                    joined: None,
                })
            }
            TopologyEvent::NodeJoin { links } => {
                // Validate before mutating so a bad link list leaves the
                // graph untouched.
                let n = self.node_count();
                for &q in links {
                    if q.index() >= n {
                        return Err(GraphError::NodeOutOfRange { node: q.index(), n });
                    }
                }
                for (i, &q) in links.iter().enumerate() {
                    if links[..i].contains(&q) {
                        return Err(GraphError::DuplicateEdge { a: n, b: q.index() });
                    }
                }
                let x = self.add_node();
                let mut deltas = Vec::with_capacity(links.len());
                for &q in links {
                    deltas.push(self.add_edge(x, q)?);
                }
                let mut endpoints = vec![x];
                endpoints.extend_from_slice(links);
                Ok(TopologyRepair {
                    deltas,
                    endpoints,
                    joined: Some(x),
                })
            }
        }
    }
}

/// Incremental builder for [`Graph`].
///
/// # Example
///
/// ```
/// use sno_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(4);
/// b.edge(0, 1).edge(1, 2).edge(2, 3).edge(3, 0);
/// let ring = b.build()?;
/// assert_eq!(ring.edge_count(), 4);
/// # Ok::<(), sno_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// Port numbers are assigned in call order. Validation happens in
    /// [`GraphBuilder::build`].
    pub fn edge(&mut self, u: usize, v: usize) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Adds many edges at once.
    pub fn edges<I: IntoIterator<Item = (usize, usize)>>(&mut self, it: I) -> &mut Self {
        self.edges.extend(it);
        self
    }

    /// Validates and builds the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] for an empty node set, out-of-range endpoints,
    /// self-loops, or duplicate edges.
    pub fn build(&self) -> Result<Graph, GraphError> {
        if self.n == 0 {
            return Err(GraphError::Empty);
        }
        // First pass: validate and count degrees for the CSR offsets.
        let mut seen: HashSet<(usize, usize)> = HashSet::with_capacity(self.edges.len());
        let mut degree = vec![0u32; self.n];
        for &(u, v) in &self.edges {
            if u >= self.n {
                return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
            }
            if v >= self.n {
                return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            let key = (u.min(v), u.max(v));
            if !seen.insert(key) {
                return Err(GraphError::DuplicateEdge { a: u, b: v });
            }
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut total = 0u32;
        offsets.push(0);
        for &d in &degree {
            total += d;
            offsets.push(total);
        }
        // Second pass: fill the flat arrays; `cursor[u] - offsets[u]` is the
        // next free port of `u`, so ports keep their edge-list order.
        let mut cursor: Vec<u32> = offsets[..self.n].to_vec();
        let mut flat_adj = vec![NodeId::new(0); total as usize];
        let mut flat_back = vec![Port::new(0); total as usize];
        for &(u, v) in &self.edges {
            let pu = cursor[u] - offsets[u];
            let pv = cursor[v] - offsets[v];
            flat_adj[cursor[u] as usize] = NodeId::new(v);
            flat_back[cursor[u] as usize] = Port::new(pv as usize);
            flat_adj[cursor[v] as usize] = NodeId::new(u);
            flat_back[cursor[v] as usize] = Port::new(pu as usize);
            cursor[u] += 1;
            cursor[v] += 1;
        }
        Ok(Graph {
            offsets,
            flat_adj,
            flat_back,
            m: self.edges.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn back_ports_are_symmetric() {
        let g = triangle();
        for u in g.nodes() {
            for l in 0..g.degree(u) {
                let l = Port::new(l);
                let v = g.neighbor(u, l);
                let bl = g.back_port(u, l);
                assert_eq!(g.neighbor(v, bl), u, "back port must return to origin");
                assert_eq!(g.back_port(v, bl), l, "back of back is identity");
            }
        }
    }

    #[test]
    fn port_order_is_insertion_order() {
        let g = Graph::from_edges(3, &[(0, 2), (0, 1)]).unwrap();
        assert_eq!(g.neighbor(NodeId::new(0), Port::new(0)), NodeId::new(2));
        assert_eq!(g.neighbor(NodeId::new(0), Port::new(1)), NodeId::new(1));
    }

    #[test]
    fn port_to_finds_edges() {
        let g = triangle();
        assert_eq!(
            g.port_to(NodeId::new(0), NodeId::new(2)),
            Some(Port::new(1))
        );
        let path = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(path.port_to(NodeId::new(0), NodeId::new(2)), None);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Graph::from_edges(0, &[]), Err(GraphError::Empty));
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Graph::from_edges(2, &[(1, 1)]),
            Err(GraphError::SelfLoop { node: 1 })
        );
    }

    #[test]
    fn rejects_duplicate_edges_in_any_orientation() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge { a: 1, b: 0 })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 5)]),
            Err(GraphError::NodeOutOfRange { node: 5, n: 2 })
        );
    }

    #[test]
    fn connectivity() {
        assert!(triangle().is_connected());
        let disconnected = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!disconnected.is_connected());
        let singleton = Graph::from_edges(1, &[]).unwrap();
        assert!(singleton.is_connected());
    }

    #[test]
    fn tree_detection() {
        let path = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(path.is_tree());
        assert!(!triangle().is_tree());
        let forest = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!forest.is_tree());
    }

    #[test]
    fn csr_indices_are_dense_and_aligned() {
        let g = triangle();
        assert_eq!(g.csr_len(), 2 * g.edge_count());
        let mut seen = vec![false; g.csr_len()];
        for u in g.nodes() {
            assert_eq!(g.csr_base(u), g.csr_index(u, Port::new(0)));
            for l in 0..g.degree(u) {
                let idx = g.csr_index(u, Port::new(l));
                assert!(!std::mem::replace(&mut seen[idx], true), "dense");
                // Alignment with the flat neighbor slice.
                assert_eq!(g.neighbors(u)[l], g.neighbor(u, Port::new(l)));
            }
        }
        assert!(seen.into_iter().all(|b| b), "covers 0..csr_len");
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v) in edges {
            assert!(u.index() < v.index());
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = GraphError::DuplicateEdge { a: 1, b: 2 };
        assert!(e.to_string().contains("duplicate"));
        let e = GraphError::MissingEdge { a: 1, b: 2 };
        assert!(e.to_string().contains("no edge"));
    }

    // -- incremental mutation ------------------------------------------

    /// Asserts the whole CSR invariant set: offsets monotone and
    /// consistent with the flat arrays, back ports symmetric, csr
    /// indices dense.
    fn assert_csr_invariants(g: &Graph) {
        assert_eq!(g.csr_len(), 2 * g.edge_count());
        for u in g.nodes() {
            for l in 0..g.degree(u) {
                let l = Port::new(l);
                let v = g.neighbor(u, l);
                let bl = g.back_port(u, l);
                assert_eq!(g.neighbor(v, bl), u, "back port returns to origin");
                assert_eq!(g.back_port(v, bl), l, "back of back is identity");
            }
        }
    }

    #[test]
    fn add_edge_appends_ports_and_matches_rebuild() {
        let mut g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let delta = g.add_edge(NodeId::new(3), NodeId::new(0)).unwrap();
        assert_eq!(delta.removed, Vec::<usize>::new());
        assert_eq!(delta.inserted.len(), 2);
        assert_csr_invariants(&g);
        let rebuilt = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(g, rebuilt, "incremental add equals from-scratch rebuild");
        // The inserted slots hold the new edge's half-edges.
        assert_eq!(g.flat_adj[delta.inserted[0]], NodeId::new(3));
        assert_eq!(g.flat_adj[delta.inserted[1]], NodeId::new(0));
    }

    #[test]
    fn remove_edge_compacts_ports_and_matches_rebuild() {
        let edges = [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)];
        let mut g = Graph::from_edges(4, &edges).unwrap();
        let delta = g.remove_edge(NodeId::new(0), NodeId::new(2)).unwrap();
        assert_eq!(delta.removed.len(), 2);
        assert!(delta.removed[0] < delta.removed[1]);
        assert_csr_invariants(&g);
        let rebuilt = Graph::from_edges(4, &[(0, 1), (0, 3), (1, 2), (2, 3)]).unwrap();
        assert_eq!(g, rebuilt, "removal equals rebuild without the edge");
    }

    #[test]
    fn remove_then_add_round_trips_through_rebuild() {
        // Removing and re-adding renumbers ports (the re-added edge goes
        // to the *end* of each endpoint's port list) — equal to a rebuild
        // whose edge log moved the edge last.
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        g.remove_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        let rebuilt = Graph::from_edges(3, &[(1, 2), (2, 0), (0, 1)]).unwrap();
        assert_eq!(g, rebuilt);
    }

    #[test]
    fn add_node_and_detach_node() {
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let x = g.add_node();
        assert_eq!(x, NodeId::new(3));
        assert_eq!(g.degree(x), 0);
        g.add_edge(x, NodeId::new(1)).unwrap();
        g.add_edge(x, NodeId::new(2)).unwrap();
        assert_csr_invariants(&g);

        let deltas = g.detach_node(NodeId::new(1)).unwrap();
        assert_eq!(deltas.len(), 3, "one delta per removed edge");
        assert_eq!(g.degree(NodeId::new(1)), 0, "zombie");
        assert_eq!(g.node_count(), 4, "NodeIds are stable");
        assert_csr_invariants(&g);
        let rebuilt = Graph::from_edges(4, &[(2, 0), (3, 2)]).unwrap();
        assert_eq!(g, rebuilt);
    }

    #[test]
    fn mutation_errors_leave_graph_unchanged() {
        let mut g = triangle();
        let before = g.clone();
        assert_eq!(
            g.add_edge(NodeId::new(0), NodeId::new(0)),
            Err(GraphError::SelfLoop { node: 0 })
        );
        assert_eq!(
            g.add_edge(NodeId::new(0), NodeId::new(1)),
            Err(GraphError::DuplicateEdge { a: 0, b: 1 })
        );
        assert_eq!(
            g.add_edge(NodeId::new(0), NodeId::new(9)),
            Err(GraphError::NodeOutOfRange { node: 9, n: 3 })
        );
        let mut path = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(
            path.remove_edge(NodeId::new(0), NodeId::new(2)),
            Err(GraphError::MissingEdge { a: 0, b: 2 })
        );
        assert_eq!(g, before);
    }

    #[test]
    fn apply_event_round_trips_all_variants() {
        use crate::mutate::TopologyEvent;
        let mut g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let r = g
            .apply_event(&TopologyEvent::LinkAdd {
                u: NodeId::new(0),
                v: NodeId::new(2),
            })
            .unwrap();
        assert_eq!(r.endpoints, vec![NodeId::new(0), NodeId::new(2)]);
        assert_eq!(r.edits(), 2);
        let r = g
            .apply_event(&TopologyEvent::NodeJoin {
                links: vec![NodeId::new(1), NodeId::new(3)],
            })
            .unwrap();
        assert_eq!(r.joined, Some(NodeId::new(4)));
        assert_eq!(g.node_count(), 5);
        let r = g
            .apply_event(&TopologyEvent::NodeCrash {
                node: NodeId::new(2),
            })
            .unwrap();
        assert_eq!(r.joined, None);
        assert_eq!(r.deltas.len(), 3);
        assert_eq!(g.degree(NodeId::new(2)), 0);
        assert_csr_invariants(&g);
        // The zombie makes `is_connected` false; the live component is
        // still intact around it.
        assert!(!g.is_connected());
    }

    #[test]
    fn is_connected_without_detects_bridges() {
        // Triangle with a tail: 0-1-2-0, 2-3. The tail edge is a bridge,
        // the cycle edges are not.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        assert!(g.is_connected_without(NodeId::new(0), NodeId::new(1)));
        assert!(!g.is_connected_without(NodeId::new(2), NodeId::new(3)));
        // Probing must not mutate.
        let before = g.clone();
        let _ = g.is_connected_without(NodeId::new(1), NodeId::new(2));
        assert_eq!(g, before);
    }

    #[test]
    fn csr_delta_splice_mirrors_the_flat_arrays() {
        let mut g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        // A side table aligned with the flat arrays, tagged by content.
        let mut table: Vec<NodeId> = g.flat_adj.clone();
        let d1 = g.add_edge(NodeId::new(0), NodeId::new(2)).unwrap();
        d1.splice(&mut table, NodeId::new(999));
        let d2 = g.remove_edge(NodeId::new(1), NodeId::new(2)).unwrap();
        d2.splice(&mut table, NodeId::new(999));
        // Every surviving slot still aligns with its flat-array entry,
        // and exactly the fresh slots carry the fill value.
        assert_eq!(table.len(), g.csr_len());
        for (i, &t) in table.iter().enumerate() {
            if t != NodeId::new(999) {
                assert_eq!(t, g.flat_adj[i], "slot {i} drifted");
            }
        }
        assert_eq!(table.iter().filter(|&&t| t == NodeId::new(999)).count(), 2);
    }
}
