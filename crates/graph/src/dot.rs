//! Graphviz DOT export for topologies (and, with edge annotations, for
//! oriented networks) — handy for inspecting counterexamples and for the
//! README diagrams of a release.

use std::fmt::Write as _;

use crate::{Graph, NodeId};

/// Renders `g` as an undirected Graphviz graph.
///
/// `node_label(p)` supplies the text inside each node;
/// `edge_label(u, v)` the text on each edge (return `None` for no label).
///
/// # Example
///
/// ```
/// use sno_graph::{dot, generators, NodeId};
/// let g = generators::ring(3);
/// let s = dot::to_dot(&g, |p| format!("{p}"), |_, _| None);
/// assert!(s.starts_with("graph {"));
/// assert!(s.contains("n0 -- n1"));
/// ```
pub fn to_dot(
    g: &Graph,
    mut node_label: impl FnMut(NodeId) -> String,
    mut edge_label: impl FnMut(NodeId, NodeId) -> Option<String>,
) -> String {
    let mut out = String::from("graph {\n  node [shape=circle];\n");
    for p in g.nodes() {
        let _ = writeln!(out, "  n{} [label=\"{}\"];", p.index(), node_label(p));
    }
    for (u, v) in g.edges() {
        match edge_label(u, v) {
            Some(l) => {
                let _ = writeln!(out, "  n{} -- n{} [label=\"{}\"];", u.index(), v.index(), l);
            }
            None => {
                let _ = writeln!(out, "  n{} -- n{};", u.index(), v.index());
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a rooted tree over `g`: tree edges solid, non-tree edges
/// dashed; the root is drawn doubled.
///
/// # Panics
///
/// Panics if `parent` is not a parent vector over `g`.
pub fn tree_to_dot(g: &Graph, root: NodeId, parent: &[Option<NodeId>]) -> String {
    assert_eq!(parent.len(), g.node_count(), "parent vector length");
    let mut out = String::from("graph {\n  node [shape=circle];\n");
    let _ = writeln!(out, "  n{} [shape=doublecircle];", root.index());
    for (u, v) in g.edges() {
        let is_tree = parent[u.index()] == Some(v) || parent[v.index()] == Some(u);
        let style = if is_tree { "solid" } else { "dashed" };
        let _ = writeln!(out, "  n{} -- n{} [style={}];", u.index(), v.index(), style);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dot_contains_every_node_and_edge() {
        let g = generators::ring(4);
        let s = to_dot(&g, |p| p.to_string(), |_, _| None);
        for i in 0..4 {
            assert!(s.contains(&format!("n{i} [label=")));
        }
        assert_eq!(s.matches(" -- ").count(), 4);
    }

    #[test]
    fn edge_labels_are_emitted() {
        let g = generators::path(3);
        let s = to_dot(
            &g,
            |p| p.to_string(),
            |u, v| Some(format!("{}:{}", u.index(), v.index())),
        );
        assert!(s.contains("[label=\"0:1\"]"));
        assert!(s.contains("[label=\"1:2\"]"));
    }

    #[test]
    fn tree_export_distinguishes_chords() {
        let g = generators::paper_example_dftno();
        let dfs = crate::traverse::first_dfs(&g, NodeId::new(0));
        let s = tree_to_dot(&g, NodeId::new(0), &dfs.parent);
        assert!(s.contains("doublecircle"));
        assert_eq!(s.matches("style=solid").count(), 4, "n−1 tree edges");
        assert_eq!(s.matches("style=dashed").count(), 1, "the chord b−c");
    }
}
