//! Structural graph properties used to parameterize experiments
//! (`Δ`, diameter, eccentricity, degree statistics).

use crate::{traverse, Graph, NodeId};

/// Summary statistics of a topology, as reported in the experiment tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of processors `n`.
    pub n: usize,
    /// Number of links `m`.
    pub m: usize,
    /// Maximum degree `Δ`.
    pub max_degree: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Graph diameter (hops).
    pub diameter: usize,
    /// Eccentricity of the root = height of the BFS tree from it.
    pub root_ecc: usize,
}

/// Computes [`GraphStats`] for `g` rooted at `root`.
///
/// Diameter is computed with a BFS from every node — `O(n·m)`, fine at
/// simulation scale.
///
/// # Panics
///
/// Panics if `g` is disconnected or `root` is out of range.
pub fn stats(g: &Graph, root: NodeId) -> GraphStats {
    let n = g.node_count();
    let degs: Vec<usize> = g.nodes().map(|u| g.degree(u)).collect();
    let diameter = (0..n)
        .map(|u| traverse::bfs(g, NodeId::new(u)).height())
        .max()
        .unwrap_or(0);
    GraphStats {
        n,
        m: g.edge_count(),
        max_degree: degs.iter().copied().max().unwrap_or(0),
        min_degree: degs.iter().copied().min().unwrap_or(0),
        diameter,
        root_ecc: traverse::bfs(g, root).height(),
    }
}

/// Eccentricity of a single node (longest shortest path from it).
///
/// # Panics
///
/// Panics if `g` is disconnected or `p` is out of range.
pub fn eccentricity(g: &Graph, p: NodeId) -> usize {
    traverse::bfs(g, p).height()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn ring_stats() {
        let g = generators::ring(8);
        let s = stats(&g, NodeId::new(0));
        assert_eq!(s.n, 8);
        assert_eq!(s.m, 8);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.min_degree, 2);
        assert_eq!(s.diameter, 4);
        assert_eq!(s.root_ecc, 4);
    }

    #[test]
    fn star_stats() {
        let g = generators::star(9);
        let s = stats(&g, NodeId::new(0));
        assert_eq!(s.max_degree, 8);
        assert_eq!(s.diameter, 2);
        assert_eq!(s.root_ecc, 1);
    }

    #[test]
    fn path_eccentricity_depends_on_root() {
        let g = generators::path(7);
        assert_eq!(eccentricity(&g, NodeId::new(0)), 6);
        assert_eq!(eccentricity(&g, NodeId::new(3)), 3);
    }

    #[test]
    fn complete_diameter_is_one() {
        let g = generators::complete(6);
        assert_eq!(stats(&g, NodeId::new(0)).diameter, 1);
    }

    #[test]
    fn hypercube_diameter_is_dimension() {
        let g = generators::hypercube(4);
        assert_eq!(stats(&g, NodeId::new(0)).diameter, 4);
    }
}
