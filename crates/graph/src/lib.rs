//! # sno-graph
//!
//! Port-numbered network topologies for simulating self-stabilizing
//! distributed protocols, together with *golden* (sequential, centralized)
//! reference traversals used as oracles in tests and benchmarks.
//!
//! The model follows Chapter 2 of *"Self-Stabilizing Network Orientation
//! Algorithms in Arbitrary Rooted Networks"*: a distributed system is an
//! undirected connected graph `S = (V, E)`. Every processor `p` addresses
//! each incident edge through a local **port** (an index into its neighbor
//! list); the order of ports is what makes depth-first traversals
//! deterministic ("lowest port first"). For every edge `(p, q)` both
//! endpoints also know the *back port*, i.e. the port through which the
//! other endpoint sees the edge — exactly the `N_p` neighbor-set knowledge
//! the paper's underlying protocols maintain.
//!
//! # Example
//!
//! ```
//! use sno_graph::NodeId;
//!
//! let g = sno_graph::generators::ring(5);
//! assert_eq!(g.node_count(), 5);
//! assert_eq!(g.edge_count(), 5);
//! let dfs = sno_graph::traverse::first_dfs(&g, NodeId::new(0));
//! assert_eq!(dfs.order.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod id;

pub mod automorphism;
pub mod dot;
pub mod generators;
pub mod mutate;
pub mod partition;
pub mod props;
pub mod rooted;
pub mod spec;
pub mod traverse;

pub use graph::{Graph, GraphBuilder, GraphError};
pub use id::{NodeId, Port};
pub use mutate::{CsrDelta, TopologyEvent, TopologyRepair};
pub use partition::{Partition, ShardView};
pub use rooted::RootedTree;
pub use spec::GeneratorSpec;
