//! Degree-balanced edge-cut partitioning of the CSR graph.
//!
//! The engine's sharded synchronous executor (`sno-engine`'s
//! `EngineMode::SyncSharded`) splits a round's work — guard resolution,
//! delta-staged writes, dirty-node re-evaluation — across graph
//! *shards*. Two properties make a partition useful there:
//!
//! 1. **contiguous NodeId ranges** — every per-node engine array
//!    (configuration slots, action counts, CSR port words) splits into
//!    disjoint `&mut` chunks by plain `split_at_mut`, so shard workers
//!    borrow their slice of the world without locks, and folding
//!    per-shard results back in shard order *is* NodeId order;
//! 2. **degree balance** — a shard's round cost is dominated by the sum
//!    of its nodes' degrees (guard evaluations fan out over incident
//!    ports), so boundaries are chosen on the prefix sums of
//!    `degree + 1`, not on node counts. A hub-heavy prefix gets fewer
//!    nodes, a leaf-heavy suffix more.
//!
//! The cut is an **edge cut**: edges whose endpoints land in different
//! shards are *boundary* edges, and their endpoints are *boundary*
//! nodes. [`Partition::views`] materializes that classification per
//! shard ([`ShardView`]) — the executor treats writes at interior nodes
//! as shard-local and routes invalidation crossing a boundary through
//! its exchange step between the round's phases.

use crate::{Graph, NodeId};

/// A partition of a graph's nodes into contiguous, degree-balanced
/// NodeId ranges.
///
/// Construction is deterministic in `(graph, shards)`: the same inputs
/// produce the same boundaries on every machine and thread count — a
/// prerequisite for the engine's byte-identical sharded traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Shard `s` owns nodes `bounds[s] .. bounds[s + 1]`. Monotone,
    /// starts at 0, ends at `n`; every shard is non-empty.
    bounds: Vec<u32>,
}

impl Partition {
    /// Cuts `g` into at most `shards` contiguous ranges balanced by the
    /// per-node weight `degree + 1` (the `+ 1` keeps zero-degree nodes
    /// from collapsing a range and approximates the constant per-node
    /// cost of a guard evaluation).
    ///
    /// The requested count is clamped to `[1, n]`; fewer shards may be
    /// produced when the weight profile cannot fill them (every produced
    /// shard is non-empty).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn degree_balanced(g: &Graph, shards: usize) -> Partition {
        assert!(shards > 0, "a partition needs at least one shard");
        let n = g.node_count();
        let shards = shards.min(n).max(1);
        let total: u64 = g.nodes().map(|p| g.degree(p) as u64 + 1).sum();
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0u32);
        let mut acc = 0u64;
        let mut next_cut = 1usize; // the cut index we are looking for
        for p in g.nodes() {
            acc += g.degree(p) as u64 + 1;
            // Close shard `next_cut - 1` once its weight target is met,
            // but never so greedily that later shards would be empty.
            let remaining_nodes = n - (p.index() + 1);
            let remaining_shards = shards - next_cut;
            if next_cut < shards
                && acc * shards as u64 >= total * next_cut as u64
                && remaining_nodes >= remaining_shards
            {
                bounds.push((p.index() + 1) as u32);
                next_cut += 1;
            }
        }
        while bounds.len() < shards + 1 {
            bounds.push(n as u32);
        }
        *bounds.last_mut().expect("non-empty") = n as u32;
        // Drop degenerate (empty) trailing ranges produced by extreme
        // weight skew.
        bounds.dedup();
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Partition { bounds }
    }

    /// Extends the last shard to cover one appended node — the `O(1)`
    /// incremental repair for a `TopologyEvent::NodeJoin` (the arrival
    /// always takes `NodeId` `n`, which is contiguous with the last
    /// range). Link events need no repair at all: bounds stay a valid
    /// cover and degree balance is only a performance heuristic.
    pub fn absorb_node(&mut self) {
        *self.bounds.last_mut().expect("non-empty") += 1;
    }

    /// The trivial one-shard partition of an `n`-node graph.
    pub fn whole(n: usize) -> Partition {
        Partition {
            bounds: vec![0, n as u32],
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The node-index range owned by shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        self.bounds[s] as usize..self.bounds[s + 1] as usize
    }

    /// The raw boundaries (`shard_count() + 1` entries, first 0, last
    /// `n`) — the split points for chunking per-node arrays.
    pub fn bounds(&self) -> &[u32] {
        &self.bounds
    }

    /// The shard owning `node` (binary search over the boundaries).
    pub fn shard_of(&self, node: NodeId) -> usize {
        let i = node.index() as u32;
        match self.bounds.binary_search(&i) {
            Ok(s) if s < self.shard_count() => s,
            Ok(s) => s - 1,
            Err(s) => s - 1,
        }
    }

    /// Splits a per-node slice into one `&mut` chunk per shard, aligned
    /// with [`Partition::range`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the partitioned node count.
    pub fn split_mut<'d, T>(&self, mut data: &'d mut [T]) -> Vec<&'d mut [T]> {
        assert_eq!(
            data.len(),
            *self.bounds.last().expect("non-empty") as usize,
            "per-node array length must match the partitioned graph"
        );
        let mut chunks = Vec::with_capacity(self.shard_count());
        for s in 0..self.shard_count() {
            let len = self.range(s).len();
            let (head, tail) = data.split_at_mut(len);
            chunks.push(head);
            data = tail;
        }
        chunks
    }

    /// Materializes the per-shard local/boundary classification.
    pub fn views(&self, g: &Graph) -> Vec<ShardView> {
        (0..self.shard_count())
            .map(|s| {
                let range = self.range(s);
                let mut boundary = Vec::new();
                let mut cut_edges = 0usize;
                let mut local_edges = 0usize;
                for u in range.clone() {
                    let u = NodeId::new(u);
                    let mut crosses = false;
                    for &v in g.neighbors(u) {
                        if range.contains(&v.index()) {
                            if u.index() < v.index() {
                                local_edges += 1;
                            }
                        } else {
                            crosses = true;
                            cut_edges += 1; // counted once per directed half-edge
                        }
                    }
                    if crosses {
                        boundary.push(u);
                    }
                }
                ShardView {
                    shard: s,
                    range,
                    boundary,
                    half_cut_edges: cut_edges,
                    local_edges,
                }
            })
            .collect()
    }
}

/// One shard's view of the cut: which of its nodes sit on the boundary
/// (have a neighbor in another shard) and how many edges stay local.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardView {
    /// The shard index.
    pub shard: usize,
    /// The owned node range.
    pub range: std::ops::Range<usize>,
    /// Owned nodes with at least one cross-shard neighbor, ascending.
    pub boundary: Vec<NodeId>,
    /// Outgoing directed half-edges crossing the cut (each undirected
    /// cut edge contributes one here and one at the other shard).
    pub half_cut_edges: usize,
    /// Undirected edges with both endpoints in this shard.
    pub local_edges: usize,
}

impl ShardView {
    /// `true` iff `node` is owned by this shard and has no cross-shard
    /// neighbor — its whole neighborhood is shard-local.
    pub fn is_interior(&self, node: NodeId) -> bool {
        self.range.contains(&node.index()) && self.boundary.binary_search(&node).is_err()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn partitions_cover_all_nodes_contiguously() {
        for (g, shards) in [
            (generators::path(17), 4),
            (generators::star(33), 3),
            (generators::torus(5, 5), 8),
            (generators::random_tree(40, 7), 6),
        ] {
            let p = Partition::degree_balanced(&g, shards);
            assert!(p.shard_count() >= 1 && p.shard_count() <= shards);
            let mut covered = 0usize;
            for s in 0..p.shard_count() {
                let r = p.range(s);
                assert_eq!(r.start, covered, "contiguous");
                assert!(!r.is_empty(), "non-empty shard");
                covered = r.end;
                for u in r.clone() {
                    assert_eq!(p.shard_of(NodeId::new(u)), s);
                }
            }
            assert_eq!(covered, g.node_count());
        }
    }

    #[test]
    fn shard_weights_are_balanced_on_uniform_degrees() {
        // A torus is degree-regular, so degree balance ≈ node balance.
        let g = generators::torus(8, 8);
        let p = Partition::degree_balanced(&g, 4);
        assert_eq!(p.shard_count(), 4);
        for s in 0..4 {
            let len = p.range(s).len();
            assert!((12..=20).contains(&len), "shard {s} holds {len} nodes");
        }
    }

    #[test]
    fn hub_weight_shrinks_the_hub_shard() {
        // Star: node 0 carries ~half the total weight, so the first
        // shard must be tiny in node count.
        let g = generators::star(64);
        let p = Partition::degree_balanced(&g, 4);
        assert!(p.range(0).len() < 16, "hub shard is node-light");
        let total: usize = (0..p.shard_count()).map(|s| p.range(s).len()).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn more_shards_than_nodes_clamps() {
        let g = generators::path(3);
        let p = Partition::degree_balanced(&g, 16);
        assert!(p.shard_count() <= 3);
        assert_eq!(p.range(p.shard_count() - 1).end, 3);
    }

    #[test]
    fn absorb_node_extends_the_last_shard() {
        let g = generators::path(9);
        let mut p = Partition::degree_balanced(&g, 3);
        let shards = p.shard_count();
        p.absorb_node();
        p.absorb_node();
        assert_eq!(p.shard_count(), shards);
        assert_eq!(p.range(shards - 1).end, 11);
        assert_eq!(p.shard_of(NodeId::new(10)), shards - 1);
        assert_eq!(*p.bounds().last().unwrap(), 11);
    }

    #[test]
    fn whole_partition_is_one_shard() {
        let p = Partition::whole(9);
        assert_eq!(p.shard_count(), 1);
        assert_eq!(p.range(0), 0..9);
        assert_eq!(p.shard_of(NodeId::new(8)), 0);
    }

    #[test]
    fn split_mut_chunks_align_with_ranges() {
        let g = generators::path(11);
        let p = Partition::degree_balanced(&g, 3);
        let mut data: Vec<u32> = (0..11).collect();
        let chunks = p.split_mut(&mut data);
        assert_eq!(chunks.len(), p.shard_count());
        for (s, c) in chunks.iter().enumerate() {
            let r = p.range(s);
            assert_eq!(c.len(), r.len());
            assert_eq!(c[0], r.start as u32);
        }
    }

    #[test]
    fn views_classify_boundary_and_local_edges() {
        let g = generators::path(10);
        let p = Partition::degree_balanced(&g, 2);
        let views = p.views(&g);
        assert_eq!(views.len(), 2);
        // A path cut once has exactly one cut edge: one boundary node
        // per side, one outgoing half-edge each.
        for v in &views {
            assert_eq!(v.boundary.len(), 1, "{v:?}");
            assert_eq!(v.half_cut_edges, 1, "{v:?}");
        }
        let total_local: usize = views.iter().map(|v| v.local_edges).sum();
        assert_eq!(total_local, g.edge_count() - 1);
        // Interior nodes are owned and off the boundary.
        let v0 = &views[0];
        assert!(v0.is_interior(NodeId::new(0)));
        assert!(!v0.is_interior(v0.boundary[0]));
        assert!(!v0.is_interior(NodeId::new(9)), "not owned");
    }

    #[test]
    fn partitions_are_deterministic() {
        let g = generators::random_connected(30, 20, 5);
        assert_eq!(
            Partition::degree_balanced(&g, 5),
            Partition::degree_balanced(&g, 5)
        );
    }
}
