//! Root-fixing graph automorphisms, for symmetry-reduced model checking.
//!
//! A (port-aware) automorphism of a graph is a node bijection `σ`
//! preserving adjacency; because ports address edges, `σ` also induces a
//! **port map** at every node: port `l` of `u` corresponds to the port
//! of `σ(u)` leading to `σ(neighbor(u, l))`. The model checker quotients
//! its state space by the subgroup *fixing the root* (the paper's
//! distinguished processor `r` breaks full symmetry, so only `σ` with
//! `σ(r) = r` map executions to bisimilar executions).
//!
//! Two ways to obtain the group:
//!
//! * [`family_generators`] — exact closed-form generator sets for the
//!   structured families (path, ring, star, hubs, torus), each candidate
//!   *verified* against the built graph before it is returned, closed
//!   into the full group by [`close_group`];
//! * [`automorphism_group`] — a generic backtracking search with degree
//!   and adjacency refinement, enumerating the full root-fixing group of
//!   an arbitrary graph.
//!
//! Both are exact on their domain and the search is the fallback for
//! everything else; a size cap bounds the work, degrading to the
//! (always sound) trivial group rather than failing.

use crate::{Graph, NodeId, Port};

/// A verified automorphism: the node bijection plus the induced
/// per-node port maps.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Automorphism {
    /// `node[u]` = `σ(u)`.
    node: Vec<u32>,
    /// `ports[u][l]` = the port of `σ(u)` whose edge is the image of
    /// `u`'s port `l` (i.e. it leads to `σ(neighbor(u, l))`).
    ports: Vec<Vec<Port>>,
}

impl Automorphism {
    /// The identity automorphism of `g`.
    pub fn identity(g: &Graph) -> Automorphism {
        Automorphism {
            node: (0..g.node_count() as u32).collect(),
            ports: g
                .nodes()
                .map(|u| (0..g.degree(u)).map(Port::new).collect())
                .collect(),
        }
    }

    /// Verifies that `sigma` is an automorphism of `g` and derives its
    /// port maps; `None` if `sigma` is not a bijection or does not
    /// preserve adjacency.
    pub fn from_nodes(g: &Graph, sigma: &[u32]) -> Option<Automorphism> {
        let n = g.node_count();
        if sigma.len() != n {
            return None;
        }
        let mut hit = vec![false; n];
        for &v in sigma {
            let v = v as usize;
            if v >= n || std::mem::replace(&mut hit[v], true) {
                return None;
            }
        }
        let mut ports = Vec::with_capacity(n);
        for u in g.nodes() {
            let su = NodeId::new(sigma[u.index()] as usize);
            if g.degree(su) != g.degree(u) {
                return None;
            }
            let mut pm = Vec::with_capacity(g.degree(u));
            for &q in g.neighbors(u) {
                let sq = NodeId::new(sigma[q.index()] as usize);
                pm.push(g.port_to(su, sq)?);
            }
            ports.push(pm);
        }
        Some(Automorphism {
            node: sigma.to_vec(),
            ports,
        })
    }

    /// `σ(u)`.
    pub fn node(&self, u: usize) -> u32 {
        self.node[u]
    }

    /// The full node map.
    pub fn node_map(&self) -> &[u32] {
        &self.node
    }

    /// The port map at `u` (`map[l]` = image of port `l` at `σ(u)`).
    pub fn port_map(&self, u: usize) -> &[Port] {
        &self.ports[u]
    }

    /// `true` iff this is the identity.
    pub fn is_identity(&self) -> bool {
        self.node.iter().enumerate().all(|(u, &v)| u as u32 == v)
    }

    /// The composition "`self` after `other`" (apply `other` first).
    pub fn after(&self, other: &Automorphism) -> Automorphism {
        let node: Vec<u32> = other
            .node
            .iter()
            .map(|&v| self.node[v as usize])
            .collect();
        let ports = other
            .ports
            .iter()
            .enumerate()
            .map(|(u, pm)| {
                let mid = other.node[u] as usize;
                pm.iter().map(|&l| self.ports[mid][l.index()]).collect()
            })
            .collect();
        Automorphism { node, ports }
    }

    /// The inverse automorphism.
    pub fn inverse(&self) -> Automorphism {
        let n = self.node.len();
        let mut node = vec![0u32; n];
        for (u, &v) in self.node.iter().enumerate() {
            node[v as usize] = u as u32;
        }
        let mut ports: Vec<Vec<Port>> = self
            .ports
            .iter()
            .map(|pm| vec![Port::new(0); pm.len()])
            .collect();
        for (u, pm) in self.ports.iter().enumerate() {
            let v = self.node[u] as usize;
            for (l, &sl) in pm.iter().enumerate() {
                ports[v][sl.index()] = Port::new(l);
            }
        }
        Automorphism { node, ports }
    }
}

/// Exact closed-form generator candidates for the structured topology
/// families, **verified** against the built graph (a candidate that is
/// not an automorphism of `g`, or does not fix `root`, is silently
/// dropped — so a seeded `hubs` port numbering or an off-family graph
/// degrades to fewer generators, never to an unsound one).
///
/// Families and their root-fixing generators (root `r`):
///
/// * **path** — trivial (the reversal moves the root unless `r` is the
///   midpoint);
/// * **ring** — the reflection through `r`;
/// * **star** — adjacent-leaf transpositions (generating the symmetric
///   group on the leaves, minus the root if it is a leaf);
/// * **hubs** — adjacent hub–hub and spoke–spoke transpositions;
/// * **torus** — the x- and y-reflections through `r`, plus the
///   diagonal transpose when the torus is square.
pub fn family_generators(spec: &crate::GeneratorSpec, g: &Graph, root: NodeId) -> Vec<Automorphism> {
    let n = g.node_count();
    let idmap: Vec<u32> = (0..n as u32).collect();
    let mut candidates: Vec<Vec<u32>> = Vec::new();
    let transpose = |a: usize, b: usize, candidates: &mut Vec<Vec<u32>>| {
        let mut s = idmap.clone();
        s.swap(a, b);
        candidates.push(s);
    };
    match spec {
        crate::GeneratorSpec::Path => {
            // Only the reversal is non-trivial; emit it and let
            // verification drop it unless the root is the midpoint.
            candidates.push((0..n as u32).rev().collect());
        }
        crate::GeneratorSpec::Ring => {
            // Reflection through the root: r + k ↦ r − k (mod n).
            let r = root.index();
            candidates.push((0..n).map(|u| ((2 * n + 2 * r - u) % n) as u32).collect());
        }
        crate::GeneratorSpec::Star => {
            // Node 0 is the hub; adjacent leaf transpositions skipping
            // the root generate the full leaf symmetric group.
            for i in 1..n.saturating_sub(1) {
                if NodeId::new(i) != root && NodeId::new(i + 1) != root {
                    transpose(i, i + 1, &mut candidates);
                }
            }
            // Bridge over the root when it is an interior leaf.
            if root.index() >= 2 && root.index() + 1 < n {
                transpose(root.index() - 1, root.index() + 1, &mut candidates);
            }
        }
        crate::GeneratorSpec::Hubs { hubs } => {
            let h = (*hubs as usize).clamp(1, n.saturating_sub(1));
            for i in 0..h.saturating_sub(1) {
                if NodeId::new(i) != root && NodeId::new(i + 1) != root {
                    transpose(i, i + 1, &mut candidates);
                }
            }
            for j in h..n.saturating_sub(1) {
                if NodeId::new(j) != root && NodeId::new(j + 1) != root {
                    transpose(j, j + 1, &mut candidates);
                }
            }
        }
        crate::GeneratorSpec::Torus => {
            // Mirror `generators::torus` via the spec's own dimension
            // choice: as square as possible, w × h = n.
            let (w, h) = torus_dims(n);
            if w * h == n && w >= 3 && h >= 3 {
                let (x0, y0) = (root.index() % w, root.index() / w);
                let xflip = |x: usize, y: usize| (y * w + (2 * w + 2 * x0 - x) % w) as u32;
                let yflip = |x: usize, y: usize| (((2 * h + 2 * y0 - y) % h) * w + x) as u32;
                candidates.push(grid_map(w, h, xflip));
                candidates.push(grid_map(w, h, yflip));
                if w == h {
                    // Transpose about the root: swap the x and y offsets.
                    let diag =
                        |x: usize, y: usize| (((y0 + w + x - x0) % h) * w + (x0 + h + y - y0) % w) as u32;
                    candidates.push(grid_map(w, h, diag));
                }
            }
        }
        _ => {}
    }
    candidates
        .into_iter()
        .filter_map(|s| {
            (s[root.index()] == root.index() as u32)
                .then(|| Automorphism::from_nodes(g, &s))
                .flatten()
        })
        .collect()
}

/// The torus dimensions `generators::torus`-style callers use for `n`
/// nodes: the most square `w × h = n` factorization with both sides ≥ 3.
pub fn torus_dims(n: usize) -> (usize, usize) {
    let mut best = (n, 1);
    let mut w = 1;
    while w * w <= n {
        if n % w == 0 {
            best = (n / w, w);
        }
        w += 1;
    }
    best
}

fn grid_map(w: usize, h: usize, f: impl Fn(usize, usize) -> u32) -> Vec<u32> {
    let mut s = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            s.push(f(x, y));
        }
    }
    s
}

/// Closes `gens` into the full generated group (identity included), or
/// `None` if the group would exceed `cap` elements. Deterministic: the
/// result is sorted by node map.
pub fn close_group(g: &Graph, gens: &[Automorphism], cap: usize) -> Option<Vec<Automorphism>> {
    let mut elems = vec![Automorphism::identity(g)];
    let mut frontier = elems.clone();
    while let Some(e) = frontier.pop() {
        for gen in gens {
            let prod = gen.after(&e);
            if !elems.contains(&prod) {
                if elems.len() >= cap {
                    return None;
                }
                elems.push(prod.clone());
                frontier.push(prod);
            }
        }
    }
    elems.sort();
    Some(elems)
}

/// Enumerates the full root-fixing automorphism group of `g` by
/// backtracking search with degree and adjacency pruning, in
/// deterministic (node-map-sorted) order.
///
/// Exact for every graph whose group fits in `cap` elements; when the
/// group (or the search work) exceeds the cap the function returns the
/// **trivial group** `{identity}` — a sound under-approximation for
/// symmetry reduction, never an unsound over-approximation.
pub fn automorphism_group(g: &Graph, root: NodeId, cap: usize) -> Vec<Automorphism> {
    match search_group(g, root, cap) {
        Some(elems) => elems,
        None => vec![Automorphism::identity(g)],
    }
}

/// The exhaustive search behind [`automorphism_group`]; `None` when the
/// group size or the explored search-tree size exceeds its caps.
pub fn search_group(g: &Graph, root: NodeId, cap: usize) -> Option<Vec<Automorphism>> {
    let n = g.node_count();
    assert!(root.index() < n, "root out of range");
    // Assign images in BFS order from the root: every non-root node is
    // adjacent to an earlier one, so each partial image is constrained
    // to the neighborhood structure already fixed — the refinement that
    // keeps the search tree near the group size. Detached (degree-0)
    // nodes follow at the end.
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::from([root]);
    seen[root.index()] = true;
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.neighbors(u) {
            if !std::mem::replace(&mut seen[v.index()], true) {
                queue.push_back(v);
            }
        }
    }
    for u in g.nodes() {
        if !seen[u.index()] {
            order.push(u);
        }
    }

    let mut sigma: Vec<u32> = vec![u32::MAX; n];
    let mut used = vec![false; n];
    sigma[root.index()] = root.index() as u32;
    used[root.index()] = true;
    let mut out: Vec<Vec<u32>> = Vec::new();
    let mut steps: usize = 0;
    let complete = extend(g, &order, 1, &mut sigma, &mut used, &mut out, cap, &mut steps);
    if !complete {
        return None;
    }
    let mut elems: Vec<Automorphism> = out
        .iter()
        .map(|s| Automorphism::from_nodes(g, s).expect("search emits verified automorphisms"))
        .collect();
    elems.sort();
    Some(elems)
}

/// Search-tree-size cap: structured families' groups are found in time
/// proportional to their order, so this only trips on adversarial
/// near-symmetric graphs, where the trivial-group fallback is the right
/// trade.
const SEARCH_STEP_CAP: usize = 1_000_000;

#[allow(clippy::too_many_arguments)]
fn extend(
    g: &Graph,
    order: &[NodeId],
    k: usize,
    sigma: &mut Vec<u32>,
    used: &mut Vec<bool>,
    out: &mut Vec<Vec<u32>>,
    cap: usize,
    steps: &mut usize,
) -> bool {
    if k == order.len() {
        if out.len() >= cap {
            return false;
        }
        out.push(sigma.clone());
        return true;
    }
    let u = order[k];
    for v in g.nodes() {
        *steps += 1;
        if *steps > SEARCH_STEP_CAP {
            return false;
        }
        if used[v.index()] || g.degree(v) != g.degree(u) {
            continue;
        }
        // Adjacency must be preserved against every node already
        // mapped: u ~ w ⇔ v ~ σ(w).
        let ok = order[..k].iter().all(|&w| {
            let sw = NodeId::new(sigma[w.index()] as usize);
            g.has_edge(u, w) == g.has_edge(v, sw)
        });
        if !ok {
            continue;
        }
        sigma[u.index()] = v.index() as u32;
        used[v.index()] = true;
        let complete = extend(g, order, k + 1, sigma, used, out, cap, steps);
        sigma[u.index()] = u32::MAX;
        used[v.index()] = false;
        if !complete {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GeneratorSpec;

    fn assert_is_group(g: &Graph, elems: &[Automorphism]) {
        assert!(elems.iter().any(|e| e.is_identity()), "identity present");
        for a in elems {
            assert!(elems.contains(&a.inverse()), "closed under inverse");
            for b in elems {
                assert!(elems.contains(&a.after(b)), "closed under composition");
            }
        }
    }

    #[test]
    fn identity_and_port_maps_round_trip() {
        let g = generators::ring(5);
        let id = Automorphism::identity(&g);
        assert!(id.is_identity());
        assert_eq!(id.after(&id), id);
        assert_eq!(id.inverse(), id);
        for u in g.nodes() {
            for l in 0..g.degree(u) {
                assert_eq!(id.port_map(u.index())[l], Port::new(l));
            }
        }
    }

    #[test]
    fn from_nodes_rejects_non_automorphisms() {
        let g = generators::path(4);
        assert!(Automorphism::from_nodes(&g, &[0, 2, 1, 3]).is_none());
        assert!(Automorphism::from_nodes(&g, &[0, 0, 2, 3]).is_none());
        assert!(Automorphism::from_nodes(&g, &[3, 2, 1, 0]).is_some());
    }

    #[test]
    fn port_maps_commute_with_adjacency() {
        // adj[σ(u)][π_u(l)] == σ(adj[u][l]) for a nontrivial element.
        let g = generators::star(5);
        let a = Automorphism::from_nodes(&g, &[0, 2, 1, 3, 4]).unwrap();
        for u in g.nodes() {
            let su = NodeId::new(a.node(u.index()) as usize);
            for l in 0..g.degree(u) {
                let q = g.neighbor(u, Port::new(l));
                let via_ports = g.neighbor(su, a.port_map(u.index())[l]);
                assert_eq!(via_ports.index() as u32, a.node(q.index()));
            }
        }
    }

    #[test]
    fn ring_group_is_the_root_reflection() {
        for n in [3usize, 4, 6, 9] {
            let g = generators::ring(n);
            let elems = automorphism_group(&g, NodeId::new(0), 720);
            assert_eq!(elems.len(), 2, "ring:{n} fixes root: id + reflection");
            assert_is_group(&g, &elems);
            let fam = family_generators(&GeneratorSpec::Ring, &g, NodeId::new(0));
            assert_eq!(close_group(&g, &fam, 720).unwrap(), elems);
        }
    }

    #[test]
    fn star_group_is_leaf_symmetric_group() {
        let g = generators::star(6);
        let elems = automorphism_group(&g, NodeId::new(0), 720);
        assert_eq!(elems.len(), 120, "S_5 on the leaves");
        assert_is_group(&g, &elems);
        let fam = family_generators(&GeneratorSpec::Star, &g, NodeId::new(0));
        assert_eq!(close_group(&g, &fam, 720).unwrap(), elems);
        // Rooted at a leaf: the other 4 leaves still permute.
        let leaf_elems = automorphism_group(&g, NodeId::new(3), 720);
        assert_eq!(leaf_elems.len(), 24);
        let fam = family_generators(&GeneratorSpec::Star, &g, NodeId::new(3));
        assert_eq!(close_group(&g, &fam, 720).unwrap(), leaf_elems);
    }

    #[test]
    fn path_group_is_trivial_off_midpoint() {
        let g = generators::path(5);
        assert_eq!(automorphism_group(&g, NodeId::new(0), 720).len(), 1);
        // The midpoint of an odd path is fixed by the reversal.
        let elems = automorphism_group(&g, NodeId::new(2), 720);
        assert_eq!(elems.len(), 2);
        let fam = family_generators(&GeneratorSpec::Path, &g, NodeId::new(2));
        assert_eq!(close_group(&g, &fam, 720).unwrap(), elems);
        assert!(family_generators(&GeneratorSpec::Path, &g, NodeId::new(0)).is_empty());
    }

    #[test]
    fn hubs_generators_match_search() {
        // Seed 0 keeps hub ports orderly enough that the verified
        // transpositions generate the same group the search finds.
        let g = generators::hubs(6, 2, 0);
        let elems = automorphism_group(&g, NodeId::new(0), 720);
        assert_is_group(&g, &elems);
        // Root is hub 0: the other hub is pinned, spokes permute: S_4.
        assert_eq!(elems.len(), 24);
        let fam = family_generators(&GeneratorSpec::Hubs { hubs: 2 }, &g, NodeId::new(0));
        assert_eq!(close_group(&g, &fam, 720).unwrap(), elems);
    }

    #[test]
    fn torus_generators_match_search() {
        let g = generators::torus(3, 3);
        let elems = automorphism_group(&g, NodeId::new(0), 720);
        assert_is_group(&g, &elems);
        let fam = family_generators(&GeneratorSpec::Torus, &g, NodeId::new(0));
        let closed = close_group(&g, &fam, 720).unwrap();
        // The verified reflections + transpose generate a subgroup of
        // the full root-fixing group (tori also have e.g. glide
        // symmetries); every closed-form element must appear in the
        // searched group.
        assert!(closed.len() >= 8, "x/y flips and transpose: ≥ D4");
        for e in &closed {
            assert!(elems.contains(e));
        }
    }

    #[test]
    fn caps_degrade_to_trivial_group() {
        let g = generators::star(9);
        // S_8 has 40320 elements — over a cap of 100.
        let elems = automorphism_group(&g, NodeId::new(0), 100);
        assert_eq!(elems.len(), 1);
        assert!(elems[0].is_identity());
    }

    #[test]
    fn compose_and_inverse_act_consistently() {
        let g = generators::star(5);
        let elems = automorphism_group(&g, NodeId::new(0), 720);
        for a in &elems {
            assert!(a.after(&a.inverse()).is_identity());
            for b in &elems {
                let ab = a.after(b);
                for u in 0..g.node_count() {
                    assert_eq!(ab.node(u), a.node(b.node(u) as usize));
                }
            }
        }
    }
}
