//! Rooted spanning trees over a host graph.
//!
//! `STNO` runs on a spanning tree maintained by an underlying protocol; this
//! module provides the *sequential* representation of such a tree (parents,
//! ordered children, weights, preorder) used by oracle providers and as a
//! golden model in tests.

use std::fmt;

use crate::{Graph, NodeId, Port};

/// Error validating a rooted spanning tree against its host graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The root had a parent, or a non-root lacked one.
    BadRoot {
        /// The offending node.
        node: NodeId,
    },
    /// A parent pointer used an edge absent from the host graph.
    MissingEdge {
        /// The child whose parent pointer is invalid.
        child: NodeId,
        /// The alleged parent.
        parent: NodeId,
    },
    /// Parent pointers contain a cycle or do not span the graph.
    NotSpanning,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::BadRoot { node } => write!(f, "bad root/parent assignment at {node}"),
            TreeError::MissingEdge { child, parent } => {
                write!(f, "parent edge {child} -> {parent} not in host graph")
            }
            TreeError::NotSpanning => write!(f, "parent pointers do not form a spanning tree"),
        }
    }
}

impl std::error::Error for TreeError {}

/// The role the spanning tree protocol assigns to a node (Chapter 4: the
/// algorithm text distinguishes the root, leaf, and internal processors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// The distinguished root processor `r`.
    Root,
    /// A node with a parent and at least one child.
    Internal,
    /// A node with a parent and no children.
    Leaf,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Root => f.write_str("root"),
            Role::Internal => f.write_str("internal"),
            Role::Leaf => f.write_str("leaf"),
        }
    }
}

/// A rooted spanning tree of a host graph, with children ordered by the
/// parent's port numbers (the order in which `Distribute` hands out label
/// ranges).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    /// The port at the child leading to its parent.
    parent_port: Vec<Option<Port>>,
    /// Children in the parent's port order.
    children: Vec<Vec<NodeId>>,
    depth: Vec<usize>,
}

impl RootedTree {
    /// Builds and validates a rooted tree from parent pointers over `g`.
    ///
    /// Children are ordered by the parent's port numbers, making the
    /// preorder — and therefore `STNO`'s naming — deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError`] if the pointers are inconsistent with `g` or do
    /// not form a spanning tree rooted at `root`.
    pub fn from_parents(
        g: &Graph,
        root: NodeId,
        parent: &[Option<NodeId>],
    ) -> Result<Self, TreeError> {
        let n = g.node_count();
        assert_eq!(parent.len(), n, "parent vector length mismatch");
        if parent[root.index()].is_some() {
            return Err(TreeError::BadRoot { node: root });
        }
        let mut parent_port = vec![None; n];
        for u in g.nodes() {
            if u == root {
                continue;
            }
            let p = parent[u.index()].ok_or(TreeError::BadRoot { node: u })?;
            let port = g.port_to(u, p).ok_or(TreeError::MissingEdge {
                child: u,
                parent: p,
            })?;
            parent_port[u.index()] = Some(port);
        }
        // Children in parent's port order.
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                if parent[v.index()] == Some(u) {
                    children[u.index()].push(v);
                }
            }
        }
        // Depth computation doubles as the spanning/acyclicity check.
        let mut depth = vec![usize::MAX; n];
        depth[root.index()] = 0;
        let mut stack = vec![root];
        let mut seen = 1;
        while let Some(u) = stack.pop() {
            for &v in &children[u.index()] {
                if depth[v.index()] != usize::MAX {
                    return Err(TreeError::NotSpanning);
                }
                depth[v.index()] = depth[u.index()] + 1;
                seen += 1;
                stack.push(v);
            }
        }
        if seen != n {
            return Err(TreeError::NotSpanning);
        }
        Ok(RootedTree {
            root,
            parent: parent.to_vec(),
            parent_port,
            children,
            depth,
        })
    }

    /// The distinguished root.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// Parent of `p`, `None` for the root.
    pub fn parent(&self, p: NodeId) -> Option<NodeId> {
        self.parent[p.index()]
    }

    /// The port at `p` leading to its parent.
    pub fn parent_port(&self, p: NodeId) -> Option<Port> {
        self.parent_port[p.index()]
    }

    /// Children of `p` in the parent's port order.
    pub fn children(&self, p: NodeId) -> &[NodeId] {
        &self.children[p.index()]
    }

    /// Depth of `p` (root = 0).
    pub fn depth(&self, p: NodeId) -> usize {
        self.depth[p.index()]
    }

    /// Height `h` of the tree — the quantity in `STNO`'s `O(h)` bound.
    pub fn height(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// The paper's role classification.
    pub fn role(&self, p: NodeId) -> Role {
        if p == self.root {
            Role::Root
        } else if self.children[p.index()].is_empty() {
            Role::Leaf
        } else {
            Role::Internal
        }
    }

    /// `Weight_p` for every node: the number of nodes in the subtree rooted
    /// at `p` (leaves report 1), computed bottom-up as in Figure 4.1.1.
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let order = self.preorder();
        let mut w = vec![1usize; self.node_count()];
        for &u in order.iter().rev() {
            for &c in self.children(u) {
                w[u.index()] += w[c.index()];
            }
        }
        w
    }

    /// Preorder traversal (children in port order). `STNO`'s stabilized
    /// names are exactly the preorder ranks (root = 0).
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.node_count());
        let mut stack = vec![self.root];
        while let Some(u) = stack.pop() {
            out.push(u);
            // Push children in reverse so the lowest port pops first.
            for &c in self.children(u).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// `rank[p]` = preorder rank of `p` — the golden model for `STNO`'s
    /// node names.
    pub fn preorder_ranks(&self) -> Vec<usize> {
        let mut rank = vec![0usize; self.node_count()];
        for (i, u) in self.preorder().into_iter().enumerate() {
            rank[u.index()] = i;
        }
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traverse;

    fn tree_of(g: &Graph, root: NodeId) -> RootedTree {
        let bfs = traverse::bfs(g, root);
        RootedTree::from_parents(g, root, &bfs.parent).unwrap()
    }

    #[test]
    fn paper_stno_tree_weights_match_figure() {
        let g = generators::paper_example_stno();
        let t = tree_of(&g, NodeId::new(0));
        let w = t.subtree_sizes();
        assert_eq!(w, vec![5, 3, 1, 1, 1], "Figure 4.1.1 weights");
    }

    #[test]
    fn paper_stno_tree_preorder_matches_figure() {
        let g = generators::paper_example_stno();
        let t = tree_of(&g, NodeId::new(0));
        assert_eq!(t.preorder_ranks(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn roles_are_classified() {
        let g = generators::paper_example_stno();
        let t = tree_of(&g, NodeId::new(0));
        assert_eq!(t.role(NodeId::new(0)), Role::Root);
        assert_eq!(t.role(NodeId::new(1)), Role::Internal);
        assert_eq!(t.role(NodeId::new(2)), Role::Leaf);
        assert_eq!(t.role(NodeId::new(4)), Role::Leaf);
    }

    #[test]
    fn height_of_path_and_star() {
        let p = generators::path(6);
        assert_eq!(tree_of(&p, NodeId::new(0)).height(), 5);
        let s = generators::star(6);
        assert_eq!(tree_of(&s, NodeId::new(0)).height(), 1);
    }

    #[test]
    fn children_follow_port_order() {
        // Root 0 with edges inserted to 2 first, then 1.
        let g = Graph::from_edges(3, &[(0, 2), (0, 1)]).unwrap();
        let t = tree_of(&g, NodeId::new(0));
        let kids: Vec<usize> = t
            .children(NodeId::new(0))
            .iter()
            .map(|c| c.index())
            .collect();
        assert_eq!(kids, vec![2, 1]);
        let pre: Vec<usize> = t.preorder().iter().map(|c| c.index()).collect();
        assert_eq!(pre, vec![0, 2, 1]);
    }

    #[test]
    fn rejects_cycle() {
        let g = generators::ring(4);
        // 0 -> 1 -> 2 -> 3 -> 0 parent cycle plus bogus root.
        let parents = vec![
            None,
            Some(NodeId::new(2)),
            Some(NodeId::new(3)),
            Some(NodeId::new(2)),
        ];
        // 3 -> 2 and 2 -> 3 form a cycle detached from the root.
        let err = RootedTree::from_parents(&g, NodeId::new(0), &parents);
        assert_eq!(err, Err(TreeError::NotSpanning));
    }

    #[test]
    fn rejects_parent_without_edge() {
        let g = generators::path(3);
        let parents = vec![None, Some(NodeId::new(0)), Some(NodeId::new(0))];
        let err = RootedTree::from_parents(&g, NodeId::new(0), &parents);
        assert_eq!(
            err,
            Err(TreeError::MissingEdge {
                child: NodeId::new(2),
                parent: NodeId::new(0)
            })
        );
    }

    #[test]
    fn rejects_missing_parent() {
        let g = generators::path(3);
        let parents = vec![None, None, Some(NodeId::new(1))];
        let err = RootedTree::from_parents(&g, NodeId::new(0), &parents);
        assert_eq!(
            err,
            Err(TreeError::BadRoot {
                node: NodeId::new(1)
            })
        );
    }

    #[test]
    fn subtree_sizes_sum_at_root() {
        for seed in 0..5 {
            let g = generators::random_connected(24, 12, seed);
            let t = tree_of(&g, NodeId::new(0));
            let w = t.subtree_sizes();
            assert_eq!(w[0], 24);
            // Every node's weight is 1 + sum of children weights.
            for u in g.nodes() {
                let expect: usize = t.children(u).iter().map(|c| w[c.index()]).sum::<usize>() + 1;
                assert_eq!(w[u.index()], expect);
            }
        }
    }

    #[test]
    fn preorder_of_dfs_tree_equals_dfs_order() {
        // Sanity link between the two golden models: the preorder of the
        // first-DFS tree is the DFS visit order itself.
        let g = generators::random_connected(20, 15, 11);
        let dfs = traverse::first_dfs(&g, NodeId::new(0));
        let t = RootedTree::from_parents(&g, NodeId::new(0), &dfs.parent).unwrap();
        assert_eq!(t.preorder(), dfs.order);
    }
}
