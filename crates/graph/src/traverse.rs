//! Golden sequential traversals used as oracles.
//!
//! `first_dfs` computes the *first depth-first traversal*: starting from the
//! root, always follow the lowest-numbered port leading to an unvisited
//! node. This is exactly the deterministic order in which the paper's
//! underlying token circulation protocol passes the token, so its preorder
//! ranks are the names `DFTNO` must assign (Lemma 3.2.1).

use crate::{Graph, NodeId, Port};

/// One move of the token in a depth-first round (Euler tour of the DFS
/// tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EulerEvent {
    /// The token is forwarded from `from` to the unvisited node `to`
    /// (enables `Forward(to)` in the paper's terminology).
    Forward {
        /// Sender.
        from: NodeId,
        /// Receiver — visited for the first time in this round.
        to: NodeId,
    },
    /// The token is backtracked from `from` to its parent `to` (enables
    /// `Backtrack(to)`).
    Backtrack {
        /// The child returning the token.
        from: NodeId,
        /// The parent receiving it back.
        to: NodeId,
    },
}

/// Result of the golden first depth-first traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfsResult {
    /// The root the traversal started from.
    pub root: NodeId,
    /// Nodes in visit (preorder) order; `order[0] == root`.
    pub order: Vec<NodeId>,
    /// `rank[p]` = position of `p` in `order` (its DFS number / the name
    /// `DFTNO` assigns).
    pub rank: Vec<usize>,
    /// `parent[p]` = DFS-tree parent (`None` for the root).
    pub parent: Vec<Option<NodeId>>,
    /// `parent_port[p]` = the port at `p` leading to its parent.
    pub parent_port: Vec<Option<Port>>,
    /// `children[p]` = DFS-tree children of `p`, in `p`'s port order.
    pub children: Vec<Vec<NodeId>>,
    /// The token's Euler tour over the DFS tree: `2(n−1)` events.
    pub euler: Vec<EulerEvent>,
    /// `root_path[p]` = the ports taken from the root to `p` along the DFS
    /// tree (empty for the root). These are exactly the stabilized values of
    /// the Collin–Dolev path variables.
    pub root_path: Vec<Vec<Port>>,
    /// `depth[p]` = length of `root_path[p]`.
    pub depth: Vec<usize>,
}

impl DfsResult {
    /// Height of the DFS tree (maximum depth).
    pub fn height(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }
}

/// Computes the first depth-first traversal of `g` from `root`.
///
/// # Panics
///
/// Panics if `root` is out of range or `g` is disconnected (every node must
/// be reached, as the paper's model requires connectivity).
pub fn first_dfs(g: &Graph, root: NodeId) -> DfsResult {
    let n = g.node_count();
    assert!(root.index() < n, "root out of range");
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut rank = vec![usize::MAX; n];
    let mut parent = vec![None; n];
    let mut parent_port = vec![None; n];
    let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut euler = Vec::with_capacity(2 * n.saturating_sub(1));
    let mut root_path: Vec<Vec<Port>> = vec![Vec::new(); n];
    let mut depth = vec![0usize; n];

    // Iterative DFS with an explicit scan pointer per stacked node: always
    // explore the lowest unvisited port.
    visited[root.index()] = true;
    rank[root.index()] = 0;
    order.push(root);
    let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
    while let Some(&mut (u, ref mut next)) = stack.last_mut() {
        let deg = g.degree(u);
        let mut advanced = false;
        while *next < deg {
            let l = Port::new(*next);
            *next += 1;
            let v = g.neighbor(u, l);
            if !visited[v.index()] {
                visited[v.index()] = true;
                rank[v.index()] = order.len();
                order.push(v);
                parent[v.index()] = Some(u);
                parent_port[v.index()] = Some(g.back_port(u, l));
                children[u.index()].push(v);
                let mut path = root_path[u.index()].clone();
                path.push(l);
                depth[v.index()] = path.len();
                root_path[v.index()] = path;
                euler.push(EulerEvent::Forward { from: u, to: v });
                stack.push((v, 0));
                advanced = true;
                break;
            }
        }
        if !advanced {
            stack.pop();
            if let Some(&(p, _)) = stack.last() {
                euler.push(EulerEvent::Backtrack { from: u, to: p });
            }
        }
    }
    assert_eq!(
        order.len(),
        n,
        "graph must be connected for a depth-first round to visit all nodes"
    );
    DfsResult {
        root,
        order,
        rank,
        parent,
        parent_port,
        children,
        euler,
        root_path,
        depth,
    }
}

/// Result of a breadth-first traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// The root.
    pub root: NodeId,
    /// `dist[p]` = hop distance from the root.
    pub dist: Vec<usize>,
    /// `parent[p]` = BFS-tree parent: the neighbor at distance `dist[p]−1`
    /// reachable through `p`'s *lowest* port (`None` for the root). This tie
    /// break matches the stabilized output of the self-stabilizing BFS tree
    /// protocol in `sno-tree`.
    pub parent: Vec<Option<NodeId>>,
    /// `parent_port[p]` = the port at `p` leading to its parent.
    pub parent_port: Vec<Option<Port>>,
}

impl BfsResult {
    /// Height of the BFS tree = eccentricity of the root.
    pub fn height(&self) -> usize {
        self.dist.iter().copied().max().unwrap_or(0)
    }
}

/// Computes BFS distances and the lowest-port BFS tree from `root`.
///
/// # Panics
///
/// Panics if `root` is out of range or `g` is disconnected.
pub fn bfs(g: &Graph, root: NodeId) -> BfsResult {
    let n = g.node_count();
    assert!(root.index() < n, "root out of range");
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[root.index()] = 0;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v.index()] == usize::MAX {
                dist[v.index()] = dist[u.index()] + 1;
                queue.push_back(v);
            }
        }
    }
    assert!(
        dist.iter().all(|&d| d != usize::MAX),
        "graph must be connected"
    );
    let mut parent = vec![None; n];
    let mut parent_port = vec![None; n];
    for u in g.nodes() {
        if u == root {
            continue;
        }
        for (i, &v) in g.neighbors(u).iter().enumerate() {
            if dist[v.index()] + 1 == dist[u.index()] {
                parent[u.index()] = Some(v);
                parent_port[u.index()] = Some(Port::new(i));
                break;
            }
        }
        assert!(parent[u.index()].is_some(), "bfs parent must exist");
    }
    BfsResult {
        root,
        dist,
        parent,
        parent_port,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dfs_on_path_is_linear() {
        let g = generators::path(4);
        let d = first_dfs(&g, NodeId::new(0));
        let order: Vec<usize> = d.order.iter().map(|p| p.index()).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(d.euler.len(), 6);
        assert_eq!(d.height(), 3);
    }

    #[test]
    fn dfs_ranks_are_inverse_of_order() {
        let g = generators::random_connected(15, 10, 3);
        let d = first_dfs(&g, NodeId::new(0));
        for (i, &p) in d.order.iter().enumerate() {
            assert_eq!(d.rank[p.index()], i);
        }
    }

    #[test]
    fn dfs_prefers_lowest_port() {
        // Node 0 connected to 2 first (port 0), then 1 (port 1).
        let g = crate::Graph::from_edges(3, &[(0, 2), (0, 1)]).unwrap();
        let d = first_dfs(&g, NodeId::new(0));
        let order: Vec<usize> = d.order.iter().map(|p| p.index()).collect();
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[test]
    fn dfs_parents_form_spanning_tree() {
        let g = generators::random_connected(20, 14, 8);
        let d = first_dfs(&g, NodeId::new(0));
        assert_eq!(d.parent[0], None);
        let tree_edges = d.parent.iter().filter(|p| p.is_some()).count();
        assert_eq!(tree_edges, 19);
        // Every child is reachable via parent pointers.
        for u in g.nodes().skip(1) {
            let mut cur = u;
            let mut hops = 0;
            while let Some(p) = d.parent[cur.index()] {
                cur = p;
                hops += 1;
                assert!(hops <= 20, "parent chain must reach the root");
            }
            assert_eq!(cur, NodeId::new(0));
        }
    }

    #[test]
    fn dfs_euler_tour_has_2n_minus_2_events() {
        let g = generators::random_connected(12, 9, 1);
        let d = first_dfs(&g, NodeId::new(0));
        assert_eq!(d.euler.len(), 2 * (12 - 1));
        let forwards = d
            .euler
            .iter()
            .filter(|e| matches!(e, EulerEvent::Forward { .. }))
            .count();
        assert_eq!(forwards, 11);
    }

    #[test]
    fn dfs_root_paths_match_parents() {
        let g = generators::random_connected(10, 6, 2);
        let d = first_dfs(&g, NodeId::new(0));
        for u in g.nodes() {
            // Walking the ports from the root must land on u.
            let mut cur = NodeId::new(0);
            for &port in &d.root_path[u.index()] {
                cur = g.neighbor(cur, port);
            }
            assert_eq!(cur, u);
            assert_eq!(d.depth[u.index()], d.root_path[u.index()].len());
        }
    }

    #[test]
    fn dfs_visit_order_is_lexicographic_on_root_paths() {
        // Key property for DFTNO: the DFS rank of a node equals the rank of
        // its root path in lexicographic port order.
        let g = generators::random_connected(18, 12, 5);
        let d = first_dfs(&g, NodeId::new(0));
        let mut paths: Vec<(Vec<Port>, NodeId)> = g
            .nodes()
            .map(|u| (d.root_path[u.index()].clone(), u))
            .collect();
        paths.sort();
        for (i, (_, u)) in paths.iter().enumerate() {
            assert_eq!(d.rank[u.index()], i, "lex rank equals DFS rank");
        }
    }

    #[test]
    fn bfs_distances_on_ring() {
        let g = generators::ring(6);
        let b = bfs(&g, NodeId::new(0));
        assert_eq!(b.dist, vec![0, 1, 2, 3, 2, 1]);
        assert_eq!(b.height(), 3);
    }

    #[test]
    fn bfs_parent_is_lowest_port_min_neighbor() {
        let g = generators::complete(4);
        let b = bfs(&g, NodeId::new(0));
        for u in 1..4 {
            assert_eq!(b.parent[u], Some(NodeId::new(0)));
        }
    }

    #[test]
    fn bfs_parent_port_round_trips() {
        let g = generators::random_connected(16, 10, 4);
        let b = bfs(&g, NodeId::new(0));
        for u in g.nodes().skip(1) {
            let port = b.parent_port[u.index()].unwrap();
            assert_eq!(g.neighbor(u, port), b.parent[u.index()].unwrap());
        }
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn dfs_panics_on_disconnected() {
        let g = crate::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let _ = first_dfs(&g, NodeId::new(0));
    }
}
