//! Nameable, serializable topology specifications.
//!
//! A [`GeneratorSpec`] is a *family* of topologies keyed by a stable
//! string name (e.g. `"ring"`, `"balanced-tree:4"`), instantiated at a
//! concrete size and seed with [`GeneratorSpec::build`]. Campaign runners
//! (`sno-lab`) put these in scenario matrices, persist them in JSON
//! reports, and parse them back from CLI arguments — which is why the
//! [`Display`](std::fmt::Display) and [`FromStr`](std::str::FromStr)
//! implementations round-trip exactly.

use std::fmt;
use std::str::FromStr;

use crate::generators::{self, Topology};
use crate::Graph;

/// A named topology family, instantiated via [`GeneratorSpec::build`].
///
/// The `n` passed to `build` is a *target* size; families with structural
/// constraints (rings need ≥ 3 nodes, hypercubes are powers of two, …)
/// clamp or round exactly like [`Topology::build`] does, so the actual
/// [`Graph::node_count`] is authoritative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GeneratorSpec {
    /// [`generators::path`] — the `O(h)` worst case (`h = n − 1`).
    Path,
    /// [`generators::ring`].
    Ring,
    /// [`generators::star`] — the `O(h)` best case (`h = 1`).
    Star,
    /// [`generators::complete`] (clamped to ≤ 64 nodes).
    Complete,
    /// [`generators::grid`], as square as possible.
    Grid,
    /// [`generators::torus`], as square as possible (≥ 3×3).
    Torus,
    /// [`generators::hypercube`] — rounds `n` down to a power of two.
    Hypercube,
    /// [`generators::wheel`].
    Wheel,
    /// [`generators::balanced_tree`] with this arity, deep enough to
    /// reach ≈ `n` nodes.
    BalancedTree {
        /// Children per internal node (≥ 1).
        arity: u8,
    },
    /// [`generators::caterpillar`] with this many legs per spine node.
    Caterpillar {
        /// Leaves attached to each spine node.
        legs: u8,
    },
    /// [`generators::hubs`] with this many hub nodes wired to all
    /// others — the skewed-degree family between the star and the
    /// clique (seeded port numbering).
    Hubs {
        /// Number of hub nodes (≥ 1, clamped below the node count).
        hubs: u8,
    },
    /// [`generators::random_tree`] (seeded).
    RandomTree,
    /// [`generators::random_connected`] with `extra_per_node × n` chords.
    RandomSparse {
        /// Extra edges per node beyond the spanning tree.
        extra_per_node: u8,
    },
    /// [`generators::random_connected`] with `n²/4` extra edges.
    RandomDense,
    /// [`generators::ring_with_chords`] with `n/2` chords — the shape of
    /// the paper's Figure 2.2.1.
    ChordalRing,
}

impl GeneratorSpec {
    /// A broad default sweep covering tree, sparse, dense, and
    /// skewed-degree shapes.
    pub const PRESETS: [GeneratorSpec; 9] = [
        GeneratorSpec::Path,
        GeneratorSpec::Ring,
        GeneratorSpec::Star,
        GeneratorSpec::BalancedTree { arity: 2 },
        GeneratorSpec::Hubs { hubs: 2 },
        GeneratorSpec::RandomTree,
        GeneratorSpec::RandomSparse { extra_per_node: 2 },
        GeneratorSpec::RandomDense,
        GeneratorSpec::ChordalRing,
    ];

    /// Builds a concrete connected graph with roughly `n` nodes.
    ///
    /// Deterministic in `(self, n, seed)`; families without randomness
    /// ignore `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or a parameter is degenerate (`arity == 0`).
    pub fn build(self, n: usize, seed: u64) -> Graph {
        assert!(n > 0, "topologies need at least one node");
        match self {
            GeneratorSpec::Path => generators::path(n),
            GeneratorSpec::Ring => generators::ring(n.max(3)),
            GeneratorSpec::Star => generators::star(n.max(2)),
            GeneratorSpec::Complete => generators::complete(n.clamp(2, 64)),
            GeneratorSpec::Grid => {
                let w = (1..=n).rev().find(|w| w * w <= n).unwrap_or(1);
                generators::grid(w, n.div_ceil(w).max(1))
            }
            GeneratorSpec::Torus => {
                let n = n.max(9);
                let w = (3..=n).rev().find(|w| w * w <= n).unwrap_or(3);
                generators::torus(w, (n / w).max(3))
            }
            GeneratorSpec::Hypercube => {
                let d = (usize::BITS - n.max(2).leading_zeros() - 1).max(1);
                generators::hypercube(d)
            }
            GeneratorSpec::Wheel => generators::wheel(n.max(4)),
            GeneratorSpec::BalancedTree { arity } => {
                let arity = arity.max(1) as usize;
                // Smallest depth whose complete tree reaches ≈ n nodes.
                let mut depth = 0u32;
                let mut count = 1usize;
                let mut level = 1usize;
                while count < n && depth < 24 {
                    depth += 1;
                    level = level.saturating_mul(arity);
                    count = count.saturating_add(level);
                }
                generators::balanced_tree(arity, depth)
            }
            GeneratorSpec::Caterpillar { legs } => {
                let spine = (n / (1 + legs as usize)).max(1);
                generators::caterpillar(spine, legs as usize)
            }
            GeneratorSpec::Hubs { hubs } => {
                let h = (hubs.max(1) as usize).min(n.max(2) - 1);
                generators::hubs(n.max(2), h, seed)
            }
            GeneratorSpec::RandomTree => generators::random_tree(n, seed),
            GeneratorSpec::RandomSparse { extra_per_node } => {
                generators::random_connected(n.max(2), extra_per_node as usize * n, seed)
            }
            GeneratorSpec::RandomDense => generators::random_connected(n.max(2), n * n / 4, seed),
            GeneratorSpec::ChordalRing => generators::ring_with_chords(n.max(4), n / 2, seed),
        }
    }
}

impl From<Topology> for GeneratorSpec {
    fn from(t: Topology) -> Self {
        match t {
            Topology::Path => GeneratorSpec::Path,
            Topology::Ring => GeneratorSpec::Ring,
            Topology::Star => GeneratorSpec::Star,
            Topology::Complete => GeneratorSpec::Complete,
            Topology::RandomTree => GeneratorSpec::RandomTree,
            Topology::RandomSparse => GeneratorSpec::RandomSparse { extra_per_node: 2 },
            Topology::RandomDense => GeneratorSpec::RandomDense,
            Topology::Hypercube => GeneratorSpec::Hypercube,
        }
    }
}

impl fmt::Display for GeneratorSpec {
    // The rendered name round-trips exactly through `FromStr`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeneratorSpec::Path => f.write_str("path"),
            GeneratorSpec::Ring => f.write_str("ring"),
            GeneratorSpec::Star => f.write_str("star"),
            GeneratorSpec::Complete => f.write_str("complete"),
            GeneratorSpec::Grid => f.write_str("grid"),
            GeneratorSpec::Torus => f.write_str("torus"),
            GeneratorSpec::Hypercube => f.write_str("hypercube"),
            GeneratorSpec::Wheel => f.write_str("wheel"),
            GeneratorSpec::BalancedTree { arity } => write!(f, "balanced-tree:{arity}"),
            GeneratorSpec::Caterpillar { legs } => write!(f, "caterpillar:{legs}"),
            GeneratorSpec::Hubs { hubs } => write!(f, "hubs:{hubs}"),
            GeneratorSpec::RandomTree => f.write_str("random-tree"),
            GeneratorSpec::RandomSparse { extra_per_node } => {
                write!(f, "random-sparse:{extra_per_node}")
            }
            GeneratorSpec::RandomDense => f.write_str("random-dense"),
            GeneratorSpec::ChordalRing => f.write_str("chordal-ring"),
        }
    }
}

/// Error returned when parsing a [`GeneratorSpec`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError(String);

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown topology spec `{}`", self.0)
    }
}

impl std::error::Error for ParseSpecError {}

impl FromStr for GeneratorSpec {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (name, param) = match s.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (s, None),
        };
        let param_u8 = || -> Result<u8, ParseSpecError> {
            param
                .ok_or_else(|| ParseSpecError(s.to_string()))?
                .parse()
                .map_err(|_| ParseSpecError(s.to_string()))
        };
        let spec = match name {
            "path" => GeneratorSpec::Path,
            "ring" => GeneratorSpec::Ring,
            "star" => GeneratorSpec::Star,
            "complete" => GeneratorSpec::Complete,
            "grid" => GeneratorSpec::Grid,
            "torus" => GeneratorSpec::Torus,
            "hypercube" => GeneratorSpec::Hypercube,
            "wheel" => GeneratorSpec::Wheel,
            "balanced-tree" => GeneratorSpec::BalancedTree { arity: param_u8()? },
            "caterpillar" => GeneratorSpec::Caterpillar { legs: param_u8()? },
            "hubs" => GeneratorSpec::Hubs { hubs: param_u8()? },
            "random-tree" => GeneratorSpec::RandomTree,
            "random-sparse" => GeneratorSpec::RandomSparse {
                extra_per_node: param_u8()?,
            },
            "random-dense" => GeneratorSpec::RandomDense,
            "chordal-ring" => GeneratorSpec::ChordalRing,
            _ => return Err(ParseSpecError(s.to_string())),
        };
        // Exact round-trip: parameterized families must spell their
        // parameter, parameterless families must not carry one, and no
        // alternate spellings (e.g. zero-padded numbers) are accepted.
        if spec.to_string() != s {
            return Err(ParseSpecError(s.to_string()));
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn every_preset_builds_connected_graphs() {
        for spec in GeneratorSpec::PRESETS {
            for n in [4usize, 9, 16, 33] {
                let g = spec.build(n, 7);
                assert!(g.is_connected(), "{spec} n={n}");
                assert!(g.node_count() >= 2, "{spec} n={n}");
            }
        }
    }

    #[test]
    fn display_from_str_round_trips() {
        let all = [
            GeneratorSpec::Path,
            GeneratorSpec::Ring,
            GeneratorSpec::Star,
            GeneratorSpec::Complete,
            GeneratorSpec::Grid,
            GeneratorSpec::Torus,
            GeneratorSpec::Hypercube,
            GeneratorSpec::Wheel,
            GeneratorSpec::BalancedTree { arity: 3 },
            GeneratorSpec::Caterpillar { legs: 2 },
            GeneratorSpec::Hubs { hubs: 3 },
            GeneratorSpec::RandomTree,
            GeneratorSpec::RandomSparse { extra_per_node: 4 },
            GeneratorSpec::RandomDense,
            GeneratorSpec::ChordalRing,
        ];
        for spec in all {
            let name = spec.to_string();
            assert_eq!(name.parse::<GeneratorSpec>().unwrap(), spec, "{name}");
        }
        assert!("nonsense".parse::<GeneratorSpec>().is_err());
        assert!(
            "balanced-tree".parse::<GeneratorSpec>().is_err(),
            "missing param"
        );
        assert!("balanced-tree:x".parse::<GeneratorSpec>().is_err());
        assert!("ring:5".parse::<GeneratorSpec>().is_err(), "spurious param");
        assert!(
            "random-dense:3".parse::<GeneratorSpec>().is_err(),
            "spurious param"
        );
        assert!(
            "balanced-tree:03".parse::<GeneratorSpec>().is_err(),
            "non-canonical spelling"
        );
    }

    #[test]
    fn builds_are_deterministic_per_seed() {
        for spec in [GeneratorSpec::RandomTree, GeneratorSpec::RandomDense] {
            assert_eq!(spec.build(12, 3), spec.build(12, 3));
        }
        assert_ne!(
            GeneratorSpec::RandomTree.build(12, 3),
            GeneratorSpec::RandomTree.build(12, 4)
        );
    }

    #[test]
    fn grid_and_torus_sizes_are_close_to_target() {
        let g = GeneratorSpec::Grid.build(16, 0);
        assert_eq!(g.node_count(), 16);
        let t = GeneratorSpec::Torus.build(16, 0);
        assert!(
            t.node_count() >= 12 && t.node_count() <= 16,
            "{}",
            t.node_count()
        );
    }

    #[test]
    fn balanced_tree_reaches_target_size() {
        let g = GeneratorSpec::BalancedTree { arity: 2 }.build(20, 0);
        assert!(g.node_count() >= 20, "{}", g.node_count());
        assert!(g.is_tree());
    }

    #[test]
    fn topology_conversion_is_name_stable() {
        for t in Topology::ALL {
            let spec: GeneratorSpec = t.into();
            let g = spec.build(12, 5);
            assert!(g.is_connected(), "{t}");
        }
    }

    #[test]
    fn default_root_is_always_valid() {
        for spec in GeneratorSpec::PRESETS {
            let g = spec.build(10, 1);
            assert!(NodeId::new(0).index() < g.node_count());
        }
    }
}
