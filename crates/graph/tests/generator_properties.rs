//! Property-based tests for the topology substrate: every generator must
//! produce graphs whose invariants the whole stack silently relies on.

use proptest::prelude::*;
use sno_graph::{generators, props, traverse, NodeId, Port, RootedTree};

fn check_port_symmetry(g: &sno_graph::Graph) {
    for u in g.nodes() {
        for l in 0..g.degree(u) {
            let l = Port::new(l);
            let v = g.neighbor(u, l);
            let back = g.back_port(u, l);
            assert_eq!(g.neighbor(v, back), u);
            assert_eq!(g.back_port(v, back), l);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_connected_invariants(n in 2usize..40, extra in 0usize..60, seed: u64) {
        let g = generators::random_connected(n, extra, seed);
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.node_count(), n);
        check_port_symmetry(&g);
        // Edge count: spanning tree + extra, capped at complete.
        let max = n * (n - 1) / 2;
        prop_assert_eq!(g.edge_count(), (n - 1 + extra).min(max));
    }

    #[test]
    fn random_tree_invariants(n in 1usize..60, seed: u64) {
        let g = generators::random_tree(n, seed);
        prop_assert!(g.is_tree() || n == 1);
        check_port_symmetry(&g);
    }

    #[test]
    fn dfs_and_bfs_agree_on_reachability(n in 2usize..30, extra in 0usize..30, seed: u64) {
        let g = generators::random_connected(n, extra, seed);
        let dfs = traverse::first_dfs(&g, NodeId::new(0));
        let bfs = traverse::bfs(&g, NodeId::new(0));
        prop_assert_eq!(dfs.order.len(), n);
        prop_assert!(bfs.dist.iter().all(|&d| d < n));
        // BFS distance is a lower bound on DFS depth.
        for u in g.nodes() {
            prop_assert!(bfs.dist[u.index()] <= dfs.depth[u.index()]);
        }
    }

    #[test]
    fn dfs_rank_is_lex_rank_of_root_paths(n in 2usize..25, extra in 0usize..25, seed: u64) {
        let g = generators::random_connected(n, extra, seed);
        let dfs = traverse::first_dfs(&g, NodeId::new(0));
        let mut paths: Vec<(&Vec<Port>, usize)> = dfs
            .root_path
            .iter()
            .enumerate()
            .map(|(i, p)| (p, i))
            .collect();
        paths.sort();
        for (rank, (_, node)) in paths.iter().enumerate() {
            prop_assert_eq!(dfs.rank[*node], rank);
        }
    }

    #[test]
    fn euler_tour_is_a_closed_walk(n in 2usize..25, extra in 0usize..25, seed: u64) {
        let g = generators::random_connected(n, extra, seed);
        let dfs = traverse::first_dfs(&g, NodeId::new(0));
        let mut at = NodeId::new(0);
        for ev in &dfs.euler {
            match *ev {
                traverse::EulerEvent::Forward { from, to } => {
                    prop_assert_eq!(from, at);
                    prop_assert!(g.port_to(from, to).is_some());
                    at = to;
                }
                traverse::EulerEvent::Backtrack { from, to } => {
                    prop_assert_eq!(from, at);
                    prop_assert_eq!(dfs.parent[from.index()], Some(to));
                    at = to;
                }
            }
        }
        prop_assert_eq!(at, NodeId::new(0), "the tour returns to the root");
    }

    #[test]
    fn bfs_tree_is_a_valid_rooted_tree(n in 2usize..30, extra in 0usize..30, seed: u64) {
        let g = generators::random_connected(n, extra, seed);
        let bfs = traverse::bfs(&g, NodeId::new(0));
        let tree = RootedTree::from_parents(&g, NodeId::new(0), &bfs.parent).unwrap();
        prop_assert_eq!(tree.height(), bfs.height());
        // Depth in the tree equals the BFS distance.
        for u in g.nodes() {
            prop_assert_eq!(tree.depth(u), bfs.dist[u.index()]);
        }
        // Preorder ranks are a permutation.
        let mut ranks = tree.preorder_ranks();
        ranks.sort_unstable();
        prop_assert_eq!(ranks, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn subtree_sizes_are_consistent(n in 2usize..30, seed: u64) {
        let g = generators::random_tree(n, seed);
        let bfs = traverse::bfs(&g, NodeId::new(0));
        let tree = RootedTree::from_parents(&g, NodeId::new(0), &bfs.parent).unwrap();
        let w = tree.subtree_sizes();
        prop_assert_eq!(w[0], n);
        let total_as_leaves: usize = g
            .nodes()
            .filter(|&p| tree.children(p).is_empty())
            .map(|p| w[p.index()])
            .sum();
        prop_assert_eq!(total_as_leaves, g.nodes().filter(|&p| tree.children(p).is_empty()).count());
    }

    #[test]
    fn diameter_bounds(n in 3usize..25, extra in 0usize..20, seed: u64) {
        let g = generators::random_connected(n, extra, seed);
        let s = props::stats(&g, NodeId::new(0));
        prop_assert!(s.diameter >= 1);
        prop_assert!(s.diameter < n);
        prop_assert!(s.root_ecc <= s.diameter);
        prop_assert!(2 * s.root_ecc >= s.diameter, "ecc ≥ diam/2");
    }
}

#[test]
fn fixed_generators_port_symmetry() {
    for g in [
        generators::wheel(9),
        generators::complete_bipartite(3, 5),
        generators::petersen(),
        generators::grid(4, 5),
        generators::torus(4, 4),
        generators::hypercube(4),
        generators::lollipop(5, 4),
        generators::caterpillar(5, 2),
    ] {
        assert!(g.is_connected());
        check_port_symmetry(&g);
    }
}
