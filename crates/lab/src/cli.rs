//! The `sno-lab` command line: ad-hoc campaigns without writing Rust.
//!
//! Every scenario coordinate already has a stable string name with a
//! `Display`/`FromStr` round-trip ([`GeneratorSpec`], [`ProtocolSpec`],
//! [`DaemonSpec`], [`FaultPlan`]), so a campaign is fully describable on a
//! command line:
//!
//! ```sh
//! sno-lab run --topologies ring,star --sizes 16,32 \
//!     --protocols dftno/oracle-token,stno/bfs-tree \
//!     --daemons central-random --seeds 0:8 --threads 4 --json out.json
//! sno-lab list   # print every known coordinate name
//! ```
//!
//! Parsing lives here (not in the binary) so it is unit-testable; the
//! `sno-lab` binary is a thin `main` over [`main_with_args`].

use std::str::FromStr;

use sno_graph::GeneratorSpec;

use crate::check::{CheckArgs, CheckCell};
use crate::matrix::ScenarioMatrix;
use crate::runner::{
    engine_mode_label, run_campaign_with_options, trace_first_cell, EngineOptions,
};
use crate::spec::{DaemonSpec, FaultPlan, ProtocolSpec};

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `sno-lab run …`: execute a campaign.
    Run(Box<RunArgs>),
    /// `sno-lab check …`: run the model checker on one cell or the
    /// pinned certificate suite.
    Check(Box<CheckArgs>),
    /// `sno-lab list`: print the known coordinate names.
    List,
    /// `sno-lab help` / `--help`.
    Help,
}

/// Arguments of `sno-lab run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// The campaign to execute.
    pub matrix: ScenarioMatrix,
    /// Worker threads (`None` = available parallelism).
    pub threads: Option<usize>,
    /// Engine mode / shard overrides (`--mode`, `--shards`); `None`
    /// fields fall back to the environment, then the engine default.
    pub engine: EngineOptions,
    /// Write the `sno-lab/v1` JSON document here.
    pub json: Option<String>,
    /// Write a Chrome trace-event JSON of the first cell's first seed
    /// (re-run under the sharded synchronous executor) here.
    pub trace: Option<String>,
}

/// The usage text printed by `help` and on parse errors.
pub const USAGE: &str = "\
sno-lab — declarative scenario-fleet campaigns

USAGE:
    sno-lab run [OPTIONS]     execute a campaign, print the Markdown table
    sno-lab churn [OPTIONS]   execute the churn preset (recovery cost vs. churn
                              rate; hubs + random-tree, stno/bfs-tree, 32 seeds);
                              accepts the run options as overrides
    sno-lab churn --any       unrestricted churn: failing links may be bridges
                              (disconnecting), the dcd detector stack rides it,
                              and the report adds a detection-latency table
    sno-lab check [OPTIONS]   model-check one enumerable stack exhaustively and
                              print its certificate verdicts
    sno-lab check --suite     run the pinned certificate suite (the CI gate);
                              exit 1 on any verdict drift
    sno-lab list              print every known topology/protocol/daemon name
    sno-lab help              show this text

RUN OPTIONS (comma-separated lists):
    --topologies LIST     topology families, e.g. ring,star,random-sparse:2 (required)
    --sizes LIST          target node counts, e.g. 16,64 (required)
    --protocols LIST      protocol stacks, e.g. dftno/oracle-token (required)
    --daemons LIST        daemons, e.g. central-random,distributed (required)
    --faults LIST         fault plans                      [default: none]
                            none         no injected fault
                            hit:K        corrupt K processors after convergence
                            hit:K@S      corrupt K processors after S daemon steps
                            link-fail@S  fail a non-bridge link after S steps
                            link-add@S   add an absent link after S steps
                            node-crash@S restart a non-root processor after S steps
                            node-join@S  a fresh processor joins after S steps
                            churn:R:SEED R add+fail windows after convergence
                            churn-any:R:SEED like churn, but the failing link
                                         may be a bridge (requires dcd)
                          (topology plans require stno/bfs-tree,
                           stno/cd-dfs-tree, or dcd)
    --seeds START:COUNT   seed range                       [default: 0:8]
    --graph-seed N        topology-instantiation seed
    --max-steps N         per-run step budget
    --name NAME           campaign name                    [default: cli]
    --threads N           worker threads                   [default: all cores]
    --mode MODE           engine mode: full|node|port|sync [default: SNO_ENGINE_MODE, else port]
    --shards N            shard count for --mode sync      [default: SNO_SYNC_SHARDS, else 1]
    --json PATH           also write the sno-lab/v1 JSON document to PATH
    --metrics             collect deterministic engine counters per cell (adds a
                          Metrics table and a `metrics` JSON section)
    --trace PATH          write a Chrome trace-event JSON (Perfetto-loadable) of the
                          first cell's first seed, re-run under the sharded
                          synchronous executor with one lane per shard

CHECK OPTIONS:
    --stack NAME          enumerable stack: hop, bfs-tree, cd-token, fixed-token,
                          fairness-witness, dcd, dijkstra-ring, dftno
                          (required unless --suite)
    --topology FAMILY     topology family, e.g. path, ring, star (required)
    --size N              node count (required)
    --graph-seed N        topology-instantiation seed        [default: 0]
    --start REGIME        exploration seeds: all|legitimate|initial [default: all]
    --liveness WHICH      none|unfair|round-robin|both       [default: both]
    --faults LIST         fault classes explored as transitions:
                          corrupt, crash, link-fail:U-V, link-add:U-V
    --budget K            corrupt/crash transitions per execution [default: 1]
    --limit N             per-world configuration limit      [default: 4194304]
    --symmetry on|off     force automorphism-group symmetry reduction on or off
                          for every cell (default: per-cell suite settings)
    --threads N           fleet threads                      [default: all cores]
    --shards N            seen-set shards                    [default: 1]
    --json PATH           write the certificate (or suite document) to PATH

Certificates are byte-identical for every --threads/--shards choice; the
states/second figure is printed to stdout only, never written to JSON.

Reports are byte-identical for every --mode/--shards/--threads choice;
the flags only change what a step costs. Metrics are deterministic too:
counter totals are byte-identical across thread, shard, and chunking
choices. Only --trace records wall-clock time.
";

fn parse_list<T: FromStr>(what: &str, s: &str) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| p.parse::<T>().map_err(|e| format!("bad {what}: {e}")))
        .collect()
}

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns a human-readable message (print it with [`USAGE`]) on unknown
/// subcommands, unknown flags, missing values, or unparsable coordinates.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    match sub {
        "help" | "--help" | "-h" => return Ok(Command::Help),
        "list" => return Ok(Command::List),
        "check" => return parse_check(&args[1..]),
        "run" | "churn" => {}
        other => return Err(format!("unknown subcommand `{other}`")),
    }

    // `churn` starts from the preset matrix (so every dimension has a
    // value) and accepts the same flags as overrides. `--any` swaps in
    // the unrestricted-churn preset (bridge links may fail, the `dcd`
    // detector stack, detection-latency reporting); resolved before the
    // flag loop so later overrides still apply on top.
    let preset = sub == "churn";
    let any = args.iter().any(|a| a == "--any");
    if any && !preset {
        return Err("`--any` is only valid with the `churn` subcommand".into());
    }
    let mut matrix = if any {
        crate::matrix::churn_any_preset()
    } else if preset {
        crate::matrix::churn_preset()
    } else {
        ScenarioMatrix::new("cli")
    };
    let mut threads = None;
    let mut engine = EngineOptions::default();
    let mut json = None;
    let mut trace = None;
    // topologies, sizes, protocols, daemons — all pre-filled by the preset
    let mut saw = (preset, preset, preset, preset);
    while let Some(flag) = it.next() {
        // Accept both `--flag value` and `--flag=value`.
        let (flag, inline) = match flag.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (flag.as_str(), None),
        };
        let mut value = || -> Result<String, String> {
            match &inline {
                Some(v) => Ok(v.clone()),
                None => it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("`{flag}` needs a value")),
            }
        };
        match flag {
            "--topologies" => {
                matrix.topologies = parse_list::<GeneratorSpec>("topology", &value()?)?;
                saw.0 = true;
            }
            "--sizes" => {
                matrix.sizes = parse_list::<usize>("size", &value()?)?;
                saw.1 = true;
            }
            "--protocols" => {
                matrix.protocols = parse_list::<ProtocolSpec>("protocol", &value()?)?;
                saw.2 = true;
            }
            "--daemons" => {
                matrix.daemons = parse_list::<DaemonSpec>("daemon", &value()?)?;
                saw.3 = true;
            }
            "--faults" => matrix.faults = parse_list::<FaultPlan>("fault plan", &value()?)?,
            "--seeds" => {
                let v = value()?;
                let (start, count) = v
                    .split_once(':')
                    .ok_or_else(|| format!("bad seed range `{v}` (want START:COUNT)"))?;
                matrix.seed_start = start
                    .parse()
                    .map_err(|_| format!("bad seed start `{start}`"))?;
                matrix.seeds_per_cell = count
                    .parse()
                    .map_err(|_| format!("bad seed count `{count}`"))?;
            }
            "--graph-seed" => {
                let v = value()?;
                matrix.graph_seed = v.parse().map_err(|_| format!("bad graph seed `{v}`"))?;
            }
            "--max-steps" => {
                let v = value()?;
                matrix.max_steps = v.parse().map_err(|_| format!("bad step budget `{v}`"))?;
            }
            "--name" => matrix.name = value()?,
            "--threads" => {
                let v = value()?;
                let t: usize = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
                if t == 0 {
                    return Err("`--threads` must be at least 1".into());
                }
                threads = Some(t);
            }
            "--mode" => {
                let v = value()?;
                engine.mode = Some(match v.as_str() {
                    "full" | "full-sweep" => sno_engine::EngineMode::FullSweep,
                    "node" | "node-dirty" => sno_engine::EngineMode::NodeDirty,
                    "port" | "port-dirty" => sno_engine::EngineMode::PortDirty,
                    "sync" | "sync-sharded" => sno_engine::EngineMode::SyncSharded,
                    other => {
                        return Err(format!(
                            "unknown engine mode `{other}` (expected full, node, port, or sync)"
                        ))
                    }
                });
            }
            "--shards" => {
                let v = value()?;
                let k: usize = v.parse().map_err(|_| format!("bad shard count `{v}`"))?;
                if k == 0 {
                    return Err("`--shards` must be at least 1".into());
                }
                engine.shards = Some(k);
            }
            "--json" => json = Some(value()?),
            "--metrics" => {
                if inline.is_some() {
                    return Err("`--metrics` takes no value".into());
                }
                engine.metrics = true;
            }
            "--trace" => trace = Some(value()?),
            "--any" => {
                // Already resolved by the pre-scan above.
                if inline.is_some() {
                    return Err("`--any` takes no value".into());
                }
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let missing = [
        (!saw.0).then_some("--topologies"),
        (!saw.1).then_some("--sizes"),
        (!saw.2).then_some("--protocols"),
        (!saw.3).then_some("--daemons"),
    ];
    let missing: Vec<&str> = missing.into_iter().flatten().collect();
    if !missing.is_empty() {
        return Err(format!("missing required {}", missing.join(", ")));
    }
    // `--shards` needs the sharded executor, but the mode may also come
    // from the SNO_ENGINE_MODE environment fallback — only an *explicit*
    // conflicting `--mode` is rejected here; with no flag the runner
    // resolves the mode at campaign start (and ignores the shard count
    // unless it resolves to the sharded executor).
    if engine.shards.is_some()
        && engine.mode.is_some()
        && engine.mode != Some(sno_engine::EngineMode::SyncSharded)
    {
        return Err("`--shards` requires `--mode sync`".into());
    }
    matrix.validate()?;
    Ok(Command::Run(Box::new(RunArgs {
        matrix,
        threads,
        engine,
        json,
        trace,
    })))
}

/// Parses the flags of `sno-lab check` (everything after the
/// subcommand word).
fn parse_check(args: &[String]) -> Result<Command, String> {
    let mut suite = false;
    let mut stack = None;
    let mut topology = None;
    let mut size = None;
    let mut graph_seed = 0;
    let mut seeds = sno_check::Seeds::AllConfigs;
    let mut liveness = sno_check::Liveness::Both;
    let mut faults = Vec::new();
    let mut threads = None;
    let mut options = sno_check::CheckOptions::default();
    let mut symmetry = None;
    let mut json = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let (flag, inline) = match flag.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (flag.as_str(), None),
        };
        let mut value = || -> Result<String, String> {
            match &inline {
                Some(v) => Ok(v.clone()),
                None => it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("`{flag}` needs a value")),
            }
        };
        match flag {
            "--suite" => {
                if inline.is_some() {
                    return Err("`--suite` takes no value".into());
                }
                suite = true;
            }
            "--stack" => stack = Some(value()?),
            "--topology" => {
                let v = value()?;
                topology = Some(
                    v.parse::<GeneratorSpec>()
                        .map_err(|e| format!("bad topology: {e}"))?,
                );
            }
            "--size" => {
                let v = value()?;
                size = Some(v.parse::<usize>().map_err(|_| format!("bad size `{v}`"))?);
            }
            "--graph-seed" => {
                let v = value()?;
                graph_seed = v.parse().map_err(|_| format!("bad graph seed `{v}`"))?;
            }
            "--start" => seeds = crate::check::parse_seeds(&value()?)?,
            "--liveness" => liveness = crate::check::parse_liveness(&value()?)?,
            "--faults" => {
                let v = value()?;
                faults = v
                    .split(',')
                    .filter(|p| !p.is_empty())
                    .map(crate::check::parse_fault)
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--budget" => {
                let v = value()?;
                options.fault_budget = v.parse().map_err(|_| format!("bad fault budget `{v}`"))?;
            }
            "--limit" => {
                let v = value()?;
                options.limit = v.parse().map_err(|_| format!("bad state limit `{v}`"))?;
            }
            "--threads" => {
                let v = value()?;
                let t: usize = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
                if t == 0 {
                    return Err("`--threads` must be at least 1".into());
                }
                threads = Some(t);
            }
            "--shards" => {
                let v = value()?;
                let k: usize = v.parse().map_err(|_| format!("bad shard count `{v}`"))?;
                if k == 0 {
                    return Err("`--shards` must be at least 1".into());
                }
                options.shards = k;
            }
            "--symmetry" => {
                let v = value()?;
                symmetry = Some(match v.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("bad `--symmetry` value `{other}` (want on|off)")),
                });
            }
            "--json" => json = Some(value()?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let cell = if suite {
        if stack.is_some() || topology.is_some() || size.is_some() {
            return Err("`--suite` runs the pinned cells; drop --stack/--topology/--size".into());
        }
        None
    } else {
        let stack = stack.ok_or("missing required --stack (or use --suite)")?;
        let topology = topology.ok_or("missing required --topology")?;
        let size = size.ok_or("missing required --size")?;
        if !crate::check::STACKS.contains(&stack.as_str()) {
            return Err(format!(
                "unknown stack `{stack}` (expected one of {})",
                crate::check::STACKS.join(", ")
            ));
        }
        Some(CheckCell {
            stack,
            topology,
            size,
            graph_seed,
            seeds,
            liveness,
            faults,
            symmetry: false,
            limit: None,
        })
    };
    Ok(Command::Check(Box::new(CheckArgs {
        suite,
        cell,
        threads,
        options,
        symmetry,
        json,
    })))
}

/// The coordinate listing printed by `sno-lab list`.
pub fn coordinate_listing() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "topologies (parameterized families accept `name:K`):");
    for t in GeneratorSpec::PRESETS {
        let _ = writeln!(out, "  {t}");
    }
    let _ = writeln!(out, "protocols:");
    for p in ProtocolSpec::ALL {
        let _ = writeln!(out, "  {p}");
    }
    let _ = writeln!(out, "daemons:");
    for d in DaemonSpec::ALL {
        let _ = writeln!(out, "  {d}");
    }
    let _ = writeln!(out, "fault plans:");
    let _ = writeln!(out, "  none");
    let _ = writeln!(
        out,
        "  hit:K         corrupt K processors after convergence"
    );
    let _ = writeln!(
        out,
        "  hit:K@S       corrupt K processors after S daemon steps"
    );
    let _ = writeln!(out, "  link-fail@S   fail a non-bridge link after S steps");
    let _ = writeln!(out, "  link-add@S    add an absent link after S steps");
    let _ = writeln!(
        out,
        "  node-crash@S  restart a non-root processor after S steps"
    );
    let _ = writeln!(out, "  node-join@S   a fresh processor joins after S steps");
    let _ = writeln!(out, "  churn:R:SEED  R add+fail windows after convergence");
    let _ = writeln!(
        out,
        "  churn-any:R:SEED like churn, but may fail bridges (requires dcd)"
    );
    let _ = writeln!(out, "check stacks (enumerable, for `sno-lab check`):");
    for s in crate::check::STACKS {
        let _ = writeln!(out, "  {s}");
    }
    out
}

/// Parses `args`, runs the requested command, prints its output, and
/// returns the process exit code. The `sno-lab` binary delegates here.
pub fn main_with_args(args: &[String]) -> i32 {
    let cmd = match parse_args(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return 2;
        }
    };
    match cmd {
        Command::Help => {
            print!("{USAGE}");
            0
        }
        Command::List => {
            print!("{}", coordinate_listing());
            0
        }
        Command::Check(check) => crate::check::run_check_command(&check),
        Command::Run(run) => {
            let threads = run.threads.unwrap_or_else(crate::fleet::default_threads);
            // Cross-mode campaign diffs in CI compare these reports; the
            // header names the active engine and the thread count so each
            // run is self-describing. (The JSON artifact deliberately
            // omits both — byte-identity across modes, shard counts, and
            // thread counts is a CI invariant.)
            // The telemetry flags are echoed here too (and only here):
            // metrics change the report only by *adding* sections, and
            // the trace is a side artifact, so the JSON byte-identity
            // invariant above is untouched in the default configuration.
            // The active fault plan(s) are echoed too: a recovery table
            // is meaningless without knowing what was injected, and the
            // plans are a matrix property, so the header stays identical
            // across modes and thread counts.
            let faults: Vec<String> = run.matrix.faults.iter().map(|f| f.to_string()).collect();
            let mut header = format!(
                "engine mode: {} | threads: {} | faults: {}",
                engine_mode_label(&run.engine),
                threads,
                faults.join(",")
            );
            if run.engine.metrics {
                header.push_str(" | metrics: on");
            }
            if let Some(path) = &run.trace {
                header.push_str(&format!(" | trace: {path}"));
            }
            println!("{header}");
            let report = run_campaign_with_options(&run.matrix, threads, &run.engine);
            print!("{}", report.to_markdown());
            if let Some(path) = run.json {
                if let Err(e) = report.write_json(&path) {
                    eprintln!("error: cannot write campaign JSON to `{path}`: {e}");
                    return 1;
                }
                println!("campaign JSON written to {path}");
            }
            if let Some(path) = run.trace {
                let doc = trace_first_cell(&run.matrix, &run.engine)
                    .expect("validated matrices have at least one cell");
                if let Err(e) = std::fs::write(&path, doc + "\n") {
                    eprintln!("error: cannot write trace to `{path}`: {e}");
                    return 1;
                }
                println!("phase trace written to {path}");
            }
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{TokenSubstrate, TreeSubstrate};

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_a_full_run_invocation() {
        let cmd = parse_args(&args(
            "run --topologies ring,random-sparse:2 --sizes 8,16 \
             --protocols dftno/oracle-token,stno/bfs-tree \
             --daemons central-random --faults none,hit:2 \
             --seeds 5:3 --graph-seed 9 --max-steps 1000 \
             --name demo --threads 2 --json out.json",
        ))
        .unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run");
        };
        assert_eq!(run.threads, Some(2));
        assert_eq!(run.json.as_deref(), Some("out.json"));
        let m = &run.matrix;
        assert_eq!(m.name, "demo");
        assert_eq!(
            m.topologies,
            vec![
                GeneratorSpec::Ring,
                GeneratorSpec::RandomSparse { extra_per_node: 2 }
            ]
        );
        assert_eq!(m.sizes, vec![8, 16]);
        assert_eq!(
            m.protocols,
            vec![
                ProtocolSpec::Dftno(TokenSubstrate::Oracle),
                ProtocolSpec::Stno(TreeSubstrate::Bfs)
            ]
        );
        assert_eq!(m.daemons, vec![DaemonSpec::CentralRandom]);
        assert_eq!(
            m.faults,
            vec![FaultPlan::None, FaultPlan::AfterConvergence { hits: 2 }]
        );
        assert_eq!((m.seed_start, m.seeds_per_cell), (5, 3));
        assert_eq!(m.graph_seed, 9);
        assert_eq!(m.max_steps, 1000);
    }

    #[test]
    fn equals_form_flags_parse_too() {
        let cmd = parse_args(&args(
            "run --topologies=star --sizes=8 --protocols=stno/oracle-tree \
             --daemons=synchronous --seeds=0:2",
        ))
        .unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run");
        };
        assert_eq!(run.matrix.topologies, vec![GeneratorSpec::Star]);
        assert_eq!(run.matrix.seeds_per_cell, 2);
    }

    #[test]
    fn rejects_missing_dimensions_and_bad_coordinates() {
        let e = parse_args(&args("run --topologies ring")).unwrap_err();
        assert!(e.contains("--sizes") && e.contains("--protocols"), "{e}");
        let e = parse_args(&args(
            "run --topologies mobius --sizes 8 --protocols stno/oracle-tree --daemons synchronous",
        ))
        .unwrap_err();
        assert!(e.contains("mobius"), "{e}");
        let e = parse_args(&args("fly")).unwrap_err();
        assert!(e.contains("fly"), "{e}");
        let e = parse_args(&args(
            "run --topologies ring --sizes 8 --protocols stno/oracle-tree \
             --daemons synchronous --seeds 0:0",
        ))
        .unwrap_err();
        assert!(e.contains("seed"), "{e}");
    }

    #[test]
    fn parses_engine_mode_and_shards() {
        let cmd = parse_args(&args(
            "run --topologies torus --sizes 16 --protocols dftno/oracle-token \
             --daemons synchronous --mode sync --shards 8",
        ))
        .unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run");
        };
        assert_eq!(run.engine.mode, Some(sno_engine::EngineMode::SyncSharded));
        assert_eq!(run.engine.shards, Some(8));

        for (name, mode) in [
            ("full", sno_engine::EngineMode::FullSweep),
            ("node", sno_engine::EngineMode::NodeDirty),
            ("port", sno_engine::EngineMode::PortDirty),
            ("sync-sharded", sno_engine::EngineMode::SyncSharded),
        ] {
            let cmd = parse_args(&args(&format!(
                "run --topologies ring --sizes 8 --protocols stno/oracle-tree \
                 --daemons synchronous --mode {name}"
            )))
            .unwrap();
            let Command::Run(run) = cmd else {
                panic!("expected run");
            };
            assert_eq!(run.engine.mode, Some(mode), "{name}");
        }

        let e = parse_args(&args(
            "run --topologies ring --sizes 8 --protocols stno/oracle-tree \
             --daemons synchronous --mode warp",
        ))
        .unwrap_err();
        assert!(e.contains("warp"), "{e}");
        let e = parse_args(&args(
            "run --topologies ring --sizes 8 --protocols stno/oracle-tree \
             --daemons synchronous --mode port --shards 4",
        ))
        .unwrap_err();
        assert!(e.contains("--mode sync"), "{e}");
        // Without an explicit --mode the env fallback may still resolve
        // to the sharded executor, so a bare --shards must parse.
        let cmd = parse_args(&args(
            "run --topologies ring --sizes 8 --protocols stno/oracle-tree \
             --daemons synchronous --shards 4",
        ))
        .unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run");
        };
        assert_eq!(run.engine.shards, Some(4));
        assert_eq!(run.engine.mode, None);
        let e = parse_args(&args(
            "run --topologies ring --sizes 8 --protocols stno/oracle-tree \
             --daemons synchronous --mode sync --shards 0",
        ))
        .unwrap_err();
        assert!(e.contains("at least 1"), "{e}");
    }

    #[test]
    fn parses_metrics_and_trace_flags() {
        let cmd = parse_args(&args(
            "run --topologies hubs:3 --sizes 24 --protocols stno/oracle-tree \
             --daemons synchronous --mode sync --shards 4 --metrics --trace out.json",
        ))
        .unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run");
        };
        assert!(run.engine.metrics);
        assert_eq!(run.trace.as_deref(), Some("out.json"));

        // Defaults stay off: the unflagged campaign collects nothing.
        let cmd = parse_args(&args(
            "run --topologies ring --sizes 8 --protocols stno/oracle-tree --daemons synchronous",
        ))
        .unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run");
        };
        assert!(!run.engine.metrics);
        assert_eq!(run.trace, None);

        let e = parse_args(&args(
            "run --topologies ring --sizes 8 --protocols stno/oracle-tree \
             --daemons synchronous --metrics=yes",
        ))
        .unwrap_err();
        assert!(e.contains("no value"), "{e}");
    }

    #[test]
    fn churn_subcommand_starts_from_the_preset() {
        let cmd = parse_args(&args("churn")).unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run");
        };
        assert_eq!(run.matrix, crate::matrix::churn_preset());
        run.matrix.validate().unwrap();
        assert!(run
            .matrix
            .faults
            .iter()
            .all(|f| matches!(f, FaultPlan::Churn { .. })));

        // Overrides apply on top of the preset.
        let cmd = parse_args(&args("churn --seeds 0:2 --sizes 12 --threads 3")).unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run");
        };
        assert_eq!(run.matrix.seeds_per_cell, 2);
        assert_eq!(run.matrix.sizes, vec![12]);
        assert_eq!(run.threads, Some(3));
        assert_eq!(run.matrix.name, "churn");
    }

    #[test]
    fn churn_any_flag_swaps_in_the_disconnecting_preset() {
        let cmd = parse_args(&args("churn --any")).unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run");
        };
        assert_eq!(run.matrix, crate::matrix::churn_any_preset());
        run.matrix.validate().unwrap();
        assert!(run
            .matrix
            .faults
            .iter()
            .all(|f| matches!(f, FaultPlan::ChurnAny { .. })));
        assert_eq!(run.matrix.protocols, vec![ProtocolSpec::Dcd]);

        // Overrides still apply on top, in either flag order.
        let cmd = parse_args(&args("churn --seeds 0:2 --any --sizes 12")).unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run");
        };
        assert_eq!(run.matrix.name, "churn-any");
        assert_eq!(run.matrix.seeds_per_cell, 2);
        assert_eq!(run.matrix.sizes, vec![12]);

        // Outside `churn` the flag is rejected.
        assert!(parse_args(&args("run --any"))
            .unwrap_err()
            .contains("churn"));
    }

    #[test]
    fn parses_check_invocations() {
        let cmd = parse_args(&args(
            "check --stack dcd --topology path --size 4 --start legitimate \
             --liveness unfair --faults corrupt,link-fail:2-3 --budget 2 \
             --limit 100000 --threads 4 --shards 8 --json cert.json",
        ))
        .unwrap();
        let Command::Check(check) = cmd else {
            panic!("expected check");
        };
        assert!(!check.suite);
        assert_eq!(check.threads, Some(4));
        assert_eq!(check.options.shards, 8);
        assert_eq!(check.options.fault_budget, 2);
        assert_eq!(check.options.limit, 100_000);
        assert_eq!(check.json.as_deref(), Some("cert.json"));
        let cell = check.cell.unwrap();
        assert_eq!(cell.stack, "dcd");
        assert_eq!(cell.topology, GeneratorSpec::Path);
        assert_eq!(cell.size, 4);
        assert_eq!(cell.seeds, sno_check::Seeds::Legitimate);
        assert_eq!(cell.liveness, sno_check::Liveness::Unfair);
        assert_eq!(cell.faults.len(), 2);

        assert_eq!(check.symmetry, None);

        let cmd = parse_args(&args("check --suite --threads 2")).unwrap();
        let Command::Check(check) = cmd else {
            panic!("expected check");
        };
        assert!(check.suite);
        assert_eq!(check.cell, None);
        assert_eq!(check.symmetry, None);

        let cmd = parse_args(&args("check --suite --symmetry on")).unwrap();
        let Command::Check(check) = cmd else {
            panic!("expected check");
        };
        assert_eq!(check.symmetry, Some(true));
        let cmd = parse_args(&args(
            "check --stack hop --topology star --size 6 --symmetry off",
        ))
        .unwrap();
        let Command::Check(check) = cmd else {
            panic!("expected check");
        };
        assert_eq!(check.symmetry, Some(false));
        let e = parse_args(&args("check --suite --symmetry maybe")).unwrap_err();
        assert!(e.contains("maybe"), "{e}");

        let e = parse_args(&args("check --topology ring --size 5")).unwrap_err();
        assert!(e.contains("--stack"), "{e}");
        let e = parse_args(&args("check --stack warp --topology ring --size 5")).unwrap_err();
        assert!(e.contains("warp"), "{e}");
        let e = parse_args(&args("check --suite --stack hop")).unwrap_err();
        assert!(e.contains("--suite"), "{e}");
        let e = parse_args(&args(
            "check --stack hop --topology ring --size 5 --faults asteroid",
        ))
        .unwrap_err();
        assert!(e.contains("asteroid"), "{e}");
        let e = parse_args(&args(
            "check --stack hop --topology ring --size 5 --liveness sometimes",
        ))
        .unwrap_err();
        assert!(e.contains("sometimes"), "{e}");
    }

    #[test]
    fn parses_topology_fault_plans() {
        let cmd = parse_args(&args(
            "run --topologies ring --sizes 8 --protocols stno/bfs-tree \
             --daemons synchronous --faults link-fail@40,churn:2:7,hit:1@100",
        ))
        .unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run");
        };
        assert_eq!(
            run.matrix.faults,
            vec![
                FaultPlan::LinkFail { step: 40 },
                FaultPlan::Churn { rate: 2, seed: 7 },
                FaultPlan::AtStep { step: 100, hits: 1 },
            ]
        );
        // Oracle substrates cannot ride topology mutation — validation
        // rejects the pairing with a pointed message.
        let e = parse_args(&args(
            "run --topologies ring --sizes 8 --protocols stno/oracle-tree \
             --daemons synchronous --faults link-fail@40",
        ))
        .unwrap_err();
        assert!(e.contains("self-stabilizing"), "{e}");
    }

    #[test]
    fn header_echoes_fault_plans() {
        // The fault echo lives in `main_with_args`' header; keep its
        // ingredients stable: every plan renders its spec-grammar name.
        let m = crate::matrix::churn_preset();
        let names: Vec<String> = m.faults.iter().map(|f| f.to_string()).collect();
        assert_eq!(
            names.join(","),
            "churn:1:49374,churn:2:49374,churn:4:49374,churn:8:49374"
        );
    }

    #[test]
    fn help_and_list_commands() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(&args("list")).unwrap(), Command::List);
        let listing = coordinate_listing();
        for needle in ["ring", "dftno/oracle-token", "central-random", "hit:K"] {
            assert!(listing.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn run_executes_a_tiny_campaign() {
        let cmd = parse_args(&args(
            "run --topologies ring --sizes 6 --protocols stno/oracle-tree \
             --daemons synchronous --seeds 0:2 --max-steps 100000 --threads 2",
        ))
        .unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run");
        };
        let report = run_campaign_with_options(&run.matrix, run.threads.unwrap(), &run.engine);
        assert_eq!(report.total_runs, 2);
        assert_eq!(report.total_converged, 2);
    }
}
