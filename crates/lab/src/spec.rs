//! Nameable coordinates of a scenario: protocol stack, daemon, fault plan.
//!
//! Everything here is a small copyable value with a stable string name
//! (`Display`/`FromStr` round-trip), so scenario matrices can be echoed
//! into JSON reports and parsed back from command lines.

use std::fmt;
use std::str::FromStr;

use sno_engine::daemon::{
    CentralFixedPriority, CentralRandom, CentralRoundRobin, Daemon, DistributedRandom,
    LocallyCentralRandom, Synchronous,
};
use sno_engine::Network;

/// Which token-circulation substrate `DFTNO` runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenSubstrate {
    /// The golden, non-stabilizing Euler-tour walker
    /// ([`sno_token::OracleToken`]) — the paper's "after the token
    /// circulation stabilizes" regime behind the `O(n)` claim.
    Oracle,
    /// The full self-stabilizing circulation
    /// ([`sno_token::DfsTokenCirculation`]).
    Dftc,
}

/// Which spanning-tree substrate `STNO` runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeSubstrate {
    /// A frozen golden BFS tree ([`sno_tree::OracleSpanningTree`]) — the
    /// "after the tree stabilizes" regime behind the `O(h)` claim.
    Oracle,
    /// The self-stabilizing BFS tree ([`sno_tree::BfsSpanningTree`]).
    Bfs,
    /// The Collin–Dolev DFS tree ([`sno_tree::CdSpanningTree`]), under
    /// which `STNO` names nodes exactly like `DFTNO` (experiment E9).
    CdDfs,
}

/// One of the paper's two orientation protocols plus its substrate, or
/// the disconnection-aware robustness layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolSpec {
    /// `DFTNO` (Algorithm 3.1.1) over the given token substrate.
    Dftno(TokenSubstrate),
    /// `STNO` (Algorithm 4.1.2) over the given tree substrate.
    Stno(TreeSubstrate),
    /// The disconnection-aware root-path detector
    /// ([`sno_core::dcd::Dcd`]) — the only stack whose specification
    /// survives a *disconnecting* topology fault, and therefore the only
    /// one [`FaultPlan::ChurnAny`] is allowed to ride.
    Dcd,
}

impl ProtocolSpec {
    /// Every protocol × substrate combination.
    pub const ALL: [ProtocolSpec; 6] = [
        ProtocolSpec::Dftno(TokenSubstrate::Oracle),
        ProtocolSpec::Dftno(TokenSubstrate::Dftc),
        ProtocolSpec::Stno(TreeSubstrate::Oracle),
        ProtocolSpec::Stno(TreeSubstrate::Bfs),
        ProtocolSpec::Stno(TreeSubstrate::CdDfs),
        ProtocolSpec::Dcd,
    ];

    /// The two oracle-substrate stacks the paper's step bounds refer to.
    pub const ORACLES: [ProtocolSpec; 2] = [
        ProtocolSpec::Dftno(TokenSubstrate::Oracle),
        ProtocolSpec::Stno(TreeSubstrate::Oracle),
    ];
}

impl fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolSpec::Dftno(TokenSubstrate::Oracle) => "dftno/oracle-token",
            ProtocolSpec::Dftno(TokenSubstrate::Dftc) => "dftno/dftc",
            ProtocolSpec::Stno(TreeSubstrate::Oracle) => "stno/oracle-tree",
            ProtocolSpec::Stno(TreeSubstrate::Bfs) => "stno/bfs-tree",
            ProtocolSpec::Stno(TreeSubstrate::CdDfs) => "stno/cd-dfs-tree",
            ProtocolSpec::Dcd => "dcd",
        };
        f.write_str(s)
    }
}

impl FromStr for ProtocolSpec {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, ParseError> {
        ProtocolSpec::ALL
            .into_iter()
            .find(|p| p.to_string() == s)
            .ok_or_else(|| ParseError::new("protocol", s))
    }
}

/// A scheduler family, instantiated per run via [`DaemonSpec::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DaemonSpec {
    /// Weakly fair central daemon (rotating).
    CentralRoundRobin,
    /// Central daemon with uniformly random choices.
    CentralRandom,
    /// **Unfair** central daemon (lowest node id first) — the adversarial
    /// scheduler of the paper's impossibility discussions.
    Adversarial,
    /// Every enabled processor executes each step.
    Synchronous,
    /// The paper's distributed daemon: random non-empty subsets.
    Distributed,
    /// Random independent subsets (no two neighbors per step).
    LocallyCentral,
}

impl DaemonSpec {
    /// Every daemon family.
    pub const ALL: [DaemonSpec; 6] = [
        DaemonSpec::CentralRoundRobin,
        DaemonSpec::CentralRandom,
        DaemonSpec::Adversarial,
        DaemonSpec::Synchronous,
        DaemonSpec::Distributed,
        DaemonSpec::LocallyCentral,
    ];

    /// Builds the daemon for `net`, seeded with `seed`. Re-arm the returned
    /// daemon for further runs with [`Daemon::reset`] instead of
    /// rebuilding — construction is the only allocating step.
    pub fn build(self, net: &Network, seed: u64) -> Box<dyn Daemon> {
        match self {
            DaemonSpec::CentralRoundRobin => Box::new(CentralRoundRobin::new()),
            DaemonSpec::CentralRandom => Box::new(CentralRandom::seeded(seed)),
            DaemonSpec::Adversarial => Box::new(CentralFixedPriority::new()),
            DaemonSpec::Synchronous => Box::new(Synchronous::new()),
            DaemonSpec::Distributed => Box::new(DistributedRandom::seeded(seed)),
            DaemonSpec::LocallyCentral => Box::new(LocallyCentralRandom::seeded(seed, net)),
        }
    }
}

impl fmt::Display for DaemonSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DaemonSpec::CentralRoundRobin => "central-round-robin",
            DaemonSpec::CentralRandom => "central-random",
            DaemonSpec::Adversarial => "adversarial",
            DaemonSpec::Synchronous => "synchronous",
            DaemonSpec::Distributed => "distributed",
            DaemonSpec::LocallyCentral => "locally-central",
        };
        f.write_str(s)
    }
}

impl FromStr for DaemonSpec {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, ParseError> {
        DaemonSpec::ALL
            .into_iter()
            .find(|d| d.to_string() == s)
            .ok_or_else(|| ParseError::new("daemon", s))
    }
}

/// What the adversary does to a run: nothing, state corruption, or a
/// dynamic-topology fault ([`sno_engine::TopologyEvent`]s scheduled by
/// the runner).
///
/// Topology-mutating plans are restricted to fully self-stabilizing
/// stacks (`stno/bfs-tree`, `stno/cd-dfs-tree`): oracle substrates and
/// `DFTNO`'s golden-orientation goal are precomputed from the initial
/// graph and would silently go stale under mutation —
/// [`ScenarioMatrix::validate`](crate::ScenarioMatrix::validate) rejects
/// the combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPlan {
    /// No injected faults: measure stabilization from an arbitrary
    /// initial configuration only.
    None,
    /// After convergence, corrupt this many uniformly chosen processors
    /// with arbitrary states and measure re-convergence (the recovery
    /// phase appears as `recovery_*` statistics in reports).
    AfterConvergence {
        /// Number of processors hit (capped at the network size).
        hits: u8,
    },
    /// Mid-run corruption: after `step` daemon selections (or at
    /// convergence, whichever comes first), corrupt `hits` uniformly
    /// chosen processors; the post-fault phase is reported as recovery.
    AtStep {
        /// Daemon selections before the hit.
        step: u32,
        /// Number of processors hit (capped at the network size).
        hits: u8,
    },
    /// After `step` daemon selections, a non-bridge link fails
    /// (connectivity is preserved; a tree has none, making this a no-op).
    LinkFail {
        /// Daemon selections before the failure.
        step: u32,
    },
    /// After `step` daemon selections, a new link appears between two
    /// non-adjacent processors (a no-op on complete graphs).
    LinkAdd {
        /// Daemon selections before the new link.
        step: u32,
    },
    /// After `step` daemon selections, a non-root processor restarts:
    /// it crashes (state reset, links dropped) and immediately rejoins
    /// with the same links.
    NodeCrash {
        /// Daemon selections before the restart.
        step: u32,
    },
    /// After `step` daemon selections, a fresh processor joins with
    /// links to one or two existing processors. Cells with this plan
    /// instantiate their network with one node of bound headroom.
    NodeJoin {
        /// Daemon selections before the arrival.
        step: u32,
    },
    /// Churn: after convergence, `rate` consecutive perturbations (each
    /// adds an absent link and fails a non-bridge link), re-converging
    /// after each; recovery statistics aggregate all windows.
    Churn {
        /// Number of perturbation windows per run.
        rate: u8,
        /// Extra salt decorrelating the churn stream from the run seed.
        seed: u64,
    },
    /// Unrestricted churn: like [`FaultPlan::Churn`], but the failing
    /// link is drawn from **all** links — bridges included — so a window
    /// may disconnect processors from the root. Restricted to the
    /// disconnection-aware [`ProtocolSpec::Dcd`] stack (every other
    /// stack's specification presumes a connected rooted network);
    /// each window additionally measures the *detection latency* — the
    /// daemon steps until every severed processor's detector flags the
    /// disconnection.
    ChurnAny {
        /// Number of perturbation windows per run.
        rate: u8,
        /// Extra salt decorrelating the churn stream from the run seed.
        seed: u64,
    },
}

impl FaultPlan {
    /// Whether this plan schedules [`sno_engine::TopologyEvent`]s (and
    /// therefore needs a fresh simulation per seed and a self-stabilizing
    /// protocol stack).
    pub fn mutates_topology(&self) -> bool {
        matches!(
            self,
            FaultPlan::LinkFail { .. }
                | FaultPlan::LinkAdd { .. }
                | FaultPlan::NodeCrash { .. }
                | FaultPlan::NodeJoin { .. }
                | FaultPlan::Churn { .. }
                | FaultPlan::ChurnAny { .. }
        )
    }

    /// Whether this plan may *disconnect* processors from the root
    /// (only [`FaultPlan::ChurnAny`] — every other plan preserves
    /// reachability by construction).
    pub fn may_disconnect(&self) -> bool {
        matches!(self, FaultPlan::ChurnAny { .. })
    }

    /// How many processors beyond the instantiated topology the network
    /// bound `N` must leave room for (node arrivals).
    pub fn join_headroom(&self) -> usize {
        match self {
            FaultPlan::NodeJoin { .. } => 1,
            _ => 0,
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlan::None => f.write_str("none"),
            FaultPlan::AfterConvergence { hits } => write!(f, "hit:{hits}"),
            FaultPlan::AtStep { step, hits } => write!(f, "hit:{hits}@{step}"),
            FaultPlan::LinkFail { step } => write!(f, "link-fail@{step}"),
            FaultPlan::LinkAdd { step } => write!(f, "link-add@{step}"),
            FaultPlan::NodeCrash { step } => write!(f, "node-crash@{step}"),
            FaultPlan::NodeJoin { step } => write!(f, "node-join@{step}"),
            FaultPlan::Churn { rate, seed } => write!(f, "churn:{rate}:{seed}"),
            FaultPlan::ChurnAny { rate, seed } => write!(f, "churn-any:{rate}:{seed}"),
        }
    }
}

impl FromStr for FaultPlan {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, ParseError> {
        if s == "none" {
            return Ok(FaultPlan::None);
        }
        if let Some(rest) = s.strip_prefix("hit:") {
            if let Some((hits, step)) = rest.split_once('@') {
                if let (Ok(hits), Ok(step)) = (hits.parse(), step.parse()) {
                    return Ok(FaultPlan::AtStep { step, hits });
                }
            } else if let Ok(hits) = rest.parse() {
                return Ok(FaultPlan::AfterConvergence { hits });
            }
        }
        type Make = fn(u32) -> FaultPlan;
        for (name, make) in [
            ("link-fail@", (|step| FaultPlan::LinkFail { step }) as Make),
            ("link-add@", |step| FaultPlan::LinkAdd { step }),
            ("node-crash@", |step| FaultPlan::NodeCrash { step }),
            ("node-join@", |step| FaultPlan::NodeJoin { step }),
        ] {
            if let Some(step) = s.strip_prefix(name) {
                if let Ok(step) = step.parse() {
                    return Ok(make(step));
                }
            }
        }
        if let Some(rest) = s.strip_prefix("churn:") {
            if let Some((rate, seed)) = rest.split_once(':') {
                if let (Ok(rate), Ok(seed)) = (rate.parse(), seed.parse()) {
                    return Ok(FaultPlan::Churn { rate, seed });
                }
            }
        }
        if let Some(rest) = s.strip_prefix("churn-any:") {
            if let Some((rate, seed)) = rest.split_once(':') {
                if let (Ok(rate), Ok(seed)) = (rate.parse(), seed.parse()) {
                    return Ok(FaultPlan::ChurnAny { rate, seed });
                }
            }
        }
        Err(ParseError::new("fault plan", s))
    }
}

/// Error for any failed spec parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    what: &'static str,
    input: String,
}

impl ParseError {
    fn new(what: &'static str, input: &str) -> Self {
        ParseError {
            what,
            input: input.to_string(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown {} `{}`", self.what, self.input)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_names_round_trip() {
        for p in ProtocolSpec::ALL {
            assert_eq!(p.to_string().parse::<ProtocolSpec>().unwrap(), p);
        }
        assert!("dftno".parse::<ProtocolSpec>().is_err());
    }

    #[test]
    fn daemon_names_round_trip() {
        for d in DaemonSpec::ALL {
            assert_eq!(d.to_string().parse::<DaemonSpec>().unwrap(), d);
        }
        assert!("chaotic".parse::<DaemonSpec>().is_err());
    }

    #[test]
    fn fault_plans_round_trip() {
        for f in [
            FaultPlan::None,
            FaultPlan::AfterConvergence { hits: 3 },
            FaultPlan::AtStep { step: 500, hits: 2 },
            FaultPlan::LinkFail { step: 40 },
            FaultPlan::LinkAdd { step: 0 },
            FaultPlan::NodeCrash { step: 17 },
            FaultPlan::NodeJoin { step: 9 },
            FaultPlan::Churn { rate: 4, seed: 11 },
            FaultPlan::ChurnAny { rate: 2, seed: 7 },
        ] {
            assert_eq!(f.to_string().parse::<FaultPlan>().unwrap(), f);
        }
        for bad in [
            "hit:",
            "hit:2@",
            "link-fail",
            "churn:4",
            "churn::3",
            "churn-any:4",
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "{bad}");
        }
    }

    #[test]
    fn fault_plan_classification() {
        assert!(!FaultPlan::None.mutates_topology());
        assert!(!FaultPlan::AtStep { step: 5, hits: 1 }.mutates_topology());
        assert!(FaultPlan::LinkFail { step: 5 }.mutates_topology());
        assert!(FaultPlan::Churn { rate: 2, seed: 0 }.mutates_topology());
        assert!(FaultPlan::ChurnAny { rate: 2, seed: 0 }.mutates_topology());
        assert!(FaultPlan::ChurnAny { rate: 2, seed: 0 }.may_disconnect());
        assert!(!FaultPlan::Churn { rate: 2, seed: 0 }.may_disconnect());
        assert_eq!(FaultPlan::NodeJoin { step: 5 }.join_headroom(), 1);
        assert_eq!(FaultPlan::Churn { rate: 2, seed: 0 }.join_headroom(), 0);
    }

    #[test]
    fn daemons_build_for_any_network() {
        let g = sno_graph::generators::ring(5);
        let net = Network::new(g, sno_graph::NodeId::new(0));
        for d in DaemonSpec::ALL {
            let mut daemon = d.build(&net, 3);
            daemon.reset(4);
            assert!(!daemon.name().is_empty());
        }
    }
}
