//! Nameable coordinates of a scenario: protocol stack, daemon, fault plan.
//!
//! Everything here is a small copyable value with a stable string name
//! (`Display`/`FromStr` round-trip), so scenario matrices can be echoed
//! into JSON reports and parsed back from command lines.

use std::fmt;
use std::str::FromStr;

use sno_engine::daemon::{
    CentralFixedPriority, CentralRandom, CentralRoundRobin, Daemon, DistributedRandom,
    LocallyCentralRandom, Synchronous,
};
use sno_engine::Network;

/// Which token-circulation substrate `DFTNO` runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenSubstrate {
    /// The golden, non-stabilizing Euler-tour walker
    /// ([`sno_token::OracleToken`]) — the paper's "after the token
    /// circulation stabilizes" regime behind the `O(n)` claim.
    Oracle,
    /// The full self-stabilizing circulation
    /// ([`sno_token::DfsTokenCirculation`]).
    Dftc,
}

/// Which spanning-tree substrate `STNO` runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeSubstrate {
    /// A frozen golden BFS tree ([`sno_tree::OracleSpanningTree`]) — the
    /// "after the tree stabilizes" regime behind the `O(h)` claim.
    Oracle,
    /// The self-stabilizing BFS tree ([`sno_tree::BfsSpanningTree`]).
    Bfs,
    /// The Collin–Dolev DFS tree ([`sno_tree::CdSpanningTree`]), under
    /// which `STNO` names nodes exactly like `DFTNO` (experiment E9).
    CdDfs,
}

/// One of the paper's two orientation protocols plus its substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolSpec {
    /// `DFTNO` (Algorithm 3.1.1) over the given token substrate.
    Dftno(TokenSubstrate),
    /// `STNO` (Algorithm 4.1.2) over the given tree substrate.
    Stno(TreeSubstrate),
}

impl ProtocolSpec {
    /// Every protocol × substrate combination.
    pub const ALL: [ProtocolSpec; 5] = [
        ProtocolSpec::Dftno(TokenSubstrate::Oracle),
        ProtocolSpec::Dftno(TokenSubstrate::Dftc),
        ProtocolSpec::Stno(TreeSubstrate::Oracle),
        ProtocolSpec::Stno(TreeSubstrate::Bfs),
        ProtocolSpec::Stno(TreeSubstrate::CdDfs),
    ];

    /// The two oracle-substrate stacks the paper's step bounds refer to.
    pub const ORACLES: [ProtocolSpec; 2] = [
        ProtocolSpec::Dftno(TokenSubstrate::Oracle),
        ProtocolSpec::Stno(TreeSubstrate::Oracle),
    ];
}

impl fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolSpec::Dftno(TokenSubstrate::Oracle) => "dftno/oracle-token",
            ProtocolSpec::Dftno(TokenSubstrate::Dftc) => "dftno/dftc",
            ProtocolSpec::Stno(TreeSubstrate::Oracle) => "stno/oracle-tree",
            ProtocolSpec::Stno(TreeSubstrate::Bfs) => "stno/bfs-tree",
            ProtocolSpec::Stno(TreeSubstrate::CdDfs) => "stno/cd-dfs-tree",
        };
        f.write_str(s)
    }
}

impl FromStr for ProtocolSpec {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, ParseError> {
        ProtocolSpec::ALL
            .into_iter()
            .find(|p| p.to_string() == s)
            .ok_or_else(|| ParseError::new("protocol", s))
    }
}

/// A scheduler family, instantiated per run via [`DaemonSpec::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DaemonSpec {
    /// Weakly fair central daemon (rotating).
    CentralRoundRobin,
    /// Central daemon with uniformly random choices.
    CentralRandom,
    /// **Unfair** central daemon (lowest node id first) — the adversarial
    /// scheduler of the paper's impossibility discussions.
    Adversarial,
    /// Every enabled processor executes each step.
    Synchronous,
    /// The paper's distributed daemon: random non-empty subsets.
    Distributed,
    /// Random independent subsets (no two neighbors per step).
    LocallyCentral,
}

impl DaemonSpec {
    /// Every daemon family.
    pub const ALL: [DaemonSpec; 6] = [
        DaemonSpec::CentralRoundRobin,
        DaemonSpec::CentralRandom,
        DaemonSpec::Adversarial,
        DaemonSpec::Synchronous,
        DaemonSpec::Distributed,
        DaemonSpec::LocallyCentral,
    ];

    /// Builds the daemon for `net`, seeded with `seed`. Re-arm the returned
    /// daemon for further runs with [`Daemon::reset`] instead of
    /// rebuilding — construction is the only allocating step.
    pub fn build(self, net: &Network, seed: u64) -> Box<dyn Daemon> {
        match self {
            DaemonSpec::CentralRoundRobin => Box::new(CentralRoundRobin::new()),
            DaemonSpec::CentralRandom => Box::new(CentralRandom::seeded(seed)),
            DaemonSpec::Adversarial => Box::new(CentralFixedPriority::new()),
            DaemonSpec::Synchronous => Box::new(Synchronous::new()),
            DaemonSpec::Distributed => Box::new(DistributedRandom::seeded(seed)),
            DaemonSpec::LocallyCentral => Box::new(LocallyCentralRandom::seeded(seed, net)),
        }
    }
}

impl fmt::Display for DaemonSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DaemonSpec::CentralRoundRobin => "central-round-robin",
            DaemonSpec::CentralRandom => "central-random",
            DaemonSpec::Adversarial => "adversarial",
            DaemonSpec::Synchronous => "synchronous",
            DaemonSpec::Distributed => "distributed",
            DaemonSpec::LocallyCentral => "locally-central",
        };
        f.write_str(s)
    }
}

impl FromStr for DaemonSpec {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, ParseError> {
        DaemonSpec::ALL
            .into_iter()
            .find(|d| d.to_string() == s)
            .ok_or_else(|| ParseError::new("daemon", s))
    }
}

/// What the adversary does to a run after it first converges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPlan {
    /// No injected faults: measure stabilization from an arbitrary
    /// initial configuration only.
    None,
    /// After convergence, corrupt this many uniformly chosen processors
    /// with arbitrary states and measure re-convergence (the recovery
    /// phase appears as `recovery_*` statistics in reports).
    AfterConvergence {
        /// Number of processors hit (capped at the network size).
        hits: u8,
    },
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlan::None => f.write_str("none"),
            FaultPlan::AfterConvergence { hits } => write!(f, "hit:{hits}"),
        }
    }
}

impl FromStr for FaultPlan {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, ParseError> {
        if s == "none" {
            return Ok(FaultPlan::None);
        }
        if let Some(hits) = s.strip_prefix("hit:") {
            if let Ok(hits) = hits.parse() {
                return Ok(FaultPlan::AfterConvergence { hits });
            }
        }
        Err(ParseError::new("fault plan", s))
    }
}

/// Error for any failed spec parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    what: &'static str,
    input: String,
}

impl ParseError {
    fn new(what: &'static str, input: &str) -> Self {
        ParseError {
            what,
            input: input.to_string(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown {} `{}`", self.what, self.input)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_names_round_trip() {
        for p in ProtocolSpec::ALL {
            assert_eq!(p.to_string().parse::<ProtocolSpec>().unwrap(), p);
        }
        assert!("dftno".parse::<ProtocolSpec>().is_err());
    }

    #[test]
    fn daemon_names_round_trip() {
        for d in DaemonSpec::ALL {
            assert_eq!(d.to_string().parse::<DaemonSpec>().unwrap(), d);
        }
        assert!("chaotic".parse::<DaemonSpec>().is_err());
    }

    #[test]
    fn fault_plans_round_trip() {
        for f in [FaultPlan::None, FaultPlan::AfterConvergence { hits: 3 }] {
            assert_eq!(f.to_string().parse::<FaultPlan>().unwrap(), f);
        }
        assert!("hit:".parse::<FaultPlan>().is_err());
    }

    #[test]
    fn daemons_build_for_any_network() {
        let g = sno_graph::generators::ring(5);
        let net = Network::new(g, sno_graph::NodeId::new(0));
        for d in DaemonSpec::ALL {
            let mut daemon = d.build(&net, 3);
            daemon.reset(4);
            assert!(!daemon.name().is_empty());
        }
    }
}
