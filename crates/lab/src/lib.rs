//! # sno-lab
//!
//! The **scenario-fleet** subsystem: declarative matrices of
//! self-stabilization experiments, executed in parallel, aggregated into
//! per-cell statistics.
//!
//! The paper's complexity claims — `DFTNO` stabilizes in `O(n)` steps
//! once its token circulation is stable, `STNO` in `O(h)` once its tree
//! is stable — are *empirical* statements about fleets of runs: many
//! topologies, sizes, daemons, fault patterns, and seeds. This crate
//! turns such a fleet into one value:
//!
//! 1. [`ScenarioMatrix`] declares the cross product
//!    topology family × size × protocol stack × daemon × fault plan,
//!    measured over a seed range;
//! 2. [`run_campaign`] expands it into cells, drives every run on a
//!    worker fleet (scoped `std::thread` workers claiming cells from an
//!    atomic queue — a stand-in for rayon, which this offline build
//!    cannot fetch), reusing the network, simulation, and daemon
//!    allocations across a cell's seeds;
//! 3. [`CampaignReport`] aggregates each cell into
//!    `min/mean/p50/p95/max` summaries of moves, steps, and rounds plus
//!    convergence rates, and renders the repo's `BENCH_*.json` format
//!    ([`CampaignReport::to_json`]) or a Markdown table
//!    ([`CampaignReport::to_markdown`]).
//!
//! Reports are **bit-for-bit deterministic** in the matrix: every run
//! seeds its own RNGs from the run seed, and results are aggregated in
//! matrix order regardless of the parallel schedule.
//!
//! # Example
//!
//! ```
//! use sno_graph::GeneratorSpec;
//! use sno_lab::{DaemonSpec, ProtocolSpec, ScenarioMatrix, TreeSubstrate};
//!
//! let matrix = ScenarioMatrix::new("doc")
//!     .topologies([GeneratorSpec::Star, GeneratorSpec::Ring])
//!     .sizes([8])
//!     .protocols([ProtocolSpec::Stno(TreeSubstrate::Oracle)])
//!     .daemons([DaemonSpec::Synchronous])
//!     .seeds(0, 4)
//!     .max_steps(100_000);
//! let report = sno_lab::run_campaign(&matrix);
//! assert_eq!(report.total_runs, 8);
//! assert_eq!(report.total_converged, 8, "STNO over a frozen tree always stabilizes");
//! assert!(report.to_json().contains("\"schema\":\"sno-lab/v1\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod cli;
pub mod fleet;
pub mod matrix;
pub mod report;
pub mod runner;
pub mod spec;
pub mod stats;

pub use matrix::{CellSpec, ScenarioMatrix};
pub use report::{CampaignReport, CellReport};
pub use runner::{
    converge_once, engine_mode_label, run_campaign, run_campaign_with_options,
    run_campaign_with_threads, trace_first_cell, CellOutcome, EngineOptions, Recovery, RunRecord,
};
pub use spec::{DaemonSpec, FaultPlan, ProtocolSpec, TokenSubstrate, TreeSubstrate};
pub use stats::Summary;
