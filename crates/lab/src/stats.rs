//! Order statistics over per-run counters.
//!
//! The digest itself lives in `sno-telemetry` ([`SummaryStats`]) and is
//! shared with the engine's `StabilizationStats`; this module re-exports
//! it under the lab's historical name and keeps the lab-side contract
//! tests pinning the exact nearest-rank semantics the campaign JSON's
//! byte-identity depends on.
//!
//! [`SummaryStats`]: sno_telemetry::SummaryStats

pub use sno_telemetry::SummaryStats as Summary;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_summary() {
        assert_eq!(Summary::from_samples(&mut []), None);
    }

    #[test]
    fn single_sample_is_its_own_summary() {
        let s = Summary::from_samples(&mut [7]).unwrap();
        assert_eq!((s.min, s.p50, s.p95, s.max), (7, 7, 7, 7));
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut v: Vec<u64> = (1..=100).collect();
        let s = Summary::from_samples(&mut v).unwrap();
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.mean, 50.5);

        let mut v: Vec<u64> = vec![10, 20, 30, 40];
        let s = Summary::from_samples(&mut v).unwrap();
        assert_eq!(s.p50, 20);
        assert_eq!(s.p95, 40);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut v = vec![30, 10, 20];
        let s = Summary::from_samples(&mut v).unwrap();
        assert_eq!((s.min, s.p50, s.max), (10, 20, 30));
    }

    #[test]
    fn mean_is_exact_for_large_values() {
        let mut v = vec![u64::MAX, u64::MAX];
        let s = Summary::from_samples(&mut v).unwrap();
        assert_eq!(s.mean, u64::MAX as f64);
    }
}
