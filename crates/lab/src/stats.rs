//! Order statistics over per-run counters.

/// Five-number summary (plus mean) of a set of `u64` samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum.
    pub min: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// Maximum.
    pub max: u64,
}

impl Summary {
    /// Summarizes `samples` (sorted in place); `None` when empty.
    pub fn from_samples(samples: &mut [u64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let count = samples.len();
        let sum: u128 = samples.iter().map(|&v| v as u128).sum();
        Some(Summary {
            count,
            min: samples[0],
            mean: sum as f64 / count as f64,
            p50: nearest_rank(samples, 50),
            p95: nearest_rank(samples, 95),
            max: samples[count - 1],
        })
    }
}

/// Nearest-rank percentile of an ascending-sorted non-empty slice.
fn nearest_rank(sorted: &[u64], percentile: u32) -> u64 {
    debug_assert!(!sorted.is_empty() && (1..=100).contains(&percentile));
    let rank = (percentile as usize * sorted.len()).div_ceil(100);
    sorted[rank.max(1) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_summary() {
        assert_eq!(Summary::from_samples(&mut []), None);
    }

    #[test]
    fn single_sample_is_its_own_summary() {
        let s = Summary::from_samples(&mut [7]).unwrap();
        assert_eq!((s.min, s.p50, s.p95, s.max), (7, 7, 7, 7));
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut v: Vec<u64> = (1..=100).collect();
        let s = Summary::from_samples(&mut v).unwrap();
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.mean, 50.5);

        let mut v: Vec<u64> = vec![10, 20, 30, 40];
        let s = Summary::from_samples(&mut v).unwrap();
        assert_eq!(s.p50, 20);
        assert_eq!(s.p95, 40);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut v = vec![30, 10, 20];
        let s = Summary::from_samples(&mut v).unwrap();
        assert_eq!((s.min, s.p50, s.max), (10, 20, 30));
    }

    #[test]
    fn mean_is_exact_for_large_values() {
        let mut v = vec![u64::MAX, u64::MAX];
        let s = Summary::from_samples(&mut v).unwrap();
        assert_eq!(s.mean, u64::MAX as f64);
    }
}
