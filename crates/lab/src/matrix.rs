//! The declarative scenario matrix and its expansion into cells.

use sno_graph::GeneratorSpec;

use crate::spec::{DaemonSpec, FaultPlan, ProtocolSpec, TreeSubstrate};

/// A declarative campaign: the cross product of topology families, target
/// sizes, protocol stacks, daemons, and fault plans, each cell measured
/// over a contiguous seed range.
///
/// Build one with the fluent setters, then hand it to
/// [`run_campaign`](crate::run_campaign):
///
/// ```
/// use sno_lab::{DaemonSpec, ProtocolSpec, ScenarioMatrix, TokenSubstrate};
/// use sno_graph::GeneratorSpec;
///
/// let matrix = ScenarioMatrix::new("smoke")
///     .topologies([GeneratorSpec::Ring, GeneratorSpec::Star])
///     .sizes([8, 16])
///     .protocols([ProtocolSpec::Dftno(TokenSubstrate::Oracle)])
///     .daemons([DaemonSpec::CentralRandom])
///     .seeds(0, 5);
/// assert_eq!(matrix.cells().len(), 4);
/// assert_eq!(matrix.run_count(), 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioMatrix {
    /// Campaign name, echoed into reports.
    pub name: String,
    /// Topology families to sweep.
    pub topologies: Vec<GeneratorSpec>,
    /// Target node counts to sweep.
    pub sizes: Vec<usize>,
    /// Protocol stacks to sweep.
    pub protocols: Vec<ProtocolSpec>,
    /// Daemons to sweep.
    pub daemons: Vec<DaemonSpec>,
    /// Fault plans to sweep.
    pub faults: Vec<FaultPlan>,
    /// First run seed of every cell.
    pub seed_start: u64,
    /// Runs per cell (seeds `seed_start .. seed_start + seeds_per_cell`).
    pub seeds_per_cell: u64,
    /// Seed used to instantiate seeded topologies (fixed per campaign so
    /// every cell of a family×size shares one graph).
    pub graph_seed: u64,
    /// Per-run daemon-step budget; a run that exhausts it without reaching
    /// its goal counts as non-converged.
    pub max_steps: u64,
}

impl ScenarioMatrix {
    /// A matrix with empty sweeps and conservative defaults
    /// (8 seeds per cell, 10 M step budget, no fault plan).
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioMatrix {
            name: name.into(),
            topologies: Vec::new(),
            sizes: Vec::new(),
            protocols: Vec::new(),
            daemons: Vec::new(),
            faults: vec![FaultPlan::None],
            seed_start: 0,
            seeds_per_cell: 8,
            graph_seed: 0x5EED,
            max_steps: 10_000_000,
        }
    }

    /// Sets the topology families.
    pub fn topologies(mut self, t: impl IntoIterator<Item = GeneratorSpec>) -> Self {
        self.topologies = t.into_iter().collect();
        self
    }

    /// Sets the target sizes.
    pub fn sizes(mut self, s: impl IntoIterator<Item = usize>) -> Self {
        self.sizes = s.into_iter().collect();
        self
    }

    /// Sets the protocol stacks.
    pub fn protocols(mut self, p: impl IntoIterator<Item = ProtocolSpec>) -> Self {
        self.protocols = p.into_iter().collect();
        self
    }

    /// Sets the daemons.
    pub fn daemons(mut self, d: impl IntoIterator<Item = DaemonSpec>) -> Self {
        self.daemons = d.into_iter().collect();
        self
    }

    /// Sets the fault plans.
    pub fn faults(mut self, f: impl IntoIterator<Item = FaultPlan>) -> Self {
        self.faults = f.into_iter().collect();
        self
    }

    /// Sets the seed range: `count` runs per cell starting at `start`.
    pub fn seeds(mut self, start: u64, count: u64) -> Self {
        self.seed_start = start;
        self.seeds_per_cell = count;
        self
    }

    /// Sets the per-run step budget.
    pub fn max_steps(mut self, budget: u64) -> Self {
        self.max_steps = budget;
        self
    }

    /// Sets the topology-instantiation seed.
    pub fn graph_seed(mut self, seed: u64) -> Self {
        self.graph_seed = seed;
        self
    }

    /// Expands the matrix into its cells, in a deterministic order
    /// (topology-major, then size, protocol, daemon, fault).
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut out = Vec::with_capacity(
            self.topologies.len()
                * self.sizes.len()
                * self.protocols.len()
                * self.daemons.len()
                * self.faults.len(),
        );
        for &topology in &self.topologies {
            for &n in &self.sizes {
                for &protocol in &self.protocols {
                    for &daemon in &self.daemons {
                        for &fault in &self.faults {
                            out.push(CellSpec {
                                topology,
                                n,
                                protocol,
                                daemon,
                                fault,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Total number of simulations the campaign will run.
    pub fn run_count(&self) -> u64 {
        self.cells().len() as u64 * self.seeds_per_cell
    }

    /// Checks that every sweep dimension is non-empty and the seed range
    /// is non-degenerate.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.topologies.is_empty() {
            return Err("matrix has no topologies".into());
        }
        if self.sizes.is_empty() {
            return Err("matrix has no sizes".into());
        }
        if self.sizes.contains(&0) {
            return Err("matrix contains a zero size".into());
        }
        if self.protocols.is_empty() {
            return Err("matrix has no protocols".into());
        }
        if self.daemons.is_empty() {
            return Err("matrix has no daemons".into());
        }
        if self.faults.is_empty() {
            return Err("matrix has no fault plans".into());
        }
        for f in &self.faults {
            match f {
                FaultPlan::AfterConvergence { hits: 0 } | FaultPlan::AtStep { hits: 0, .. } => {
                    return Err(format!("fault plan `{f}` injects nothing — use `none`"));
                }
                FaultPlan::Churn { rate: 0, .. } => {
                    return Err("fault plan `churn:0:_` perturbs nothing — use `none`".into());
                }
                FaultPlan::ChurnAny { rate: 0, .. } => {
                    return Err("fault plan `churn-any:0:_` perturbs nothing — use `none`".into());
                }
                _ => {}
            }
        }
        if self.faults.iter().any(FaultPlan::mutates_topology) {
            // Oracle substrates and DFTNO's golden-orientation goal are
            // precomputed from the initial graph; under topology mutation
            // they would silently measure against a stale structure.
            let stale = self.protocols.iter().find(|p| {
                !matches!(
                    p,
                    ProtocolSpec::Stno(crate::spec::TreeSubstrate::Bfs)
                        | ProtocolSpec::Stno(crate::spec::TreeSubstrate::CdDfs)
                        | ProtocolSpec::Dcd
                )
            });
            if let Some(p) = stale {
                return Err(format!(
                    "topology-mutating fault plans require a fully self-stabilizing stack \
                     (stno/bfs-tree, stno/cd-dfs-tree, or dcd); `{p}` precomputes structure \
                     from the initial graph"
                ));
            }
        }
        if self.faults.iter().any(FaultPlan::may_disconnect) {
            // A disconnecting plan voids the connected-rooted-network
            // premise of the orientation stacks; only the
            // disconnection-aware detector has a specification (and a
            // legitimacy predicate) that covers a severed component.
            if let Some(p) = self
                .protocols
                .iter()
                .find(|p| !matches!(p, ProtocolSpec::Dcd))
            {
                return Err(format!(
                    "disconnecting fault plans (churn-any) require the disconnection-aware \
                     `dcd` stack; `{p}`'s specification presumes a connected rooted network"
                ));
            }
        }
        if self.seeds_per_cell == 0 {
            return Err("matrix has an empty seed range".into());
        }
        if self.max_steps == 0 {
            return Err("matrix has a zero step budget".into());
        }
        Ok(())
    }
}

/// The churn campaign preset behind `sno-lab churn`: recovery cost as a
/// function of churn rate.
///
/// Sweeps a hub-and-spoke and a random-tree topology under the
/// self-stabilizing `stno/bfs-tree` stack and the paper's distributed
/// daemon, over four churn rates (1, 2, 4, 8 perturbation windows per
/// run) and 32 seeds per cell. Every run first stabilizes, then rides
/// out its churn windows; the `recovery_*` columns aggregate the
/// re-convergence cost of all windows, so plotting them against the
/// rate gives the marginal price of a topology perturbation. Like every
/// campaign, the report is byte-identical across engine modes, shard
/// counts, and thread counts.
pub fn churn_preset() -> ScenarioMatrix {
    ScenarioMatrix::new("churn")
        .topologies([GeneratorSpec::Hubs { hubs: 3 }, GeneratorSpec::RandomTree])
        .sizes([16])
        .protocols([ProtocolSpec::Stno(TreeSubstrate::Bfs)])
        .daemons([DaemonSpec::Distributed])
        .faults([
            FaultPlan::Churn {
                rate: 1,
                seed: 0xC0DE,
            },
            FaultPlan::Churn {
                rate: 2,
                seed: 0xC0DE,
            },
            FaultPlan::Churn {
                rate: 4,
                seed: 0xC0DE,
            },
            FaultPlan::Churn {
                rate: 8,
                seed: 0xC0DE,
            },
        ])
        .seeds(0, 32)
        .max_steps(2_000_000)
}

/// The unrestricted-churn preset behind `sno-lab churn --any`: recovery
/// and **detection latency** under churn that may disconnect.
///
/// Like [`churn_preset`], but every window's failing link is drawn from
/// all links — bridges included — so a perturbation can sever processors
/// from the root. Only the disconnection-aware `dcd` stack rides it; the
/// report gains a detection-latency summary (daemon steps until every
/// severed processor's detector saturates) next to the recovery
/// statistics. The hub-and-spoke family keeps bridges plentiful, and the
/// random-tree family makes *every* link a bridge, so the two columns
/// bracket the mild and the worst case.
pub fn churn_any_preset() -> ScenarioMatrix {
    ScenarioMatrix::new("churn-any")
        .topologies([GeneratorSpec::Hubs { hubs: 3 }, GeneratorSpec::RandomTree])
        .sizes([16])
        .protocols([ProtocolSpec::Dcd])
        .daemons([DaemonSpec::Distributed])
        .faults([
            FaultPlan::ChurnAny {
                rate: 1,
                seed: 0xC0DE,
            },
            FaultPlan::ChurnAny {
                rate: 2,
                seed: 0xC0DE,
            },
            FaultPlan::ChurnAny {
                rate: 4,
                seed: 0xC0DE,
            },
            FaultPlan::ChurnAny {
                rate: 8,
                seed: 0xC0DE,
            },
        ])
        .seeds(0, 32)
        .max_steps(2_000_000)
}

/// One cell of the expanded matrix: a concrete scenario measured over the
/// campaign's seed range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Topology family.
    pub topology: GeneratorSpec,
    /// Target node count.
    pub n: usize,
    /// Protocol stack.
    pub protocol: ProtocolSpec,
    /// Scheduler.
    pub daemon: DaemonSpec,
    /// Fault plan.
    pub fault: FaultPlan,
}

impl std::fmt::Display for CellSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} n={} {} {} fault={}",
            self.topology, self.n, self.protocol, self.daemon, self.fault
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TreeSubstrate;

    fn sample() -> ScenarioMatrix {
        ScenarioMatrix::new("t")
            .topologies([GeneratorSpec::Ring, GeneratorSpec::Path])
            .sizes([8, 16, 32])
            .protocols([
                ProtocolSpec::Stno(TreeSubstrate::Bfs),
                ProtocolSpec::Stno(TreeSubstrate::Oracle),
            ])
            .daemons([DaemonSpec::CentralRoundRobin])
            .seeds(5, 10)
    }

    #[test]
    fn expansion_is_the_full_cross_product() {
        let m = sample();
        assert_eq!(m.cells().len(), 2 * 3 * 2);
        assert_eq!(m.run_count(), 12 * 10);
        m.validate().unwrap();
    }

    #[test]
    fn expansion_order_is_deterministic() {
        let m = sample();
        assert_eq!(m.cells(), m.cells());
        assert_eq!(m.cells()[0].topology, GeneratorSpec::Ring);
        assert_eq!(m.cells().last().unwrap().topology, GeneratorSpec::Path);
    }

    #[test]
    fn validation_rejects_empty_dimensions() {
        assert!(ScenarioMatrix::new("e").validate().is_err());
        assert!(sample().sizes([]).validate().is_err());
        assert!(sample().seeds(0, 0).validate().is_err());
        assert!(sample().max_steps(0).validate().is_err());
        assert!(sample().faults([]).validate().is_err());
        assert!(
            sample()
                .faults([FaultPlan::AfterConvergence { hits: 0 }])
                .validate()
                .is_err(),
            "a zero-hit fault plan is a contradiction, not a no-op"
        );
        assert!(sample()
            .faults([FaultPlan::AtStep { step: 10, hits: 0 }])
            .validate()
            .is_err());
        assert!(sample()
            .faults([FaultPlan::Churn { rate: 0, seed: 1 }])
            .validate()
            .is_err());
    }

    #[test]
    fn disconnecting_plans_require_the_dcd_stack() {
        let base = ScenarioMatrix::new("any")
            .topologies([GeneratorSpec::RandomTree])
            .sizes([10])
            .daemons([DaemonSpec::Distributed])
            .faults([FaultPlan::ChurnAny { rate: 2, seed: 1 }]);
        // Even the fully self-stabilizing orientation stacks are barred:
        // their specifications presume a connected rooted network.
        let e = base
            .clone()
            .protocols([ProtocolSpec::Stno(TreeSubstrate::Bfs)])
            .validate()
            .unwrap_err();
        assert!(e.contains("dcd"), "{e}");
        base.clone()
            .protocols([ProtocolSpec::Dcd])
            .validate()
            .unwrap();
        assert!(base
            .protocols([ProtocolSpec::Dcd])
            .faults([FaultPlan::ChurnAny { rate: 0, seed: 1 }])
            .validate()
            .is_err());
        churn_any_preset().validate().unwrap();
    }

    #[test]
    fn topology_plans_require_self_stabilizing_stacks() {
        // The sample matrix sweeps stno/oracle-tree — its frozen tree
        // would go stale under mutation.
        let e = sample()
            .faults([FaultPlan::Churn { rate: 2, seed: 0 }])
            .validate()
            .unwrap_err();
        assert!(e.contains("self-stabilizing"), "{e}");
        sample()
            .protocols([
                ProtocolSpec::Stno(TreeSubstrate::Bfs),
                ProtocolSpec::Stno(TreeSubstrate::CdDfs),
            ])
            .faults([FaultPlan::LinkFail { step: 8 }, FaultPlan::None])
            .validate()
            .unwrap();
    }
}
