//! The `sno-lab` binary: ad-hoc scenario campaigns from the command line.
//!
//! All logic lives in [`sno_lab::cli`]; this is the thinnest possible
//! `main` so the parsing and execution paths stay unit-testable.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(sno_lab::cli::main_with_args(&args));
}
