//! The thread fleet: deterministic parallel map over scenario cells.
//!
//! This is a stand-in for `rayon::par_iter` built on `std::thread::scope`
//! (this build environment cannot pull rayon from a registry). Work items
//! are claimed from a shared atomic counter, so threads stay busy even
//! when cell costs are skewed, and results are returned **in input
//! order** — the parallel schedule can never leak into a report.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on up to `threads` worker threads and
/// returns the results in input order.
///
/// `f` receives the item index alongside the item. With `threads <= 1`
/// the map runs inline on the caller's thread.
///
/// # Panics
///
/// Propagates the first worker panic.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = threads.clamp(1, items.len());
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                results
                    .lock()
                    .expect("fleet poisoned by a panic")
                    .push((i, r));
            });
        }
    });

    let mut indexed = results.into_inner().expect("fleet poisoned by a panic");
    assert_eq!(indexed.len(), items.len(), "every item produced a result");
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// The number of worker threads to use by default: the machine's
/// available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = parallel_map(&items, 8, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_threaded_fallback_matches() {
        let items: Vec<u64> = (0..40).collect();
        let seq = parallel_map(&items, 1, |_, &x| x + 1);
        let par = parallel_map(&items, 4, |_, &x| x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_map(&[] as &[u8], 4, |_, _| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn skewed_work_is_shared() {
        // One huge item first; the counter-based claim means other threads
        // drain the rest concurrently. Just assert correctness here.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 4, |_, &x| {
            if x == 0 {
                (0..100_000u64).sum::<u64>() % 7 + x
            } else {
                x
            }
        });
        assert_eq!(out[1..], items[1..]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
