//! The thread fleet: deterministic parallel map over scenario cells.
//!
//! The executor itself now lives in the shared `sno-fleet` crate — the
//! engine's sharded synchronous executor (`EngineMode::SyncSharded`)
//! drives its per-shard round phases over the same scoped-thread
//! fleet the campaign runner fans cells out over. This module re-exports
//! it under the lab's historical path; see `sno-fleet` for the claim
//! protocol, ordering guarantee, and panic-identity capture
//! (the runner labels items with their cell and seed range via
//! [`parallel_map_labeled`], so a panicking run names itself).

pub use sno_fleet::{
    default_threads, parallel_map, parallel_map_labeled, parallel_map_mut, payload_message,
};

#[cfg(test)]
mod tests {
    use super::*;

    // The behavioral suite lives in `sno-fleet`; these smoke tests pin
    // the re-exported surface the lab depends on.
    #[test]
    fn reexported_map_preserves_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map(&items, 4, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reexported_default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
