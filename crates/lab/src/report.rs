//! Aggregated campaign reports and their JSON / Markdown emitters.
//!
//! The JSON layout (`schema = "sno-lab/v1"`) is the interchange format of
//! the repo's `BENCH_*.json` artifacts: a campaign header, the echoed
//! matrix, and one object per cell with `min/mean/p50/p95/max` summaries
//! of moves, steps, and rounds plus the convergence rate.

use std::fmt::Write as _;

use sno_telemetry::{Counter, CounterMeter, ExchangeBreakdown, Histogram, Metric};

use crate::matrix::ScenarioMatrix;
use crate::runner::CellOutcome;
use crate::stats::Summary;

/// Per-cell aggregate statistics.
///
/// The `moves`/`steps`/`rounds` summaries cover **converged runs only**
/// (budget-exhausted runs would poison the percentiles with the budget
/// value); the convergence rate reports how many runs that is. Recovery
/// summaries likewise cover runs whose recovery phase re-converged.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Topology family name (a [`GeneratorSpec`](sno_graph::GeneratorSpec) rendering).
    pub topology: String,
    /// Requested target size.
    pub n: usize,
    /// Actual node count of the instantiated graph.
    pub nodes: usize,
    /// Edge count of the instantiated graph.
    pub edges: usize,
    /// Protocol stack name.
    pub protocol: String,
    /// Daemon name.
    pub daemon: String,
    /// Fault plan name.
    pub fault: String,
    /// Runs performed.
    pub runs: usize,
    /// Runs that reached the goal within budget.
    pub converged: usize,
    /// `converged / runs`.
    pub convergence_rate: f64,
    /// Moves to convergence (converged runs only).
    pub moves: Option<Summary>,
    /// Daemon steps to convergence (converged runs only).
    pub steps: Option<Summary>,
    /// Rounds to convergence (converged runs only).
    pub rounds: Option<Summary>,
    /// Recovery phases that re-converged (fault campaigns only).
    pub recovered: usize,
    /// Moves of re-convergence after the injected fault.
    pub recovery_moves: Option<Summary>,
    /// Steps of re-convergence.
    pub recovery_steps: Option<Summary>,
    /// Rounds of re-convergence.
    pub recovery_rounds: Option<Summary>,
    /// Detection latency of disconnecting plans (`churn-any`): daemon
    /// steps per run (summed over its perturbation windows) until every
    /// severed processor's detector flagged the cut. `None` for every
    /// other fault plan, keeping their reports byte-identical.
    pub detection_steps: Option<Summary>,
    /// Deterministic engine counters and per-step histograms summed over
    /// every run of the cell. `None` unless the campaign ran with
    /// metrics collection ([`EngineOptions::metrics`]); absent metrics
    /// render nothing, keeping default reports byte-identical to
    /// pre-telemetry ones.
    ///
    /// [`EngineOptions::metrics`]: crate::runner::EngineOptions
    pub metrics: Option<CounterMeter>,
    /// Sharded-executor boundary traffic (ports handed across shard
    /// boundaries per exchange phase, with per-destination-shard
    /// counts). Present only for metered campaigns whose cells actually
    /// ran the sharded executor and crossed a boundary; a
    /// partition-dependent diagnostic, deterministic for a fixed mode
    /// and shard count.
    pub exchange: Option<ExchangeBreakdown>,
}

impl CellReport {
    /// Aggregates one cell's run records.
    pub fn from_outcome(outcome: &CellOutcome) -> CellReport {
        let runs = outcome.runs.len();
        let converged_runs: Vec<_> = outcome.runs.iter().filter(|r| r.converged).collect();
        let converged = converged_runs.len();
        let mut moves: Vec<u64> = converged_runs.iter().map(|r| r.moves).collect();
        let mut steps: Vec<u64> = converged_runs.iter().map(|r| r.steps).collect();
        let mut rounds: Vec<u64> = converged_runs.iter().map(|r| r.rounds).collect();

        let recoveries: Vec<_> = outcome
            .runs
            .iter()
            .filter_map(|r| r.recovery.as_ref())
            .filter(|rec| rec.converged)
            .collect();
        let mut rec_moves: Vec<u64> = recoveries.iter().map(|r| r.moves).collect();
        let mut rec_steps: Vec<u64> = recoveries.iter().map(|r| r.steps).collect();
        let mut rec_rounds: Vec<u64> = recoveries.iter().map(|r| r.rounds).collect();
        let mut detections: Vec<u64> = outcome.runs.iter().filter_map(|r| r.detection).collect();

        CellReport {
            topology: outcome.cell.topology.to_string(),
            n: outcome.cell.n,
            nodes: outcome.nodes,
            edges: outcome.edges,
            protocol: outcome.cell.protocol.to_string(),
            daemon: outcome.cell.daemon.to_string(),
            fault: outcome.cell.fault.to_string(),
            runs,
            converged,
            convergence_rate: if runs == 0 {
                0.0
            } else {
                converged as f64 / runs as f64
            },
            moves: Summary::from_samples(&mut moves),
            steps: Summary::from_samples(&mut steps),
            rounds: Summary::from_samples(&mut rounds),
            recovered: recoveries.len(),
            recovery_moves: Summary::from_samples(&mut rec_moves),
            recovery_steps: Summary::from_samples(&mut rec_steps),
            recovery_rounds: Summary::from_samples(&mut rec_rounds),
            detection_steps: Summary::from_samples(&mut detections),
            metrics: outcome.metrics.clone(),
            exchange: outcome.exchange.clone(),
        }
    }
}

/// A finished campaign: the echoed matrix plus per-cell aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// The matrix that produced this report.
    pub matrix: ScenarioMatrix,
    /// Total simulations run.
    pub total_runs: usize,
    /// Total simulations that converged.
    pub total_converged: usize,
    /// One aggregate per cell, in matrix expansion order.
    pub cells: Vec<CellReport>,
}

impl CampaignReport {
    /// Assembles the report from the matrix and its cell aggregates.
    pub fn new(matrix: &ScenarioMatrix, cells: Vec<CellReport>) -> CampaignReport {
        CampaignReport {
            name: matrix.name.clone(),
            matrix: matrix.clone(),
            total_runs: cells.iter().map(|c| c.runs).sum(),
            total_converged: cells.iter().map(|c| c.converged).sum(),
            cells,
        }
    }

    /// Overall convergence rate across every run of the campaign.
    pub fn convergence_rate(&self) -> f64 {
        if self.total_runs == 0 {
            0.0
        } else {
            self.total_converged as f64 / self.total_runs as f64
        }
    }

    /// Exact merge of every cell's counter meter, or `None` when the
    /// campaign collected no metrics. Counter merge is plain `u64`
    /// addition and histogram merge is bucket-wise addition, so the
    /// campaign total is independent of cell order and chunking.
    pub fn merged_metrics(&self) -> Option<CounterMeter> {
        let mut acc: Option<CounterMeter> = None;
        for cell in &self.cells {
            if let Some(m) = &cell.metrics {
                match acc.as_mut() {
                    Some(a) => a.merge(m),
                    None => acc = Some(m.clone()),
                }
            }
        }
        acc
    }

    /// Exact merge of every cell's exchange breakdown, or `None` when no
    /// cell crossed a shard boundary (unmetered campaigns, serial
    /// modes). Element-wise `u64` addition, so the total is independent
    /// of cell order and chunking.
    pub fn merged_exchange(&self) -> Option<ExchangeBreakdown> {
        let mut acc: Option<ExchangeBreakdown> = None;
        for cell in &self.cells {
            if let Some(b) = &cell.exchange {
                match acc.as_mut() {
                    Some(a) => a.merge(b),
                    None => acc = Some(b.clone()),
                }
            }
        }
        acc
    }

    /// Renders the `sno-lab/v1` JSON document.
    ///
    /// Campaigns run without metrics collection produce exactly the
    /// pre-telemetry document — the `metrics` fields (per cell and the
    /// campaign-level merge) appear only when a meter actually ran, so
    /// the committed `BENCH_campaign.json` stays byte-identical.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object();
        w.string_field("schema", "sno-lab/v1");
        w.string_field("name", &self.name);
        w.raw_field("matrix", &matrix_json(&self.matrix));
        w.int_field("total_runs", self.total_runs as u64);
        w.int_field("total_converged", self.total_converged as u64);
        w.num_field("convergence_rate", self.convergence_rate());
        w.array_field("cells", self.cells.iter().map(cell_json));
        if let Some(m) = self.merged_metrics() {
            w.raw_field("metrics", &metrics_json(&m));
        }
        if let Some(b) = self.merged_exchange() {
            w.raw_field("exchange", &exchange_json(&b));
        }
        w.close_object();
        w.finish()
    }

    /// Writes [`CampaignReport::to_json`] to `path` (with a trailing
    /// newline, as the `BENCH_*.json` artifacts are committed).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }

    /// Renders a Markdown table of the per-cell aggregates.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Campaign `{}`", self.name);
        let _ = writeln!(
            out,
            "\n{} runs across {} cells — {:.1}% converged\n",
            self.total_runs,
            self.cells.len(),
            100.0 * self.convergence_rate()
        );
        let _ = writeln!(
            out,
            "| topology | n | protocol | daemon | fault | conv | moves p50 | moves p95 | steps p50 | rounds p50 |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|");
        for c in &self.cells {
            let p = |s: &Option<Summary>, f: fn(&Summary) -> u64| {
                s.as_ref()
                    .map(|s| f(s).to_string())
                    .unwrap_or_else(|| "—".into())
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {}/{} | {} | {} | {} | {} |",
                c.topology,
                c.nodes,
                c.protocol,
                c.daemon,
                c.fault,
                c.converged,
                c.runs,
                p(&c.moves, |s| s.p50),
                p(&c.moves, |s| s.p95),
                p(&c.steps, |s| s.p50),
                p(&c.rounds, |s| s.p50),
            );
        }
        // Disconnecting churn gets its own table: the detection-latency
        // column only exists for `churn-any` cells, and the main
        // table's shape stays stable.
        if self.cells.iter().any(|c| c.detection_steps.is_some()) {
            let _ = writeln!(out, "\n### Detection latency (disconnecting churn)\n");
            let _ = writeln!(
                out,
                "| topology | n | protocol | daemon | fault | detected | steps p50 | steps p95 | steps max |"
            );
            let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
            for c in self.cells.iter().filter(|c| c.detection_steps.is_some()) {
                let d = c.detection_steps.as_ref().expect("filtered to Some");
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} | {}/{} | {} | {} | {} |",
                    c.topology,
                    c.nodes,
                    c.protocol,
                    c.daemon,
                    c.fault,
                    d.count,
                    c.runs,
                    d.p50,
                    d.p95,
                    d.max,
                );
            }
        }
        // Metered campaigns get a second table rather than wider rows:
        // the main table's shape is stable whether metrics ran or not.
        if self.cells.iter().any(|c| c.metrics.is_some()) {
            let _ = writeln!(out, "\n### Metrics (deterministic engine counters)\n");
            let _ = writeln!(
                out,
                "| topology | n | protocol | daemon | guard evals | port evals | dirty pushes | \
                 invalidations | commits | pre-copies | enabled/step p50 | enabled/step p95 |"
            );
            let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|---|---|");
            for c in self.cells.iter().filter(|c| c.metrics.is_some()) {
                let m = c.metrics.as_ref().expect("filtered to Some");
                let enabled = m.histogram(Metric::EnabledPerStep);
                let q = |p: u32| {
                    enabled
                        .quantile(p)
                        .map(|v| v.to_string())
                        .unwrap_or_else(|| "—".into())
                };
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
                    c.topology,
                    c.nodes,
                    c.protocol,
                    c.daemon,
                    m.get(Counter::GuardEvals),
                    m.get(Counter::PortEvals),
                    m.get(Counter::DirtyPushes),
                    m.get(Counter::PortInvalidations),
                    m.get(Counter::TxnCommits),
                    m.get(Counter::StagePrecopies),
                    q(50),
                    q(95),
                );
            }
        }
        if self.cells.iter().any(|c| c.exchange.is_some()) {
            let _ = writeln!(out, "\n### Exchange boundary traffic (sharded executor)\n");
            let _ = writeln!(
                out,
                "| topology | n | protocol | daemon | exchanges | local ports | boundary ports | \
                 ports/exchange | per-shard |"
            );
            let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
            for c in self.cells.iter().filter(|c| c.exchange.is_some()) {
                let b = c.exchange.as_ref().expect("filtered to Some");
                let per_exchange = if b.stats.exchanges == 0 {
                    "—".to_string()
                } else {
                    format!(
                        "{:.1}",
                        b.stats.boundary_ports as f64 / b.stats.exchanges as f64
                    )
                };
                let shards: Vec<String> = b.per_shard.iter().map(|v| v.to_string()).collect();
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
                    c.topology,
                    c.nodes,
                    c.protocol,
                    c.daemon,
                    b.stats.exchanges,
                    b.stats.local_ports,
                    b.stats.boundary_ports,
                    per_exchange,
                    shards.join(" "),
                );
            }
        }
        out
    }
}

fn matrix_json(m: &ScenarioMatrix) -> String {
    let mut w = JsonWriter::new();
    w.open_object();
    w.array_field(
        "topologies",
        m.topologies.iter().map(|t| json_string(&t.to_string())),
    );
    w.array_field("sizes", m.sizes.iter().map(|n| n.to_string()));
    w.array_field(
        "protocols",
        m.protocols.iter().map(|p| json_string(&p.to_string())),
    );
    w.array_field(
        "daemons",
        m.daemons.iter().map(|d| json_string(&d.to_string())),
    );
    w.array_field(
        "faults",
        m.faults.iter().map(|f| json_string(&f.to_string())),
    );
    w.int_field("seed_start", m.seed_start);
    w.int_field("seeds_per_cell", m.seeds_per_cell);
    w.int_field("graph_seed", m.graph_seed);
    w.int_field("max_steps", m.max_steps);
    w.close_object();
    w.finish()
}

fn summary_json(s: &Option<Summary>) -> String {
    match s {
        None => "null".to_string(),
        Some(s) => {
            let mut w = JsonWriter::new();
            w.open_object();
            w.int_field("count", s.count as u64);
            w.int_field("min", s.min);
            w.num_field("mean", s.mean);
            w.int_field("p50", s.p50);
            w.int_field("p95", s.p95);
            w.int_field("max", s.max);
            w.close_object();
            w.finish()
        }
    }
}

fn cell_json(c: &CellReport) -> String {
    let mut w = JsonWriter::new();
    w.open_object();
    w.string_field("topology", &c.topology);
    w.int_field("n", c.n as u64);
    w.int_field("nodes", c.nodes as u64);
    w.int_field("edges", c.edges as u64);
    w.string_field("protocol", &c.protocol);
    w.string_field("daemon", &c.daemon);
    w.string_field("fault", &c.fault);
    w.int_field("runs", c.runs as u64);
    w.int_field("converged", c.converged as u64);
    w.num_field("convergence_rate", c.convergence_rate);
    w.raw_field("moves", &summary_json(&c.moves));
    w.raw_field("steps", &summary_json(&c.steps));
    w.raw_field("rounds", &summary_json(&c.rounds));
    w.int_field("recovered", c.recovered as u64);
    w.raw_field("recovery_moves", &summary_json(&c.recovery_moves));
    w.raw_field("recovery_steps", &summary_json(&c.recovery_steps));
    w.raw_field("recovery_rounds", &summary_json(&c.recovery_rounds));
    // Present only for disconnecting plans, so every pre-existing
    // campaign document stays byte-identical.
    if c.detection_steps.is_some() {
        w.raw_field("detection_steps", &summary_json(&c.detection_steps));
    }
    if let Some(m) = &c.metrics {
        w.raw_field("metrics", &metrics_json(m));
    }
    if let Some(b) = &c.exchange {
        w.raw_field("exchange", &exchange_json(b));
    }
    w.close_object();
    w.finish()
}

/// Renders an [`ExchangeBreakdown`]: aggregate local/boundary/phase
/// totals plus the per-destination-shard boundary counts.
fn exchange_json(b: &ExchangeBreakdown) -> String {
    let mut w = JsonWriter::new();
    w.open_object();
    w.int_field("local_ports", b.stats.local_ports);
    w.int_field("boundary_ports", b.stats.boundary_ports);
    w.int_field("exchanges", b.stats.exchanges);
    w.array_field("per_shard", b.per_shard.iter().map(|v| v.to_string()));
    w.close_object();
    w.finish()
}

/// Renders a [`CounterMeter`]: a `counters` object (every counter, in
/// stable order, even when zero) and a `histograms` object (one entry
/// per per-step metric; empty histograms render as `null`).
fn metrics_json(m: &CounterMeter) -> String {
    let mut w = JsonWriter::new();
    w.open_object();
    let mut c = JsonWriter::new();
    c.open_object();
    for counter in Counter::ALL {
        c.int_field(counter.name(), m.get(counter));
    }
    c.close_object();
    w.raw_field("counters", &c.finish());
    let mut h = JsonWriter::new();
    h.open_object();
    for metric in Metric::ALL {
        h.raw_field(metric.name(), &histogram_json(m.histogram(metric)));
    }
    h.close_object();
    w.raw_field("histograms", &h.finish());
    w.close_object();
    w.finish()
}

/// Renders a log-bucketed histogram's exact moments and quantile
/// estimates (`p50`/`p95` resolve to bucket bounds, not exact ranks).
fn histogram_json(h: &Histogram) -> String {
    if h.is_empty() {
        return "null".to_string();
    }
    let mut w = JsonWriter::new();
    w.open_object();
    w.int_field("count", h.count());
    w.int_field("min", h.min().unwrap_or(0));
    w.num_field("mean", h.mean().unwrap_or(0.0));
    w.int_field("p50", h.quantile(50).unwrap_or(0));
    w.int_field("p95", h.quantile(95).unwrap_or(0));
    w.int_field("max", h.max().unwrap_or(0));
    w.close_object();
    w.finish()
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON document builder (this offline build has no serde).
struct JsonWriter {
    buf: String,
    needs_comma: bool,
}

impl JsonWriter {
    fn new() -> Self {
        JsonWriter {
            buf: String::new(),
            needs_comma: false,
        }
    }

    fn sep(&mut self) {
        if self.needs_comma {
            self.buf.push(',');
        }
        self.needs_comma = true;
    }

    fn open_object(&mut self) {
        self.buf.push('{');
        self.needs_comma = false;
    }

    fn close_object(&mut self) {
        self.buf.push('}');
        self.needs_comma = true;
    }

    fn string_field(&mut self, key: &str, value: &str) {
        self.sep();
        let _ = write!(self.buf, "{}:{}", json_string(key), json_string(value));
    }

    /// Writes a number; non-finite values become `null` (JSON has no NaN).
    fn num_field(&mut self, key: &str, value: f64) {
        self.sep();
        if value.is_finite() {
            let _ = write!(self.buf, "{}:{}", json_string(key), value);
        } else {
            let _ = write!(self.buf, "{}:null", json_string(key));
        }
    }

    /// Writes an unsigned integer exactly (not through `f64`, which would
    /// round values above 2^53 — seeds and step budgets reach there).
    fn int_field(&mut self, key: &str, value: u64) {
        self.sep();
        let _ = write!(self.buf, "{}:{}", json_string(key), value);
    }

    fn raw_field(&mut self, key: &str, raw: &str) {
        self.sep();
        let _ = write!(self.buf, "{}:{}", json_string(key), raw);
    }

    fn array_field(&mut self, key: &str, items: impl Iterator<Item = String>) {
        self.sep();
        let _ = write!(self.buf, "{}:[", json_string(key));
        let mut first = true;
        for item in items {
            if !first {
                self.buf.push(',');
            }
            first = false;
            self.buf.push_str(&item);
        }
        self.buf.push(']');
    }

    fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CellSpec;
    use crate::runner::{Recovery, RunRecord};
    use crate::spec::{DaemonSpec, FaultPlan, ProtocolSpec, TokenSubstrate};
    use sno_graph::GeneratorSpec;

    fn outcome() -> CellOutcome {
        CellOutcome {
            cell: CellSpec {
                topology: GeneratorSpec::Ring,
                n: 8,
                protocol: ProtocolSpec::Dftno(TokenSubstrate::Oracle),
                daemon: DaemonSpec::CentralRandom,
                fault: FaultPlan::AfterConvergence { hits: 1 },
            },
            nodes: 8,
            edges: 8,
            runs: vec![
                RunRecord {
                    seed: 0,
                    converged: true,
                    moves: 10,
                    steps: 10,
                    rounds: 2,
                    recovery: Some(Recovery {
                        converged: true,
                        moves: 4,
                        steps: 4,
                        rounds: 1,
                    }),
                    detection: None,
                },
                RunRecord {
                    seed: 1,
                    converged: true,
                    moves: 30,
                    steps: 28,
                    rounds: 5,
                    recovery: Some(Recovery {
                        converged: false,
                        moves: 99,
                        steps: 99,
                        rounds: 9,
                    }),
                    detection: None,
                },
                RunRecord {
                    seed: 2,
                    converged: false,
                    moves: 1000,
                    steps: 1000,
                    rounds: 100,
                    recovery: None,
                    detection: None,
                },
            ],
            metrics: None,
            exchange: None,
        }
    }

    #[test]
    fn aggregates_cover_converged_runs_only() {
        let r = CellReport::from_outcome(&outcome());
        assert_eq!(r.runs, 3);
        assert_eq!(r.converged, 2);
        let moves = r.moves.unwrap();
        assert_eq!((moves.min, moves.max, moves.count), (10, 30, 2));
        assert_eq!(r.recovered, 1, "failed recoveries are excluded");
        assert_eq!(r.recovery_moves.unwrap().max, 4);
        assert!((r.convergence_rate - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let matrix = crate::ScenarioMatrix::new("json-test")
            .topologies([GeneratorSpec::Ring])
            .sizes([8])
            .protocols([ProtocolSpec::Dftno(TokenSubstrate::Oracle)])
            .daemons([DaemonSpec::CentralRandom])
            .faults([FaultPlan::AfterConvergence { hits: 1 }]);
        let report = CampaignReport::new(&matrix, vec![CellReport::from_outcome(&outcome())]);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for needle in [
            "\"schema\":\"sno-lab/v1\"",
            "\"name\":\"json-test\"",
            "\"topology\":\"ring\"",
            "\"protocol\":\"dftno/oracle-token\"",
            "\"p95\":30",
            "\"recovery_moves\":{",
            "\"total_runs\":3",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Balanced braces/brackets (no string in this document contains
        // either, so plain counting is a fair well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced objects"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "balanced arrays"
        );
    }

    #[test]
    fn empty_summaries_render_as_null() {
        let mut o = outcome();
        for r in &mut o.runs {
            r.converged = false;
            r.recovery = None;
        }
        let cell = CellReport::from_outcome(&o);
        assert_eq!(cell.moves, None);
        assert!(summary_json(&cell.moves) == "null");
    }

    #[test]
    fn markdown_renders_a_row_per_cell() {
        let matrix = crate::ScenarioMatrix::new("md")
            .topologies([GeneratorSpec::Ring])
            .sizes([8])
            .protocols([ProtocolSpec::Dftno(TokenSubstrate::Oracle)])
            .daemons([DaemonSpec::CentralRandom]);
        let report = CampaignReport::new(&matrix, vec![CellReport::from_outcome(&outcome())]);
        let md = report.to_markdown();
        assert!(md.contains("| ring | 8 | dftno/oracle-token |"), "{md}");
        assert!(md.lines().any(|l| l.starts_with("|---")));
    }

    #[test]
    fn large_integers_survive_json_exactly() {
        // Seeds and budgets above 2^53 must not round through f64.
        let matrix = crate::ScenarioMatrix::new("big-seed")
            .topologies([GeneratorSpec::Ring])
            .sizes([8])
            .protocols([ProtocolSpec::Dftno(TokenSubstrate::Oracle)])
            .daemons([DaemonSpec::CentralRandom])
            .seeds(0x9E37_79B9_7F4A_7C15, 1);
        let report = CampaignReport::new(&matrix, vec![]);
        let json = report.to_json();
        assert!(
            json.contains("\"seed_start\":11400714819323198485"),
            "{json}"
        );
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
