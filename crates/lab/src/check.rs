//! `sno-lab check`: command-line model checking over the repo's
//! enumerable protocol stacks.
//!
//! The `sno-check` crate is generic in the protocol; this module is the
//! **registry** that closes the loop for the CLI: each stack name pairs
//! an [`Enumerable`] protocol constructor with its legitimacy predicate
//! (the `L` of Definition 2.1.2), so a certificate run is one command:
//!
//! ```sh
//! sno-lab check --stack hop --topology path --size 7 --liveness unfair
//! sno-lab check --suite --threads 4 --shards 8 --json suite.json
//! ```
//!
//! The **certificate suite** ([`cert_suite`]) is the bounded CI gate:
//! cells covering every property kind the checker knows — closure,
//! unfair and round-robin convergence, a budgeted corruption envelope,
//! a disconnecting [`TopologyEvent`] world chain, and symmetry-reduced
//! regimes — each with its expected verdicts pinned. The suite JSON ([`suite_json`]) is
//! deterministic, so CI `cmp`s the artifact byte-for-byte across fleet
//! thread and shard counts. States/second is printed to stdout only;
//! no wall-clock value ever reaches the JSON.

use std::time::Instant;

use sno_check::{check, Certificate, CheckOptions, CheckSpec, FaultClass, Liveness, Seeds};
use sno_engine::dijkstra::DijkstraRing;
use sno_engine::examples::{hop_distance_legit, HopDistance};
use sno_engine::{Enumerable, Network};
use sno_fleet::WorkerPool;
use sno_graph::{GeneratorSpec, NodeId, RootedTree, TopologyEvent};

/// The stack names [`run_cell`] can instantiate.
pub const STACKS: [&str; 8] = [
    "hop",
    "bfs-tree",
    "cd-token",
    "fixed-token",
    "fairness-witness",
    "dcd",
    "dijkstra-ring",
    "dftno",
];

/// One protocol × topology × regime cell to check.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckCell {
    /// Stack name (one of [`STACKS`]).
    pub stack: String,
    /// Topology family.
    pub topology: GeneratorSpec,
    /// Target node count.
    pub size: usize,
    /// Topology-instantiation seed.
    pub graph_seed: u64,
    /// Where exploration starts.
    pub seeds: Seeds,
    /// Which liveness analyses to run.
    pub liveness: Liveness,
    /// Fault classes explored as extra transitions.
    pub faults: Vec<FaultClass>,
    /// Quotient the search by the protocol-admitted automorphism group.
    pub symmetry: bool,
    /// Per-cell override of the configuration-count limit (the composed
    /// `dftno` space dwarfs the default; its seed list keeps the
    /// *reachable* set bounded).
    pub limit: Option<u64>,
}

impl CheckCell {
    fn new(stack: &str, topology: GeneratorSpec, size: usize) -> Self {
        CheckCell {
            stack: stack.into(),
            topology,
            size,
            graph_seed: 0,
            seeds: Seeds::AllConfigs,
            liveness: Liveness::Both,
            faults: Vec::new(),
            symmetry: false,
            limit: None,
        }
    }
}

/// Parses a fault-class name: `corrupt`, `crash`, `link-fail:U-V`,
/// `link-add:U-V` (node indices against the built topology).
///
/// # Errors
///
/// Returns a human-readable message on unknown classes or bad endpoints.
pub fn parse_fault(s: &str) -> Result<FaultClass, String> {
    match s {
        "corrupt" => return Ok(FaultClass::Corrupt),
        "crash" => return Ok(FaultClass::Crash),
        _ => {}
    }
    let (kind, rest) = s
        .split_once(':')
        .ok_or_else(|| format!("unknown fault class `{s}`"))?;
    let (u, v) = rest
        .split_once('-')
        .ok_or_else(|| format!("bad fault endpoints `{rest}` (want U-V)"))?;
    let u: usize = u.parse().map_err(|_| format!("bad node index `{u}`"))?;
    let v: usize = v.parse().map_err(|_| format!("bad node index `{v}`"))?;
    let (u, v) = (NodeId::new(u), NodeId::new(v));
    match kind {
        "link-fail" => Ok(FaultClass::Topology(TopologyEvent::LinkFail { u, v })),
        "link-add" => Ok(FaultClass::Topology(TopologyEvent::LinkAdd { u, v })),
        other => Err(format!("unknown fault class `{other}`")),
    }
}

/// Parses a seed-regime name (`all`, `legitimate`, `initial`).
///
/// # Errors
///
/// Returns a message naming the valid regimes otherwise.
pub fn parse_seeds(s: &str) -> Result<Seeds, String> {
    match s {
        "all" => Ok(Seeds::AllConfigs),
        "legitimate" => Ok(Seeds::Legitimate),
        "initial" => Ok(Seeds::Initial),
        other => Err(format!(
            "unknown start regime `{other}` (expected all, legitimate, or initial)"
        )),
    }
}

/// Parses a liveness selection (`none`, `unfair`, `round-robin`, `both`).
///
/// # Errors
///
/// Returns a message naming the valid selections otherwise.
pub fn parse_liveness(s: &str) -> Result<Liveness, String> {
    match s {
        "none" => Ok(Liveness::None),
        "unfair" => Ok(Liveness::Unfair),
        "round-robin" => Ok(Liveness::RoundRobin),
        "both" => Ok(Liveness::Both),
        other => Err(format!(
            "unknown liveness `{other}` (expected none, unfair, round-robin, or both)"
        )),
    }
}

/// Stable display name of a liveness selection.
pub fn liveness_name(l: Liveness) -> &'static str {
    match l {
        Liveness::None => "none",
        Liveness::Unfair => "unfair",
        Liveness::RoundRobin => "round-robin",
        Liveness::Both => "both",
    }
}

fn run_with<P: Enumerable>(
    net: &Network,
    protocol: &P,
    legit: sno_check::PredFn<'_, P>,
    cell: &CheckCell,
    options: &CheckOptions,
    pool: &WorkerPool,
    seed_list: Option<Vec<u64>>,
) -> Result<Certificate, String> {
    let spec = CheckSpec {
        protocol: cell.stack.clone(),
        topology: format!("{}:{}", cell.topology, cell.size),
        legit,
        invariants: Vec::new(),
        closure: true,
        liveness: cell.liveness,
        seeds: cell.seeds,
        seed_list,
        faults: cell.faults.clone(),
    };
    check(net, protocol, &spec, options, pool).map_err(|e| e.to_string())
}

/// Computes the forward-closed legitimate cycle of the composed `DFTNO`
/// stack: converge from the protocol's initial configuration under a
/// round-robin schedule, then close the converged configuration under
/// program moves (legitimate configurations are sequential, so this is
/// the entire circulation cycle). The sorted indices both seed the
/// checker's corruption-from-`L` envelope (no scan of the
/// astronomically large product space) and *define* `L` extensionally:
/// the golden-orientation predicate alone is **not** closed, because a
/// corrupted `Max` still satisfies it yet mislabels `η` on the next
/// `Forward` — the cycle set is the largest invariant inside it.
fn dftno_legit_cycle(
    net: &Network,
    proto: &sno_core::Dftno<sno_token::DfsTokenCirculation>,
    limit: u64,
) -> Result<(sno_check::StateSpace<sno_core::dftno::DftnoState<sno_token::dftc::DftcState>>, Vec<u64>), String> {
    use sno_engine::Protocol as _;
    type S = sno_core::dftno::DftnoState<sno_token::dftc::DftcState>;
    let space: sno_check::StateSpace<S> =
        sno_check::StateSpace::new(net, proto, limit).map_err(|e| e.to_string())?;
    let legit = |c: &[S]| {
        if !sno_core::dftno::dftno_golden(net, c) {
            return false;
        }
        let toks: Vec<sno_token::dftc::DftcState> =
            c.iter().map(|s| s.token.clone()).collect();
        sno_token::dftc::dftc_legit(net, &toks)
    };
    let init: Vec<S> = net
        .nodes()
        .map(|p| proto.initial_state(net.ctx(p)))
        .collect();
    let mut idx = space
        .encode(&init)
        .ok_or("initial configuration is not enumerated")?;
    let n = net.node_count();
    let mut rr = 0usize;
    let mut steps = 0u32;
    while !legit(&space.decode(idx)) {
        steps += 1;
        if steps > 200_000 {
            return Err("DFTNO did not converge within the step cap".into());
        }
        let moved = (0..n).find_map(|off| {
            let node = ((rr + off) % n) as u32;
            space
                .apply_move(net, proto, idx, node, 0)
                .map(|next| (node, next))
        });
        let Some((node, next)) = moved else {
            return Err("DFTNO deadlocked before reaching L".into());
        };
        idx = next;
        rr = (node as usize + 1) % n;
    }
    let mut seen = std::collections::BTreeSet::new();
    seen.insert(idx);
    let mut stack = vec![idx];
    let mut actions = Vec::new();
    let mut succs = Vec::new();
    while let Some(cur) = stack.pop() {
        let cfg = space.decode(cur);
        succs.clear();
        space.successors_into(net, proto, cur, &cfg, &mut actions, &mut succs);
        for s in &succs {
            if seen.contains(&s.next) {
                continue;
            }
            if !legit(&space.decode(s.next)) {
                return Err("legitimate set is not closed under program moves".into());
            }
            seen.insert(s.next);
            stack.push(s.next);
        }
        if seen.len() > 100_000 {
            return Err("legitimate cycle exceeds the seed cap".into());
        }
    }
    Ok((space, seen.into_iter().collect()))
}

/// Instantiates `cell`'s stack and runs the checker.
///
/// # Errors
///
/// Returns a message on unknown stacks, fault endpoints outside the
/// topology, stack/topology mismatches (`dijkstra-ring` needs `ring`),
/// or a state space over `options.limit`.
pub fn run_cell(
    cell: &CheckCell,
    options: &CheckOptions,
    pool: &WorkerPool,
) -> Result<Certificate, String> {
    let mut options = *options;
    options.symmetry = options.symmetry || cell.symmetry;
    if let Some(l) = cell.limit {
        options.limit = l;
    }
    let options = &options;
    let g = cell.topology.build(cell.size, cell.graph_seed);
    let n = g.node_count();
    for f in &cell.faults {
        if let FaultClass::Topology(
            TopologyEvent::LinkFail { u, v } | TopologyEvent::LinkAdd { u, v },
        ) = f
        {
            if u.index() >= n || v.index() >= n {
                return Err(format!(
                    "fault `{f}` references a node outside the {n}-node topology"
                ));
            }
        }
    }
    let root = NodeId::new(0);
    match cell.stack.as_str() {
        "hop" => {
            let net = Network::new(g, root);
            run_with(&net, &HopDistance, &hop_distance_legit, cell, options, pool, None)
        }
        "bfs-tree" => {
            let net = Network::new(g, root);
            run_with(
                &net,
                &sno_tree::BfsSpanningTree,
                &sno_tree::bfs_legit,
                cell,
                options,
                pool,
                None,
            )
        }
        "cd-token" => {
            let net = Network::new(g, root);
            run_with(
                &net,
                &sno_token::CollinDolev,
                &sno_token::cd::cd_legit,
                cell,
                options,
                pool,
                None,
            )
        }
        "fairness-witness" => {
            let net = Network::new(g, root);
            run_with(
                &net,
                &sno_engine::examples::FairnessWitness,
                &sno_engine::examples::fairness_witness_legit,
                cell,
                options,
                pool,
                None,
            )
        }
        "fixed-token" => {
            let dfs = sno_graph::traverse::first_dfs(&g, root);
            let tree = RootedTree::from_parents(&g, root, &dfs.parent)
                .map_err(|e| format!("fixed-token needs a spanning tree: {e:?}"))?;
            let proto = sno_token::FixedTreeToken::from_graph(&g, &tree);
            let net = Network::new(g, root);
            let legit = |_: &Network, c: &[sno_token::tok::TokState]| proto.is_legitimate(c);
            run_with(&net, &proto, &legit, cell, options, pool, None)
        }
        "dcd" => {
            // No joins in the checked world chain, so the tight bound:
            // dist saturates at n = "disconnected".
            let net = Network::with_bound(g, root, n);
            run_with(
                &net,
                &sno_core::dcd::Dcd,
                &sno_core::dcd::dcd_legit,
                cell,
                options,
                pool,
                None,
            )
        }
        "dijkstra-ring" => {
            if cell.topology != GeneratorSpec::Ring {
                return Err("the dijkstra-ring stack needs `--topology ring`".into());
            }
            let net = Network::new(g, root);
            let proto = DijkstraRing::on_ring(&net, net.node_count() as u32);
            let legit = |net: &Network, c: &[u32]| proto.count_privileges(net, c) == 1;
            run_with(&net, &proto, &legit, cell, options, pool, None)
        }
        "dftno" => {
            // The full composed stack: orientation over the
            // self-stabilizing DFS token circulation. Its product space
            // is far beyond exhaustive seeding, so the cell seeds from
            // the explicit legitimate cycle (corruption-from-`L`), and
            // `L` is that cycle — see `dftno_legit_cycle` for why the
            // intensional golden predicate is not closed.
            let net = Network::new(g, root);
            let proto = sno_core::Dftno::new(sno_token::DfsTokenCirculation);
            let (space, seeds) = dftno_legit_cycle(&net, &proto, options.limit)?;
            let seed_list = seeds.clone();
            let legit = move |_: &Network,
                              c: &[sno_core::dftno::DftnoState<sno_token::dftc::DftcState>]| {
                space
                    .encode(c)
                    .is_some_and(|i| seeds.binary_search(&i).is_ok())
            };
            run_with(&net, &proto, &legit, cell, options, pool, Some(seed_list))
        }
        other => Err(format!(
            "unknown stack `{other}` (expected one of {})",
            STACKS.join(", ")
        )),
    }
}

/// A certificate-suite cell with its expected verdicts, in certificate
/// property order (closure, then unfair, then round-robin as enabled).
#[derive(Debug, Clone)]
pub struct SuiteCell {
    /// The cell to check.
    pub cell: CheckCell,
    /// Expected `holds` per property.
    pub expect: &'static [bool],
}

/// The bounded CI certificate suite.
///
/// One cell per property regime the checker supports:
///
/// 1. `hop` / `path:4` — the baseline: closure plus both convergences.
/// 2. `bfs-tree` / `ring:3` — a cyclic topology (E11's triangle).
/// 3. `cd-token` / `path:3` — the Collin–Dolev DFS words.
/// 4. `fixed-token` / `star:4` — the never-silent token wave: both
///    convergences hold on the star (the wave merges tokens under any
///    central schedule here), certifying more than the legacy checker's
///    round-robin-only E11 verdict.
/// 5. `fairness-witness` / `star:3` — the **fairness split**: closure
///    holds, the unfair daemon starves a latch behind the root spinner
///    (expected `fail`, with a lasso counterexample in the certificate),
///    and the weakly fair round-robin daemon converges — exactly the
///    daemon distinction the paper draws between `DFTNO` and `STNO`.
/// 6. `dcd` / `path:4` + `link-fail:2-3` — a **disconnecting** topology
///    world chain; legitimacy is world-aware (severed processors must
///    saturate at the sentinel).
/// 7. `hop` / `star:5` + `corrupt` from the legitimate set — the
///    budgeted fault-reachable envelope.
/// 8. `hop` / `star:6` with **symmetry reduction** — the leaf group
///    `S_5` (order 120) quotients the breadth-first search; verdicts
///    must match the unquotiented regime cell for cell.
/// 9. `hop` / `ring:5` with symmetry reduction — the root-fixing ring
///    group is just the reflection (order 2), the information-theoretic
///    ceiling on a ring; kept as the honest small-group cell.
/// 10. `dftno` / `path:3` + `corrupt` from the legitimate cycle
///     (release builds only) — the full composed stack of Algorithm
///     3.1.1 over the self-stabilizing token circulation, seeded by the
///     explicit legitimate cycle because its product space (~10^11
///     configurations) cannot be scanned; `L` is that cycle
///     (extensionally — see [`dftno_legit_cycle`]'s closure caveat) and
///     the pinned verdict is its closure/containment under the
///     corruption envelope.
pub fn cert_suite() -> Vec<SuiteCell> {
    let mut dcd = CheckCell::new("dcd", GeneratorSpec::Path, 4);
    dcd.liveness = Liveness::Unfair;
    dcd.faults = vec![FaultClass::Topology(TopologyEvent::LinkFail {
        u: NodeId::new(2),
        v: NodeId::new(3),
    })];
    let mut envelope = CheckCell::new("hop", GeneratorSpec::Star, 5);
    envelope.seeds = Seeds::Legitimate;
    envelope.liveness = Liveness::Unfair;
    envelope.faults = vec![FaultClass::Corrupt];
    let mut cells = vec![
        SuiteCell {
            cell: CheckCell::new("hop", GeneratorSpec::Path, 4),
            expect: &[true, true, true],
        },
        SuiteCell {
            cell: CheckCell::new("bfs-tree", GeneratorSpec::Ring, 3),
            expect: &[true, true, true],
        },
        SuiteCell {
            cell: CheckCell::new("cd-token", GeneratorSpec::Path, 3),
            expect: &[true, true, true],
        },
        SuiteCell {
            cell: CheckCell::new("fixed-token", GeneratorSpec::Star, 4),
            expect: &[true, true, true],
        },
        SuiteCell {
            cell: CheckCell::new("fairness-witness", GeneratorSpec::Star, 3),
            expect: &[true, false, true],
        },
        SuiteCell {
            cell: dcd,
            expect: &[true, true],
        },
        SuiteCell {
            cell: envelope,
            expect: &[true, true],
        },
    ];
    let mut sym_star = CheckCell::new("hop", GeneratorSpec::Star, 6);
    sym_star.symmetry = true;
    cells.push(SuiteCell {
        cell: sym_star,
        expect: &[true, true, true],
    });
    let mut sym_ring = CheckCell::new("hop", GeneratorSpec::Ring, 5);
    sym_ring.symmetry = true;
    cells.push(SuiteCell {
        cell: sym_ring,
        expect: &[true, true, true],
    });
    if !cfg!(debug_assertions) {
        // The composed-stack envelope explores millions of states; only
        // release builds (the CI modelcheck job, `--suite` runs of the
        // installed binary) carry it.
        let mut dftno = CheckCell::new("dftno", GeneratorSpec::Path, 3);
        dftno.seeds = Seeds::Legitimate;
        dftno.liveness = Liveness::None;
        dftno.faults = vec![FaultClass::Corrupt];
        dftno.limit = Some(1 << 39);
        cells.push(SuiteCell {
            cell: dftno,
            expect: &[true],
        });
    }
    cells
}

/// Renders a deterministic `sno-check-suite/v1` JSON document embedding
/// each certificate verbatim — the CI `cmp` artifact.
pub fn suite_json(certs: &[Certificate]) -> String {
    let mut s = String::with_capacity(4096);
    s.push_str("{\n\"schema\": \"sno-check-suite/v1\",\n\"certificates\": [\n");
    for (i, c) in certs.iter().enumerate() {
        s.push_str(c.to_json().trim_end());
        if i + 1 < certs.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("]\n}\n");
    s
}

/// Parsed arguments of `sno-lab check`.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckArgs {
    /// Run the pinned [`cert_suite`] instead of a single cell.
    pub suite: bool,
    /// The single cell (`None` iff `suite`).
    pub cell: Option<CheckCell>,
    /// Fleet threads (`None` = available parallelism).
    pub threads: Option<usize>,
    /// Checker tuning (`threads` is overwritten at run time).
    pub options: CheckOptions,
    /// `--symmetry on|off`: force symmetry reduction on or off for every
    /// cell (overriding the per-cell suite defaults); `None` keeps them.
    pub symmetry: Option<bool>,
    /// Write the certificate (or suite document) here.
    pub json: Option<String>,
}

fn render_cell_header(cell: &CheckCell, cert: &Certificate, secs: f64) -> String {
    let faults = if cert.faults.is_empty() {
        String::new()
    } else {
        format!(", faults {}", cert.faults.join("+"))
    };
    let rate = if secs > 0.0 {
        (cert.states as f64 / secs) as u64
    } else {
        0
    };
    let sym = if cert.symmetry_enabled {
        format!(
            ", symmetry |G|={} ({} raw -> {} orbits)",
            cert.group_orders
                .iter()
                .map(|g| g.to_string())
                .collect::<Vec<_>>()
                .join("+"),
            cert.raw_states,
            cert.states
        )
    } else {
        String::new()
    };
    format!(
        "{} on {} [{}, {}{}]: {} states, {} transitions ({} fault), \
         {} legitimate, diameter {}{} — {} states/s",
        cell.stack,
        cert.topology,
        cert.seeds,
        liveness_name(cell.liveness),
        faults,
        cert.states,
        cert.transitions,
        cert.fault_transitions,
        cert.legitimate,
        cert.diameter,
        sym,
        rate
    )
}

fn render_properties(cert: &Certificate) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for p in &cert.properties {
        let _ = writeln!(
            out,
            "  {:<24} ({:<11}) {}",
            p.name,
            p.daemon,
            if p.holds { "pass" } else { "FAIL" }
        );
    }
    out
}

/// Runs a parsed `sno-lab check` invocation, printing per-cell verdict
/// blocks (and a states/second telemetry figure — stdout only, never
/// JSON). Returns the process exit code: `0` when every verdict matches
/// (suite) or every property holds (single cell), `1` otherwise.
pub fn run_check_command(args: &CheckArgs) -> i32 {
    let threads = args.threads.unwrap_or_else(crate::fleet::default_threads);
    let pool = WorkerPool::new(threads);
    let mut options = args.options;
    options.threads = threads;
    println!(
        "sno-check | threads: {} | shards: {} | budget: {}",
        threads, options.shards, options.fault_budget
    );
    if args.suite {
        let mut certs = Vec::new();
        let mut mismatches = Vec::new();
        for sc in cert_suite() {
            let mut cell = sc.cell.clone();
            if let Some(sym) = args.symmetry {
                cell.symmetry = sym;
            }
            let started = Instant::now();
            let cert = match run_cell(&cell, &options, &pool) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {}: {e}", cell.stack);
                    return 1;
                }
            };
            println!(
                "{}",
                render_cell_header(&cell, &cert, started.elapsed().as_secs_f64())
            );
            print!("{}", render_properties(&cert));
            let got: Vec<bool> = cert.properties.iter().map(|p| p.holds).collect();
            if got != sc.expect {
                mismatches.push(format!(
                    "{} on {}: expected verdicts {:?}, got {:?}",
                    cell.stack, cert.topology, sc.expect, got
                ));
            }
            certs.push(cert);
        }
        if let Some(path) = &args.json {
            if let Err(e) = std::fs::write(path, suite_json(&certs)) {
                eprintln!("error: cannot write suite JSON to `{path}`: {e}");
                return 1;
            }
            println!("suite certificates written to {path}");
        }
        if mismatches.is_empty() {
            println!("cert-suite: {} cells, all verdicts as pinned", certs.len());
            0
        } else {
            for m in &mismatches {
                eprintln!("error: verdict drift: {m}");
            }
            1
        }
    } else {
        let mut cell = args
            .cell
            .clone()
            .expect("non-suite invocations carry a cell");
        if let Some(sym) = args.symmetry {
            cell.symmetry = sym;
        }
        let cell = &cell;
        let started = Instant::now();
        let cert = match run_cell(cell, &options, &pool) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        };
        println!(
            "{}",
            render_cell_header(cell, &cert, started.elapsed().as_secs_f64())
        );
        print!("{}", render_properties(&cert));
        if let Some(path) = &args.json {
            if let Err(e) = std::fs::write(path, cert.to_json()) {
                eprintln!("error: cannot write certificate to `{path}`: {e}");
                return 1;
            }
            println!("certificate written to {path}");
        }
        i32::from(!cert.all_hold())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(threads: usize, shards: usize) -> CheckOptions {
        CheckOptions {
            threads,
            shards,
            ..CheckOptions::default()
        }
    }

    #[test]
    fn fault_grammar_round_trips() {
        assert_eq!(parse_fault("corrupt").unwrap(), FaultClass::Corrupt);
        assert_eq!(parse_fault("crash").unwrap(), FaultClass::Crash);
        let f = parse_fault("link-fail:2-3").unwrap();
        assert_eq!(f.to_string(), "link-fail:2-3");
        let f = parse_fault("link-add:0-4").unwrap();
        assert_eq!(f.to_string(), "link-add:0-4");
        assert!(parse_fault("meteor").is_err());
        assert!(parse_fault("link-fail:2").is_err());
        assert!(parse_fault("link-fail:a-b").is_err());
    }

    #[test]
    fn cell_errors_are_reported_not_panicked() {
        let pool = WorkerPool::new(1);
        let mut cell = CheckCell::new("warp", GeneratorSpec::Path, 3);
        let e = run_cell(&cell, &opts(1, 1), &pool).unwrap_err();
        assert!(e.contains("unknown stack"), "{e}");
        cell.stack = "dijkstra-ring".into();
        let e = run_cell(&cell, &opts(1, 1), &pool).unwrap_err();
        assert!(e.contains("ring"), "{e}");
        cell.stack = "hop".into();
        cell.faults = vec![parse_fault("link-fail:2-9").unwrap()];
        let e = run_cell(&cell, &opts(1, 1), &pool).unwrap_err();
        assert!(e.contains("outside"), "{e}");
    }

    #[test]
    fn certificates_are_byte_identical_across_threads_and_shards() {
        let cell = CheckCell::new("hop", GeneratorSpec::Path, 3);
        let pool1 = WorkerPool::new(1);
        let pool4 = WorkerPool::new(4);
        let base = run_cell(&cell, &opts(1, 1), &pool1).unwrap().to_json();
        for (pool, shards) in [(&pool1, 5), (&pool4, 1), (&pool4, 8)] {
            let cert = run_cell(&cell, &opts(4, shards), pool).unwrap();
            assert_eq!(cert.to_json(), base, "shards={shards}");
        }
    }

    #[test]
    fn cert_suite_verdicts_match_their_pins() {
        let pool = WorkerPool::new(4);
        let mut certs = Vec::new();
        for sc in cert_suite() {
            let cert = run_cell(&sc.cell, &opts(4, 4), &pool)
                .unwrap_or_else(|e| panic!("{}: {e}", sc.cell.stack));
            let got: Vec<bool> = cert.properties.iter().map(|p| p.holds).collect();
            assert_eq!(got, sc.expect, "{} on {}", sc.cell.stack, cert.topology);
            certs.push(cert);
        }
        // The fairness split is present: one liveness property fails
        // under the unfair daemon while round-robin passes on the same
        // cell, and the failing one carries a replayable lasso.
        let split = &certs[4];
        let unfair = split
            .properties
            .iter()
            .find(|p| p.daemon == "unfair")
            .unwrap();
        assert!(!unfair.holds);
        let cx = unfair.counterexample.as_ref().unwrap();
        assert!(cx.deadlock || !cx.cycle.is_empty());
        assert!(split
            .properties
            .iter()
            .any(|p| p.daemon == "round-robin" && p.holds));
        // The disconnecting world chain is present and explored.
        assert_eq!(certs[5].worlds.len(), 2);
        assert!(certs[5].fault_transitions > 0);
        // The symmetry-reduced cells really quotient: the star's leaf
        // group has order 120, the ring's reflection group order 2, and
        // the orbit-expanded raw count matches the unquotiented space.
        let star = &certs[7];
        assert!(star.symmetry_enabled);
        assert_eq!(star.group_orders, vec![120]);
        assert_eq!(star.raw_states, 117_649);
        assert!(star.raw_states >= 5 * star.states, "≥5x reduction on star");
        let ring = &certs[8];
        assert_eq!(ring.group_orders, vec![2]);
        assert_eq!(ring.raw_states, 7_776);
        // The suite document embeds every certificate and is a pure
        // function of the verdicts.
        let doc = suite_json(&certs);
        assert!(doc.starts_with("{\n\"schema\": \"sno-check-suite/v1\""));
        assert_eq!(
            doc.matches("\"schema\": \"sno-check/v1\"").count(),
            cert_suite().len()
        );
        assert_eq!(doc, suite_json(&certs));
    }

    #[test]
    fn dftno_seed_cycle_is_legitimate_and_closed() {
        use sno_engine::Protocol as _;
        let g = GeneratorSpec::Path.build(3, 0);
        let net = Network::new(g, NodeId::new(0));
        let proto = sno_core::Dftno::new(sno_token::DfsTokenCirculation);
        let (space, seeds) = dftno_legit_cycle(&net, &proto, 1 << 39).unwrap();
        assert!(!seeds.is_empty());
        assert!(seeds.windows(2).all(|w| w[0] < w[1]), "sorted and deduped");
        // Every seed is a golden-oriented legitimate configuration, and
        // the protocol's initial configuration is NOT one of them (the
        // cycle is reached, not assumed).
        for &s in &seeds {
            let cfg = space.decode(s);
            assert!(sno_core::dftno::dftno_golden(&net, &cfg));
        }
        let init: Vec<_> = net
            .nodes()
            .map(|p| proto.initial_state(net.ctx(p)))
            .collect();
        let init = space.encode(&init).unwrap();
        assert!(seeds.binary_search(&init).is_err());
    }

    /// Satellite property: on random small instances of every CLI stack
    /// and topology, the quotiented run returns the same verdicts as the
    /// unquotiented one, explores no more states, and its orbit-expanded
    /// raw count equals the raw run's state count exactly.
    fn sym_cell(stack: &str, pick: usize) -> CheckCell {
        use GeneratorSpec::{Path, Ring, Star};
        let (topo, size) = match stack {
            "hop" => [(Path, 4), (Ring, 4), (Star, 5)][pick % 3],
            "bfs-tree" => [(Ring, 3), (Path, 3), (Star, 4)][pick % 3],
            "cd-token" => [(Path, 3), (Ring, 3), (Star, 3)][pick % 3],
            "fixed-token" => [(Path, 3), (Star, 3), (Ring, 3)][pick % 3],
            "fairness-witness" => [(Star, 4), (Ring, 5), (Path, 4)][pick % 3],
            "dcd" => [(Path, 3), (Ring, 4), (Star, 4)][pick % 3],
            "dijkstra-ring" => [(Ring, 3), (Ring, 4), (Ring, 5)][pick % 3],
            other => panic!("no symmetry case for {other}"),
        };
        CheckCell::new(stack, topo, size)
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

        #[test]
        fn quotiented_runs_agree_with_raw_runs(stack_i in 0usize..7, pick in 0usize..3) {
            use proptest::prelude::prop_assert_eq;
            let pool = WorkerPool::new(2);
            let mut cell = sym_cell(STACKS[stack_i], pick);
            let raw = run_cell(&cell, &opts(2, 3), &pool).unwrap();
            cell.symmetry = true;
            let sym = run_cell(&cell, &opts(2, 3), &pool).unwrap();
            prop_assert_eq!(sym.raw_states, raw.states);
            assert!(sym.states <= raw.states, "quotient never exceeds raw");
            prop_assert_eq!(sym.properties.len(), raw.properties.len());
            for (a, b) in sym.properties.iter().zip(raw.properties.iter()) {
                prop_assert_eq!(
                    (a.holds, &a.name, a.daemon),
                    (b.holds, &b.name, b.daemon)
                );
            }
            for (ws, wr) in sym.worlds.iter().zip(raw.worlds.iter()) {
                prop_assert_eq!(ws.reachable, wr.reachable);
            }
        }
    }
}
