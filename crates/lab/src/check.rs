//! `sno-lab check`: command-line model checking over the repo's
//! enumerable protocol stacks.
//!
//! The `sno-check` crate is generic in the protocol; this module is the
//! **registry** that closes the loop for the CLI: each stack name pairs
//! an [`Enumerable`] protocol constructor with its legitimacy predicate
//! (the `L` of Definition 2.1.2), so a certificate run is one command:
//!
//! ```sh
//! sno-lab check --stack hop --topology path --size 7 --liveness unfair
//! sno-lab check --suite --threads 4 --shards 8 --json suite.json
//! ```
//!
//! The **certificate suite** ([`cert_suite`]) is the bounded CI gate:
//! seven cells covering every property kind the checker knows — closure,
//! unfair and round-robin convergence, a budgeted corruption envelope,
//! and a disconnecting [`TopologyEvent`] world chain — each with its
//! expected verdicts pinned. The suite JSON ([`suite_json`]) is
//! deterministic, so CI `cmp`s the artifact byte-for-byte across fleet
//! thread and shard counts. States/second is printed to stdout only;
//! no wall-clock value ever reaches the JSON.

use std::time::Instant;

use sno_check::{check, Certificate, CheckOptions, CheckSpec, FaultClass, Liveness, Seeds};
use sno_engine::dijkstra::DijkstraRing;
use sno_engine::examples::{hop_distance_legit, HopDistance};
use sno_engine::{Enumerable, Network};
use sno_fleet::WorkerPool;
use sno_graph::{GeneratorSpec, NodeId, RootedTree, TopologyEvent};

/// The stack names [`run_cell`] can instantiate.
pub const STACKS: [&str; 7] = [
    "hop",
    "bfs-tree",
    "cd-token",
    "fixed-token",
    "fairness-witness",
    "dcd",
    "dijkstra-ring",
];

/// One protocol × topology × regime cell to check.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckCell {
    /// Stack name (one of [`STACKS`]).
    pub stack: String,
    /// Topology family.
    pub topology: GeneratorSpec,
    /// Target node count.
    pub size: usize,
    /// Topology-instantiation seed.
    pub graph_seed: u64,
    /// Where exploration starts.
    pub seeds: Seeds,
    /// Which liveness analyses to run.
    pub liveness: Liveness,
    /// Fault classes explored as extra transitions.
    pub faults: Vec<FaultClass>,
}

impl CheckCell {
    fn new(stack: &str, topology: GeneratorSpec, size: usize) -> Self {
        CheckCell {
            stack: stack.into(),
            topology,
            size,
            graph_seed: 0,
            seeds: Seeds::AllConfigs,
            liveness: Liveness::Both,
            faults: Vec::new(),
        }
    }
}

/// Parses a fault-class name: `corrupt`, `crash`, `link-fail:U-V`,
/// `link-add:U-V` (node indices against the built topology).
///
/// # Errors
///
/// Returns a human-readable message on unknown classes or bad endpoints.
pub fn parse_fault(s: &str) -> Result<FaultClass, String> {
    match s {
        "corrupt" => return Ok(FaultClass::Corrupt),
        "crash" => return Ok(FaultClass::Crash),
        _ => {}
    }
    let (kind, rest) = s
        .split_once(':')
        .ok_or_else(|| format!("unknown fault class `{s}`"))?;
    let (u, v) = rest
        .split_once('-')
        .ok_or_else(|| format!("bad fault endpoints `{rest}` (want U-V)"))?;
    let u: usize = u.parse().map_err(|_| format!("bad node index `{u}`"))?;
    let v: usize = v.parse().map_err(|_| format!("bad node index `{v}`"))?;
    let (u, v) = (NodeId::new(u), NodeId::new(v));
    match kind {
        "link-fail" => Ok(FaultClass::Topology(TopologyEvent::LinkFail { u, v })),
        "link-add" => Ok(FaultClass::Topology(TopologyEvent::LinkAdd { u, v })),
        other => Err(format!("unknown fault class `{other}`")),
    }
}

/// Parses a seed-regime name (`all`, `legitimate`, `initial`).
///
/// # Errors
///
/// Returns a message naming the valid regimes otherwise.
pub fn parse_seeds(s: &str) -> Result<Seeds, String> {
    match s {
        "all" => Ok(Seeds::AllConfigs),
        "legitimate" => Ok(Seeds::Legitimate),
        "initial" => Ok(Seeds::Initial),
        other => Err(format!(
            "unknown start regime `{other}` (expected all, legitimate, or initial)"
        )),
    }
}

/// Parses a liveness selection (`none`, `unfair`, `round-robin`, `both`).
///
/// # Errors
///
/// Returns a message naming the valid selections otherwise.
pub fn parse_liveness(s: &str) -> Result<Liveness, String> {
    match s {
        "none" => Ok(Liveness::None),
        "unfair" => Ok(Liveness::Unfair),
        "round-robin" => Ok(Liveness::RoundRobin),
        "both" => Ok(Liveness::Both),
        other => Err(format!(
            "unknown liveness `{other}` (expected none, unfair, round-robin, or both)"
        )),
    }
}

/// Stable display name of a liveness selection.
pub fn liveness_name(l: Liveness) -> &'static str {
    match l {
        Liveness::None => "none",
        Liveness::Unfair => "unfair",
        Liveness::RoundRobin => "round-robin",
        Liveness::Both => "both",
    }
}

fn run_with<P: Enumerable>(
    net: &Network,
    protocol: &P,
    legit: sno_check::PredFn<'_, P>,
    cell: &CheckCell,
    options: &CheckOptions,
    pool: &WorkerPool,
) -> Result<Certificate, String> {
    let spec = CheckSpec {
        protocol: cell.stack.clone(),
        topology: format!("{}:{}", cell.topology, cell.size),
        legit,
        invariants: Vec::new(),
        closure: true,
        liveness: cell.liveness,
        seeds: cell.seeds,
        faults: cell.faults.clone(),
    };
    check(net, protocol, &spec, options, pool).map_err(|e| e.to_string())
}

/// Instantiates `cell`'s stack and runs the checker.
///
/// # Errors
///
/// Returns a message on unknown stacks, fault endpoints outside the
/// topology, stack/topology mismatches (`dijkstra-ring` needs `ring`),
/// or a state space over `options.limit`.
pub fn run_cell(
    cell: &CheckCell,
    options: &CheckOptions,
    pool: &WorkerPool,
) -> Result<Certificate, String> {
    let g = cell.topology.build(cell.size, cell.graph_seed);
    let n = g.node_count();
    for f in &cell.faults {
        if let FaultClass::Topology(
            TopologyEvent::LinkFail { u, v } | TopologyEvent::LinkAdd { u, v },
        ) = f
        {
            if u.index() >= n || v.index() >= n {
                return Err(format!(
                    "fault `{f}` references a node outside the {n}-node topology"
                ));
            }
        }
    }
    let root = NodeId::new(0);
    match cell.stack.as_str() {
        "hop" => {
            let net = Network::new(g, root);
            run_with(&net, &HopDistance, &hop_distance_legit, cell, options, pool)
        }
        "bfs-tree" => {
            let net = Network::new(g, root);
            run_with(
                &net,
                &sno_tree::BfsSpanningTree,
                &sno_tree::bfs_legit,
                cell,
                options,
                pool,
            )
        }
        "cd-token" => {
            let net = Network::new(g, root);
            run_with(
                &net,
                &sno_token::CollinDolev,
                &sno_token::cd::cd_legit,
                cell,
                options,
                pool,
            )
        }
        "fairness-witness" => {
            let net = Network::new(g, root);
            run_with(
                &net,
                &sno_engine::examples::FairnessWitness,
                &sno_engine::examples::fairness_witness_legit,
                cell,
                options,
                pool,
            )
        }
        "fixed-token" => {
            let dfs = sno_graph::traverse::first_dfs(&g, root);
            let tree = RootedTree::from_parents(&g, root, &dfs.parent)
                .map_err(|e| format!("fixed-token needs a spanning tree: {e:?}"))?;
            let proto = sno_token::FixedTreeToken::from_graph(&g, &tree);
            let net = Network::new(g, root);
            let legit = |_: &Network, c: &[sno_token::tok::TokState]| proto.is_legitimate(c);
            run_with(&net, &proto, &legit, cell, options, pool)
        }
        "dcd" => {
            // No joins in the checked world chain, so the tight bound:
            // dist saturates at n = "disconnected".
            let net = Network::with_bound(g, root, n);
            run_with(
                &net,
                &sno_core::dcd::Dcd,
                &sno_core::dcd::dcd_legit,
                cell,
                options,
                pool,
            )
        }
        "dijkstra-ring" => {
            if cell.topology != GeneratorSpec::Ring {
                return Err("the dijkstra-ring stack needs `--topology ring`".into());
            }
            let net = Network::new(g, root);
            let proto = DijkstraRing::on_ring(&net, net.node_count() as u32);
            let legit = |net: &Network, c: &[u32]| proto.count_privileges(net, c) == 1;
            run_with(&net, &proto, &legit, cell, options, pool)
        }
        other => Err(format!(
            "unknown stack `{other}` (expected one of {})",
            STACKS.join(", ")
        )),
    }
}

/// A certificate-suite cell with its expected verdicts, in certificate
/// property order (closure, then unfair, then round-robin as enabled).
#[derive(Debug, Clone)]
pub struct SuiteCell {
    /// The cell to check.
    pub cell: CheckCell,
    /// Expected `holds` per property.
    pub expect: &'static [bool],
}

/// The bounded CI certificate suite.
///
/// Seven cells, one per property regime the checker supports:
///
/// 1. `hop` / `path:4` — the baseline: closure plus both convergences.
/// 2. `bfs-tree` / `ring:3` — a cyclic topology (E11's triangle).
/// 3. `cd-token` / `path:3` — the Collin–Dolev DFS words.
/// 4. `fixed-token` / `star:4` — the never-silent token wave: both
///    convergences hold on the star (the wave merges tokens under any
///    central schedule here), certifying more than the legacy checker's
///    round-robin-only E11 verdict.
/// 5. `fairness-witness` / `star:3` — the **fairness split**: closure
///    holds, the unfair daemon starves a latch behind the root spinner
///    (expected `fail`, with a lasso counterexample in the certificate),
///    and the weakly fair round-robin daemon converges — exactly the
///    daemon distinction the paper draws between `DFTNO` and `STNO`.
/// 6. `dcd` / `path:4` + `link-fail:2-3` — a **disconnecting** topology
///    world chain; legitimacy is world-aware (severed processors must
///    saturate at the sentinel).
/// 7. `hop` / `star:5` + `corrupt` from the legitimate set — the
///    budgeted fault-reachable envelope.
pub fn cert_suite() -> Vec<SuiteCell> {
    let mut dcd = CheckCell::new("dcd", GeneratorSpec::Path, 4);
    dcd.liveness = Liveness::Unfair;
    dcd.faults = vec![FaultClass::Topology(TopologyEvent::LinkFail {
        u: NodeId::new(2),
        v: NodeId::new(3),
    })];
    let mut envelope = CheckCell::new("hop", GeneratorSpec::Star, 5);
    envelope.seeds = Seeds::Legitimate;
    envelope.liveness = Liveness::Unfair;
    envelope.faults = vec![FaultClass::Corrupt];
    vec![
        SuiteCell {
            cell: CheckCell::new("hop", GeneratorSpec::Path, 4),
            expect: &[true, true, true],
        },
        SuiteCell {
            cell: CheckCell::new("bfs-tree", GeneratorSpec::Ring, 3),
            expect: &[true, true, true],
        },
        SuiteCell {
            cell: CheckCell::new("cd-token", GeneratorSpec::Path, 3),
            expect: &[true, true, true],
        },
        SuiteCell {
            cell: CheckCell::new("fixed-token", GeneratorSpec::Star, 4),
            expect: &[true, true, true],
        },
        SuiteCell {
            cell: CheckCell::new("fairness-witness", GeneratorSpec::Star, 3),
            expect: &[true, false, true],
        },
        SuiteCell {
            cell: dcd,
            expect: &[true, true],
        },
        SuiteCell {
            cell: envelope,
            expect: &[true, true],
        },
    ]
}

/// Renders a deterministic `sno-check-suite/v1` JSON document embedding
/// each certificate verbatim — the CI `cmp` artifact.
pub fn suite_json(certs: &[Certificate]) -> String {
    let mut s = String::with_capacity(4096);
    s.push_str("{\n\"schema\": \"sno-check-suite/v1\",\n\"certificates\": [\n");
    for (i, c) in certs.iter().enumerate() {
        s.push_str(c.to_json().trim_end());
        if i + 1 < certs.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("]\n}\n");
    s
}

/// Parsed arguments of `sno-lab check`.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckArgs {
    /// Run the pinned [`cert_suite`] instead of a single cell.
    pub suite: bool,
    /// The single cell (`None` iff `suite`).
    pub cell: Option<CheckCell>,
    /// Fleet threads (`None` = available parallelism).
    pub threads: Option<usize>,
    /// Checker tuning (`threads` is overwritten at run time).
    pub options: CheckOptions,
    /// Write the certificate (or suite document) here.
    pub json: Option<String>,
}

fn render_cell_header(cell: &CheckCell, cert: &Certificate, secs: f64) -> String {
    let faults = if cert.faults.is_empty() {
        String::new()
    } else {
        format!(", faults {}", cert.faults.join("+"))
    };
    let rate = if secs > 0.0 {
        (cert.states as f64 / secs) as u64
    } else {
        0
    };
    format!(
        "{} on {} [{}, {}{}]: {} states, {} transitions ({} fault), \
         {} legitimate, diameter {} — {} states/s",
        cell.stack,
        cert.topology,
        cert.seeds,
        liveness_name(cell.liveness),
        faults,
        cert.states,
        cert.transitions,
        cert.fault_transitions,
        cert.legitimate,
        cert.diameter,
        rate
    )
}

fn render_properties(cert: &Certificate) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for p in &cert.properties {
        let _ = writeln!(
            out,
            "  {:<24} ({:<11}) {}",
            p.name,
            p.daemon,
            if p.holds { "pass" } else { "FAIL" }
        );
    }
    out
}

/// Runs a parsed `sno-lab check` invocation, printing per-cell verdict
/// blocks (and a states/second telemetry figure — stdout only, never
/// JSON). Returns the process exit code: `0` when every verdict matches
/// (suite) or every property holds (single cell), `1` otherwise.
pub fn run_check_command(args: &CheckArgs) -> i32 {
    let threads = args.threads.unwrap_or_else(crate::fleet::default_threads);
    let pool = WorkerPool::new(threads);
    let mut options = args.options;
    options.threads = threads;
    println!(
        "sno-check | threads: {} | shards: {} | budget: {}",
        threads, options.shards, options.fault_budget
    );
    if args.suite {
        let mut certs = Vec::new();
        let mut mismatches = Vec::new();
        for sc in cert_suite() {
            let started = Instant::now();
            let cert = match run_cell(&sc.cell, &options, &pool) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {}: {e}", sc.cell.stack);
                    return 1;
                }
            };
            println!(
                "{}",
                render_cell_header(&sc.cell, &cert, started.elapsed().as_secs_f64())
            );
            print!("{}", render_properties(&cert));
            let got: Vec<bool> = cert.properties.iter().map(|p| p.holds).collect();
            if got != sc.expect {
                mismatches.push(format!(
                    "{} on {}: expected verdicts {:?}, got {:?}",
                    sc.cell.stack, cert.topology, sc.expect, got
                ));
            }
            certs.push(cert);
        }
        if let Some(path) = &args.json {
            if let Err(e) = std::fs::write(path, suite_json(&certs)) {
                eprintln!("error: cannot write suite JSON to `{path}`: {e}");
                return 1;
            }
            println!("suite certificates written to {path}");
        }
        if mismatches.is_empty() {
            println!("cert-suite: {} cells, all verdicts as pinned", certs.len());
            0
        } else {
            for m in &mismatches {
                eprintln!("error: verdict drift: {m}");
            }
            1
        }
    } else {
        let cell = args
            .cell
            .as_ref()
            .expect("non-suite invocations carry a cell");
        let started = Instant::now();
        let cert = match run_cell(cell, &options, &pool) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        };
        println!(
            "{}",
            render_cell_header(cell, &cert, started.elapsed().as_secs_f64())
        );
        print!("{}", render_properties(&cert));
        if let Some(path) = &args.json {
            if let Err(e) = std::fs::write(path, cert.to_json()) {
                eprintln!("error: cannot write certificate to `{path}`: {e}");
                return 1;
            }
            println!("certificate written to {path}");
        }
        i32::from(!cert.all_hold())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(threads: usize, shards: usize) -> CheckOptions {
        CheckOptions {
            threads,
            shards,
            ..CheckOptions::default()
        }
    }

    #[test]
    fn fault_grammar_round_trips() {
        assert_eq!(parse_fault("corrupt").unwrap(), FaultClass::Corrupt);
        assert_eq!(parse_fault("crash").unwrap(), FaultClass::Crash);
        let f = parse_fault("link-fail:2-3").unwrap();
        assert_eq!(f.to_string(), "link-fail:2-3");
        let f = parse_fault("link-add:0-4").unwrap();
        assert_eq!(f.to_string(), "link-add:0-4");
        assert!(parse_fault("meteor").is_err());
        assert!(parse_fault("link-fail:2").is_err());
        assert!(parse_fault("link-fail:a-b").is_err());
    }

    #[test]
    fn cell_errors_are_reported_not_panicked() {
        let pool = WorkerPool::new(1);
        let mut cell = CheckCell::new("warp", GeneratorSpec::Path, 3);
        let e = run_cell(&cell, &opts(1, 1), &pool).unwrap_err();
        assert!(e.contains("unknown stack"), "{e}");
        cell.stack = "dijkstra-ring".into();
        let e = run_cell(&cell, &opts(1, 1), &pool).unwrap_err();
        assert!(e.contains("ring"), "{e}");
        cell.stack = "hop".into();
        cell.faults = vec![parse_fault("link-fail:2-9").unwrap()];
        let e = run_cell(&cell, &opts(1, 1), &pool).unwrap_err();
        assert!(e.contains("outside"), "{e}");
    }

    #[test]
    fn certificates_are_byte_identical_across_threads_and_shards() {
        let cell = CheckCell::new("hop", GeneratorSpec::Path, 3);
        let pool1 = WorkerPool::new(1);
        let pool4 = WorkerPool::new(4);
        let base = run_cell(&cell, &opts(1, 1), &pool1).unwrap().to_json();
        for (pool, shards) in [(&pool1, 5), (&pool4, 1), (&pool4, 8)] {
            let cert = run_cell(&cell, &opts(4, shards), pool).unwrap();
            assert_eq!(cert.to_json(), base, "shards={shards}");
        }
    }

    #[test]
    fn cert_suite_verdicts_match_their_pins() {
        let pool = WorkerPool::new(4);
        let mut certs = Vec::new();
        for sc in cert_suite() {
            let cert = run_cell(&sc.cell, &opts(4, 4), &pool)
                .unwrap_or_else(|e| panic!("{}: {e}", sc.cell.stack));
            let got: Vec<bool> = cert.properties.iter().map(|p| p.holds).collect();
            assert_eq!(got, sc.expect, "{} on {}", sc.cell.stack, cert.topology);
            certs.push(cert);
        }
        // The fairness split is present: one liveness property fails
        // under the unfair daemon while round-robin passes on the same
        // cell, and the failing one carries a replayable lasso.
        let split = &certs[4];
        let unfair = split
            .properties
            .iter()
            .find(|p| p.daemon == "unfair")
            .unwrap();
        assert!(!unfair.holds);
        let cx = unfair.counterexample.as_ref().unwrap();
        assert!(cx.deadlock || !cx.cycle.is_empty());
        assert!(split
            .properties
            .iter()
            .any(|p| p.daemon == "round-robin" && p.holds));
        // The disconnecting world chain is present and explored.
        assert_eq!(certs[5].worlds.len(), 2);
        assert!(certs[5].fault_transitions > 0);
        // The suite document embeds every certificate and is a pure
        // function of the verdicts.
        let doc = suite_json(&certs);
        assert!(doc.starts_with("{\n\"schema\": \"sno-check-suite/v1\""));
        assert_eq!(doc.matches("\"schema\": \"sno-check/v1\"").count(), 7);
        assert_eq!(doc, suite_json(&certs));
    }
}
