//! Campaign execution: expand a matrix, fan cells out over the fleet,
//! aggregate per-cell statistics.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use sno_core::dftno::Dftno;
use sno_core::orientation::{golden_dfs_orientation, Orientation};
use sno_core::stno::{stno_oriented, Stno};
use sno_engine::daemon::Daemon;
use sno_engine::faults::corrupt_random;
use sno_engine::{
    CounterMeter, ExchangeBreakdown, Meter, Network, NoopMeter, Protocol, Simulation,
    TopologyEvent, TraceBuffer,
};
use sno_fleet::WorkerPool;
use sno_graph::{traverse, Graph, NodeId, Port, RootedTree};
use sno_token::{DfsTokenCirculation, OracleToken};
use sno_tree::{BfsSpanningTree, CdSpanningTree, OracleSpanningTree};
use std::sync::Arc;

use crate::fleet;
use crate::matrix::{CellSpec, ScenarioMatrix};
use crate::report::{CampaignReport, CellReport};
use crate::spec::{FaultPlan, ProtocolSpec, TokenSubstrate, TreeSubstrate};

/// Decorrelates the daemon's RNG stream from the initial-configuration
/// stream derived from the same run seed.
const DAEMON_SALT: u64 = 0xDAE1_B0A7_5EED_0001;
/// Decorrelates the fault injector's RNG stream likewise.
const FAULT_SALT: u64 = 0xFA17_B0A7_5EED_0002;
/// Decorrelates the topology-event derivation stream likewise.
const TOPO_SALT: u64 = 0x70B0_B0A7_5EED_0003;

/// Counters of one simulation run within a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunRecord {
    /// The run seed (initial configuration + daemon randomness).
    pub seed: u64,
    /// Whether the run reached its goal within the step budget.
    pub converged: bool,
    /// Action executions until the goal (or budget exhaustion).
    pub moves: u64,
    /// Daemon selections likewise.
    pub steps: u64,
    /// Complete asynchronous rounds likewise.
    pub rounds: u64,
    /// The re-convergence phase after an injected fault, when the cell's
    /// fault plan calls for one and the first phase converged.
    pub recovery: Option<Recovery>,
    /// Detection latency of a disconnecting plan (`churn-any`): daemon
    /// steps, summed over the run's perturbation windows, until every
    /// severed processor's detector flagged the disconnection. `None`
    /// for every other plan (and when no window ran).
    pub detection: Option<u64>,
}

/// Counters of a post-fault re-convergence phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// Whether the run re-converged within the step budget.
    pub converged: bool,
    /// Action executions of the recovery phase.
    pub moves: u64,
    /// Daemon selections of the recovery phase.
    pub steps: u64,
    /// Complete rounds of the recovery phase.
    pub rounds: u64,
}

/// The raw result of one cell: the instantiated network's dimensions and
/// every run's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// The cell that was run.
    pub cell: CellSpec,
    /// Actual node count of the instantiated topology.
    pub nodes: usize,
    /// Edge count of the instantiated topology.
    pub edges: usize,
    /// One record per seed, in seed order.
    pub runs: Vec<RunRecord>,
    /// Deterministic engine counters summed over every run of the cell
    /// (convergence and recovery phases alike). `None` unless the
    /// campaign ran with [`EngineOptions::metrics`] — the default
    /// campaign path is monomorphized over the no-op meter and collects
    /// nothing.
    pub metrics: Option<CounterMeter>,
    /// Boundary-traffic breakdown of the sharded synchronous executor:
    /// cross-shard port hand-offs per exchange phase plus per-destination
    /// shard counts. Populated only for metered campaigns that actually
    /// ran the sharded executor and crossed a boundary — partition
    /// diagnostics, deliberately kept out of [`CounterMeter`] so the
    /// counter totals stay partition-independent.
    pub exchange: Option<ExchangeBreakdown>,
}

/// How a protocol stack's convergence is detected.
enum Mode {
    /// Run until a goal predicate holds on the configuration (used for
    /// `DFTNO`, whose token keeps circulating after orientation).
    Goal,
    /// Run until no action is enabled, then require the legitimacy
    /// predicate (used for `STNO`, which is silent).
    Silence,
}

/// Engine configuration a campaign applies to every simulation it
/// drives: the guard-invalidation mode and — for
/// [`EngineMode::SyncSharded`](sno_engine::EngineMode) — the shard
/// count.
///
/// `None` fields fall back to the environment
/// (`SNO_ENGINE_MODE` / `SNO_SYNC_SHARDS`, plus the legacy
/// `SNO_ENGINE_FULL_SWEEP=1`), which itself falls back to the engine
/// default. The `sno-lab run --mode/--shards` flags populate this;
/// reports are byte-identical under every choice — only the cost of a
/// step changes, never its result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineOptions {
    /// Explicit engine mode (overrides the environment).
    pub mode: Option<sno_engine::EngineMode>,
    /// Shard count for the sharded synchronous executor (engine worker
    /// threads follow the shard count). Ignored unless the resolved
    /// mode is `SyncSharded`.
    pub shards: Option<usize>,
    /// Collect deterministic engine counters
    /// ([`sno_engine::CounterMeter`]) for every cell. Off by default:
    /// the unmetered campaign is monomorphized over
    /// [`sno_engine::NoopMeter`], so reports — and the committed
    /// `BENCH_campaign.json` — stay byte-identical whether this build
    /// even knows about telemetry. With metrics on, the counter totals
    /// themselves are deterministic: byte-identical across thread
    /// counts, shard counts, and seed chunkings.
    pub metrics: bool,
}

impl EngineOptions {
    /// Resolves the effective mode: explicit option, then environment,
    /// then `None` (engine default).
    fn resolved_mode(&self) -> Option<sno_engine::EngineMode> {
        self.mode.or_else(engine_mode_from_env)
    }

    /// Resolves the effective shard count likewise.
    fn resolved_shards(&self) -> usize {
        self.shards
            .or_else(sync_shards_from_env)
            .unwrap_or(1)
            .max(1)
    }
}

/// Runs a whole campaign on the default number of worker threads.
///
/// Results are bit-for-bit deterministic in the matrix alone — thread
/// count and scheduling cannot affect them.
///
/// # Panics
///
/// Panics if the matrix fails [`ScenarioMatrix::validate`].
pub fn run_campaign(matrix: &ScenarioMatrix) -> CampaignReport {
    run_campaign_with_threads(matrix, fleet::default_threads())
}

/// One persistent engine worker pool for the whole campaign, when the
/// resolved engine options call for the sharded executor: every cell's
/// simulations hand their phases to the same parked workers instead of
/// each spawning a pool of its own (concurrent cells serialize whole
/// phases inside the pool, which is always safe). `None` when no
/// sharded simulation will run.
fn campaign_pool(options: &EngineOptions) -> Option<Arc<WorkerPool>> {
    let shards = options.resolved_shards();
    if options.resolved_mode() == Some(sno_engine::EngineMode::SyncSharded) && shards > 1 {
        Some(Arc::new(WorkerPool::new(shards)))
    } else {
        None
    }
}

/// Applies the campaign's resolved engine options to one simulation,
/// wiring the shared campaign pool into sharded executors.
fn configure_engine<P: Protocol, M: Meter>(
    sim: &mut Simulation<'_, P, M>,
    options: &EngineOptions,
    pool: Option<&Arc<WorkerPool>>,
) {
    if let Some(mode) = options.resolved_mode() {
        sim.set_mode(mode);
        if mode == sno_engine::EngineMode::SyncSharded {
            let shards = options.resolved_shards();
            match pool {
                Some(p) if shards > 1 => {
                    sim.configure_sync_sharding_with_pool(shards, Arc::clone(p));
                }
                _ => sim.configure_sync_sharding(shards, shards),
            }
        }
    }
}

/// One unit of fleet work: a contiguous seed sub-range of one cell.
///
/// A matrix with few heavy cells would underutilize a cell-granular
/// fleet, so the runner splits each cell's seed range into chunks and
/// re-assembles the per-cell records in seed order afterwards. Every
/// `(cell, seed)` run derives all of its randomness from the run seed
/// alone, so chunk boundaries (and therefore the thread count) cannot
/// leak into the report.
#[derive(Debug, Clone, Copy)]
struct SeedChunk {
    cell_index: usize,
    seed_lo: u64,
    seed_hi: u64,
}

/// Picks the per-cell chunk size: whole cells when there are already
/// enough of them to keep the fleet busy, otherwise split so the campaign
/// yields at least ~2 work items per worker (but never below one seed).
fn seed_chunk_size(seeds_per_cell: u64, cell_count: usize, threads: usize) -> u64 {
    if threads <= 1 || cell_count >= threads.saturating_mul(2) {
        return seeds_per_cell.max(1);
    }
    let chunks_per_cell = ((threads * 2).div_ceil(cell_count.max(1))).max(1) as u64;
    seeds_per_cell.div_ceil(chunks_per_cell).max(1)
}

/// [`run_campaign`] with an explicit worker-thread count.
///
/// # Panics
///
/// Panics if the matrix fails [`ScenarioMatrix::validate`].
pub fn run_campaign_with_threads(matrix: &ScenarioMatrix, threads: usize) -> CampaignReport {
    run_campaign_with_options(matrix, threads, &EngineOptions::default())
}

/// [`run_campaign_with_threads`] with explicit [`EngineOptions`] — the
/// `sno-lab run --mode/--shards` entry point.
///
/// # Panics
///
/// Panics if the matrix fails [`ScenarioMatrix::validate`].
pub fn run_campaign_with_options(
    matrix: &ScenarioMatrix,
    threads: usize,
    options: &EngineOptions,
) -> CampaignReport {
    if let Err(e) = matrix.validate() {
        panic!("invalid scenario matrix: {e}");
    }
    let cells = matrix.cells();
    let chunk = seed_chunk_size(matrix.seeds_per_cell, cells.len(), threads);
    let seed_end = matrix.seed_start + matrix.seeds_per_cell;
    let mut items: Vec<SeedChunk> = Vec::new();
    for (cell_index, _) in cells.iter().enumerate() {
        let mut lo = matrix.seed_start;
        while lo < seed_end {
            let hi = (lo + chunk).min(seed_end);
            items.push(SeedChunk {
                cell_index,
                seed_lo: lo,
                seed_hi: hi,
            });
            lo = hi;
        }
    }
    let pool = campaign_pool(options);
    let partials = fleet::parallel_map_labeled(
        &items,
        threads,
        |_, it| {
            run_cell_seeds(
                &cells[it.cell_index],
                matrix,
                it.seed_lo,
                it.seed_hi,
                options,
                pool.as_ref(),
            )
        },
        // Evaluated only when a worker panics: name the scenario cell
        // and seed sub-range so the failing run is attributable without
        // a single-threaded re-run.
        |_, it| {
            format!(
                "{} seeds {}..{}",
                cells[it.cell_index], it.seed_lo, it.seed_hi
            )
        },
    );
    // Stitch chunk outcomes back into whole cells. Items were generated
    // cell-major with ascending seed ranges and `parallel_map` preserves
    // input order, so plain concatenation restores seed order.
    let mut outcomes: Vec<CellOutcome> = Vec::with_capacity(cells.len());
    for (it, partial) in items.into_iter().zip(partials) {
        match outcomes.last_mut() {
            Some(prev) if it.seed_lo != matrix.seed_start => {
                prev.runs.extend(partial.runs);
                // Counter merge is exact u64 addition — commutative and
                // associative — so the chunked total equals the
                // unchunked one and chunk boundaries still cannot leak
                // into the report.
                if let (Some(acc), Some(m)) = (prev.metrics.as_mut(), partial.metrics.as_ref()) {
                    acc.merge(m);
                }
                // Exchange breakdowns merge the same way (exact u64
                // sums, shard vectors zip-added), so chunking cannot
                // leak here either.
                match (prev.exchange.as_mut(), partial.exchange) {
                    (Some(acc), Some(b)) => acc.merge(&b),
                    (None, Some(b)) => prev.exchange = Some(b),
                    _ => {}
                }
            }
            _ => outcomes.push(partial),
        }
    }
    debug_assert_eq!(outcomes.len(), cells.len());
    let cell_reports: Vec<CellReport> = outcomes.iter().map(CellReport::from_outcome).collect();
    CampaignReport::new(matrix, cell_reports)
}

/// Runs every seed of one cell, reusing the network, simulation, and
/// daemon allocations across seeds.
pub fn run_cell(cell: &CellSpec, matrix: &ScenarioMatrix) -> CellOutcome {
    let options = EngineOptions::default();
    let pool = campaign_pool(&options);
    run_cell_seeds(
        cell,
        matrix,
        matrix.seed_start,
        matrix.seed_start + matrix.seeds_per_cell,
        &options,
        pool.as_ref(),
    )
}

/// Runs the seeds `seed_lo .. seed_hi` of one cell.
///
/// The meter choice is made once here, outside the hot loops: the
/// metered and unmetered campaigns are separate monomorphizations of
/// [`drive`], so the default path carries no telemetry branches at all.
fn run_cell_seeds(
    cell: &CellSpec,
    matrix: &ScenarioMatrix,
    seed_lo: u64,
    seed_hi: u64,
    options: &EngineOptions,
    pool: Option<&Arc<WorkerPool>>,
) -> CellOutcome {
    if options.metrics {
        dispatch_stack(
            cell,
            matrix,
            DriveVisitor::<CounterMeter> {
                cell,
                matrix,
                seed_lo,
                seed_hi,
                options,
                pool,
                _meter: std::marker::PhantomData,
            },
        )
    } else {
        dispatch_stack(
            cell,
            matrix,
            DriveVisitor::<NoopMeter> {
                cell,
                matrix,
                seed_lo,
                seed_hi,
                options,
                pool,
                _meter: std::marker::PhantomData,
            },
        )
    }
}

/// Rank-2 dispatch from a cell's [`ProtocolSpec`] to its concrete
/// protocol stack: builds the topology, network, and goal predicate and
/// hands the visitor the monomorphic pieces. The campaign runner
/// ([`run_cell_seeds`]) and the `--trace` re-run ([`trace_first_cell`])
/// share it, so the spec-to-stack table exists exactly once.
trait StackVisitor {
    /// What the visitor produces from the concrete stack.
    type Out;
    /// Called with exactly one concrete `(protocol, detection mode,
    /// legitimacy predicate)` triple. The `Clone` bound lets
    /// topology-mutating fault plans build a fresh simulation per seed
    /// (every protocol value here is a small copyable struct). `detect`
    /// is the stack's disconnection-detection probe — `Some` only for
    /// stacks that can ride a disconnecting fault plan (`dcd`), where it
    /// holds once every severed processor has flagged the cut.
    fn visit<P, L>(
        self,
        net: &Network,
        protocol: P,
        mode: Mode,
        legit: L,
        detect: Option<Probe<'_, P>>,
    ) -> Self::Out
    where
        P: Protocol + Clone,
        L: Fn(&Network, &[P::State]) -> bool;
}

/// A borrowed state-typed predicate over `(current network, config)` —
/// the shape of both detection probes and legitimacy checks when they
/// have to cross the type-erased [`StackVisitor`] boundary.
type Probe<'a, P> = &'a dyn Fn(&Network, &[<P as Protocol>::State]) -> bool;

fn dispatch_stack<V: StackVisitor>(cell: &CellSpec, matrix: &ScenarioMatrix, v: V) -> V::Out {
    let g = cell.topology.build(cell.n, matrix.graph_seed);
    let root = NodeId::new(0);
    match cell.protocol {
        ProtocolSpec::Dftno(substrate) => {
            let oracle_walker = OracleToken::new(&g, root);
            let net = Network::new(g, root);
            // `DFTNO` converges to the golden first-DFS orientation under
            // both substrates; precomputing it makes the per-step goal
            // check allocation-free.
            let golden = golden_dfs_orientation(&net);
            match substrate {
                TokenSubstrate::Oracle => v.visit(
                    &net,
                    Dftno::new(oracle_walker),
                    Mode::Goal,
                    |net, c| dftno_matches(&golden, net, c),
                    None,
                ),
                TokenSubstrate::Dftc => v.visit(
                    &net,
                    Dftno::new(DfsTokenCirculation),
                    Mode::Goal,
                    |net, c| dftno_matches(&golden, net, c),
                    None,
                ),
            }
        }
        ProtocolSpec::Stno(substrate) => {
            let bfs = traverse::bfs(&g, root);
            let tree = RootedTree::from_parents(&g, root, &bfs.parent)
                .expect("BFS parents of a connected graph form a tree");
            let oracle_tree = OracleSpanningTree::from_graph(&g, &tree);
            // Node-arrival fault plans need room in the known bound `N`
            // for the joining processor; without headroom the bound is
            // exactly the node count, i.e. `Network::new`.
            let bound = g.node_count() + cell.fault.join_headroom();
            let net = Network::with_bound(g, root, bound);
            match substrate {
                TreeSubstrate::Oracle => v.visit(
                    &net,
                    Stno::new(oracle_tree),
                    Mode::Silence,
                    stno_oriented,
                    None,
                ),
                TreeSubstrate::Bfs => v.visit(
                    &net,
                    Stno::new(BfsSpanningTree),
                    Mode::Silence,
                    stno_oriented,
                    None,
                ),
                TreeSubstrate::CdDfs => v.visit(
                    &net,
                    Stno::new(CdSpanningTree),
                    Mode::Silence,
                    stno_oriented,
                    None,
                ),
            }
        }
        ProtocolSpec::Dcd => {
            let bound = g.node_count() + cell.fault.join_headroom();
            let net = Network::with_bound(g, root, bound);
            // The detector's detection probe: every processor the
            // *current* topology actually severs from the root holds a
            // saturated distance. Holds vacuously while the network is
            // whole, so a non-disconnecting window costs zero detection
            // steps.
            let probe = |net: &Network, c: &[sno_core::dcd::DcdState]| {
                let nb = net.n_bound();
                sno_core::dcd::severed_nodes(net)
                    .iter()
                    .all(|p| c[p.index()].is_disconnected(nb))
            };
            v.visit(
                &net,
                sno_core::dcd::Dcd,
                Mode::Silence,
                sno_core::dcd::dcd_legit,
                Some(&probe),
            )
        }
    }
}

/// The campaign visitor: drives every seed of the sub-range under the
/// meter type `M`.
struct DriveVisitor<'a, M> {
    cell: &'a CellSpec,
    matrix: &'a ScenarioMatrix,
    seed_lo: u64,
    seed_hi: u64,
    options: &'a EngineOptions,
    pool: Option<&'a Arc<WorkerPool>>,
    _meter: std::marker::PhantomData<M>,
}

impl<M: Meter + Default> StackVisitor for DriveVisitor<'_, M> {
    type Out = CellOutcome;

    fn visit<P, L>(
        self,
        net: &Network,
        protocol: P,
        mode: Mode,
        legit: L,
        detect: Option<Probe<'_, P>>,
    ) -> CellOutcome
    where
        P: Protocol + Clone,
        L: Fn(&Network, &[P::State]) -> bool,
    {
        drive::<P, L, M>(
            net,
            protocol,
            mode,
            legit,
            detect,
            self.cell,
            self.matrix,
            self.seed_lo,
            self.seed_hi,
            self.options,
            self.pool,
        )
    }
}

/// Allocation-free equality of a configuration's orientation variables
/// against a precomputed golden orientation.
fn dftno_matches<S>(
    golden: &Orientation,
    _net: &Network,
    config: &[sno_core::dftno::DftnoState<S>],
) -> bool {
    config
        .iter()
        .zip(golden.names.iter().zip(&golden.labels))
        .all(|(s, (&name, labels))| s.eta == name && s.pi == *labels)
}

/// Runs one concrete protocol stack over the seeds `seed_lo .. seed_hi`.
#[allow(clippy::too_many_arguments)]
fn drive<P, L, M>(
    net: &Network,
    protocol: P,
    mode: Mode,
    legit: L,
    detect: Option<Probe<'_, P>>,
    cell: &CellSpec,
    matrix: &ScenarioMatrix,
    seed_lo: u64,
    seed_hi: u64,
    options: &EngineOptions,
    pool: Option<&Arc<WorkerPool>>,
) -> CellOutcome
where
    P: Protocol + Clone,
    L: Fn(&Network, &[P::State]) -> bool,
    M: Meter + Default,
{
    if cell.fault.mutates_topology() {
        // Topology events mutate the simulation's copy-on-write network;
        // reusing one simulation across seeds would leak one seed's
        // mutations into the next, so these plans build fresh per seed.
        return drive_topology::<P, L, M>(
            net, protocol, mode, legit, detect, cell, matrix, seed_lo, seed_hi, options, pool,
        );
    }
    // Built from the campaign-wide seed (not the chunk's), so a chunked
    // and an unchunked fleet construct identical daemons.
    let mut daemon = cell.daemon.build(net, matrix.seed_start ^ DAEMON_SALT);
    let mut sim = Simulation::from_initial_with_meter(net, protocol, M::default());
    // Differential hooks: `--mode` (via `EngineOptions`) or
    // `SNO_ENGINE_MODE={full-sweep,node-dirty,port-dirty,sync-sharded}`
    // pins the engine mode for the whole campaign (the legacy
    // `SNO_ENGINE_FULL_SWEEP=1` still forces the reference engine).
    // Reports must come out byte-identical under every mode, shard
    // count, and thread count — CI regenerates `BENCH_campaign.json`
    // under all of them. Sharded simulations share the campaign pool.
    configure_engine(&mut sim, options, pool);
    // Setup work (simulation construction, the mode switch above)
    // happens once per *seed chunk*, so letting it into the counters
    // would leak the fleet's chunking into the report. Campaign metrics
    // measure the seeds' work only: zero the meter here, so per-chunk
    // totals are exact sums of per-seed work and merge chunk-count- and
    // thread-count-independently.
    *sim.meter_mut() = M::default();
    let mut runs = Vec::with_capacity((seed_hi - seed_lo) as usize);
    for seed in seed_lo..seed_hi {
        let mut one_seed = || -> RunRecord {
            let mut rng = StdRng::seed_from_u64(seed);
            sim.reinit_random(&mut rng);
            daemon.reset(seed ^ DAEMON_SALT);
            if let FaultPlan::AtStep { step, hits } = cell.fault {
                // Mid-run corruption: at most `step` selections before the
                // hit (a run that converges sooner is hit while silent),
                // then re-convergence, reported as the recovery phase. The
                // record's totals span both segments.
                let (_, am, a_steps, ar) = run_phase(
                    &mut sim,
                    &mut daemon,
                    &mode,
                    &legit,
                    net,
                    u64::from(step).min(matrix.max_steps),
                );
                let hits = (hits as usize).min(net.node_count());
                let mut fault_rng = StdRng::seed_from_u64(seed ^ FAULT_SALT);
                corrupt_random(&mut sim, hits, &mut fault_rng);
                sim.reset_counters();
                let (rc, rm, rs, rr) =
                    run_phase(&mut sim, &mut daemon, &mode, &legit, net, matrix.max_steps);
                return RunRecord {
                    seed,
                    converged: rc,
                    moves: am + rm,
                    steps: a_steps + rs,
                    rounds: ar + rr,
                    recovery: Some(Recovery {
                        converged: rc,
                        moves: rm,
                        steps: rs,
                        rounds: rr,
                    }),
                    detection: None,
                };
            }
            let (converged, moves, steps, rounds) =
                run_phase(&mut sim, &mut daemon, &mode, &legit, net, matrix.max_steps);

            let mut recovery = None;
            if converged {
                // `hits == 0` never reaches here: `ScenarioMatrix::validate`
                // rejects it, so the cap below only shrinks oversized plans.
                if let FaultPlan::AfterConvergence { hits } = cell.fault {
                    let hits = (hits as usize).min(net.node_count());
                    let mut fault_rng = StdRng::seed_from_u64(seed ^ FAULT_SALT);
                    corrupt_random(&mut sim, hits, &mut fault_rng);
                    sim.reset_counters();
                    let (rc, rm, rs, rr) =
                        run_phase(&mut sim, &mut daemon, &mode, &legit, net, matrix.max_steps);
                    recovery = Some(Recovery {
                        converged: rc,
                        moves: rm,
                        steps: rs,
                        rounds: rr,
                    });
                }
            }
            RunRecord {
                seed,
                converged,
                moves,
                steps,
                rounds,
                recovery,
                detection: None,
            }
        };
        let record = if M::ENABLED {
            // Metered campaigns catch per-seed panics to enrich the
            // message with the counter snapshot at the point of death,
            // then re-raise; `fleet::parallel_map_labeled` adds the cell
            // and seed-range label on top. The unmetered path keeps its
            // zero-overhead unwinding.
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(&mut one_seed)) {
                Ok(record) => record,
                Err(payload) => {
                    // The closure holds `&mut sim`; end it so the meter
                    // can be read for the snapshot.
                    #[allow(clippy::drop_non_drop)]
                    drop(one_seed);
                    let msg = crate::fleet::payload_message(payload.as_ref());
                    let counters = sim
                        .meter()
                        .counters()
                        .map_or_else(|| "unavailable".to_string(), |c| c.render());
                    let topo = topology_suffix(sim.last_topology_event());
                    panic!("seed {seed} panicked: {msg} [counters: {counters}]{topo}");
                }
            }
        } else {
            one_seed()
        };
        runs.push(record);
    }
    let metrics = sim.meter().counters().cloned();
    let exchange = exchange_of(&sim, metrics.is_some());
    CellOutcome {
        cell: *cell,
        nodes: net.node_count(),
        edges: net.graph().edge_count(),
        runs,
        metrics,
        exchange,
    }
}

/// Extracts the sharded executor's boundary-traffic breakdown from a
/// finished simulation — `None` for unmetered campaigns (keeps the
/// default report byte-identical) and when the executor never crossed a
/// shard boundary (serial modes, single-shard runs).
fn exchange_of<P: Protocol, M: Meter>(
    sim: &Simulation<'_, P, M>,
    metered: bool,
) -> Option<ExchangeBreakdown> {
    if !metered {
        return None;
    }
    let b = sim.exchange_breakdown();
    (!b.is_empty()).then_some(b)
}

/// The `[last topology event: …]` fragment of a metered panic message —
/// empty when the run never mutated its topology.
fn topology_suffix(event: Option<&TopologyEvent>) -> String {
    event.map_or_else(String::new, |e| format!(" [last topology event: {e}]"))
}

/// Runs one topology-mutating protocol stack over `seed_lo .. seed_hi`,
/// building a fresh simulation per seed (see [`drive`]). Every scheduled
/// event is derived from the run seed alone, so chunk boundaries and
/// thread counts still cannot leak into the report.
#[allow(clippy::too_many_arguments)]
fn drive_topology<P, L, M>(
    net: &Network,
    protocol: P,
    mode: Mode,
    legit: L,
    detect: Option<Probe<'_, P>>,
    cell: &CellSpec,
    matrix: &ScenarioMatrix,
    seed_lo: u64,
    seed_hi: u64,
    options: &EngineOptions,
    pool: Option<&Arc<WorkerPool>>,
) -> CellOutcome
where
    P: Protocol + Clone,
    L: Fn(&Network, &[P::State]) -> bool,
    M: Meter + Default,
{
    let mut daemon = cell.daemon.build(net, matrix.seed_start ^ DAEMON_SALT);
    let mut runs = Vec::with_capacity((seed_hi - seed_lo) as usize);
    let mut metrics: Option<CounterMeter> = None;
    let mut exchange: Option<ExchangeBreakdown> = None;
    for seed in seed_lo..seed_hi {
        let mut sim = Simulation::from_initial_with_meter(net, protocol.clone(), M::default());
        configure_engine(&mut sim, options, pool);
        // As in `drive`: construction and the mode switch are setup, not
        // the seed's work.
        *sim.meter_mut() = M::default();
        let mut one_seed = || -> RunRecord {
            let mut rng = StdRng::seed_from_u64(seed);
            sim.reinit_random(&mut rng);
            daemon.reset(seed ^ DAEMON_SALT);
            let mut topo_rng = StdRng::seed_from_u64(seed ^ TOPO_SALT);
            match cell.fault {
                FaultPlan::Churn { rate, seed: salt } => {
                    let (converged, moves, steps, rounds) =
                        run_phase(&mut sim, &mut daemon, &mode, &legit, net, matrix.max_steps);
                    let mut recovery = None;
                    if converged {
                        let mut churn_rng = StdRng::seed_from_u64(seed ^ salt ^ TOPO_SALT);
                        let (mut all_ok, mut tm, mut ts, mut tr) = (true, 0, 0, 0);
                        for _ in 0..rate {
                            apply_churn_window(&mut sim, &mut churn_rng);
                            sim.reset_counters();
                            let (rc, rm, rs, rr) = run_phase(
                                &mut sim,
                                &mut daemon,
                                &mode,
                                &legit,
                                net,
                                matrix.max_steps,
                            );
                            all_ok &= rc;
                            tm += rm;
                            ts += rs;
                            tr += rr;
                            if !rc {
                                break;
                            }
                        }
                        recovery = Some(Recovery {
                            converged: all_ok,
                            moves: tm,
                            steps: ts,
                            rounds: tr,
                        });
                    }
                    RunRecord {
                        seed,
                        converged,
                        moves,
                        steps,
                        rounds,
                        recovery,
                        detection: None,
                    }
                }
                FaultPlan::ChurnAny { rate, seed: salt } => {
                    let (converged, moves, steps, rounds) =
                        run_phase(&mut sim, &mut daemon, &mode, &legit, net, matrix.max_steps);
                    let mut recovery = None;
                    let mut detection = None;
                    if converged {
                        let mut churn_rng = StdRng::seed_from_u64(seed ^ salt ^ TOPO_SALT);
                        let (mut all_ok, mut tm, mut ts, mut tr) = (true, 0, 0, 0);
                        let mut detect_steps = 0u64;
                        for _ in 0..rate {
                            apply_any_churn_window(&mut sim, &mut churn_rng);
                            sim.reset_counters();
                            // Phase 1 — detection: drive until every
                            // severed processor flags the cut (zero steps
                            // when the window did not disconnect anything
                            // or the verdicts already agree). Counted into
                            // the window's recovery totals: detection is
                            // the first half of recovering.
                            let (mut dm, mut ds, mut dr) = (0, 0, 0);
                            let mut detected = true;
                            if let Some(probe) = detect {
                                // Snapshot the post-window topology: the
                                // ground truth is fixed for the phase, and
                                // `run_until`'s predicate cannot borrow the
                                // simulation it is driving.
                                let cur = sim.network().clone();
                                let r = sim
                                    .run_until(&mut daemon, matrix.max_steps, |c| probe(&cur, c));
                                detect_steps += r.steps;
                                (dm, ds, dr) = (r.moves, r.steps, r.rounds);
                                detected = r.converged;
                            }
                            // Phase 2 — full re-stabilization on top.
                            let (rc, rm, rs, rr) = if detected {
                                run_phase(
                                    &mut sim,
                                    &mut daemon,
                                    &mode,
                                    &legit,
                                    net,
                                    matrix.max_steps,
                                )
                            } else {
                                (false, 0, 0, 0)
                            };
                            all_ok &= rc;
                            tm += dm + rm;
                            ts += ds + rs;
                            tr += dr + rr;
                            if !rc {
                                break;
                            }
                        }
                        recovery = Some(Recovery {
                            converged: all_ok,
                            moves: tm,
                            steps: ts,
                            rounds: tr,
                        });
                        detection = detect.is_some().then_some(detect_steps);
                    }
                    RunRecord {
                        seed,
                        converged,
                        moves,
                        steps,
                        rounds,
                        recovery,
                        detection,
                    }
                }
                FaultPlan::LinkFail { step }
                | FaultPlan::LinkAdd { step }
                | FaultPlan::NodeCrash { step }
                | FaultPlan::NodeJoin { step } => {
                    // Segment A up to the scheduled step, the event, then
                    // re-convergence (reported as recovery, like `hit:K@S`).
                    let (_, am, a_steps, ar) = run_phase(
                        &mut sim,
                        &mut daemon,
                        &mode,
                        &legit,
                        net,
                        u64::from(step).min(matrix.max_steps),
                    );
                    apply_scheduled_event(&mut sim, &cell.fault, &mut topo_rng);
                    sim.reset_counters();
                    let (rc, rm, rs, rr) =
                        run_phase(&mut sim, &mut daemon, &mode, &legit, net, matrix.max_steps);
                    RunRecord {
                        seed,
                        converged: rc,
                        moves: am + rm,
                        steps: a_steps + rs,
                        rounds: ar + rr,
                        recovery: Some(Recovery {
                            converged: rc,
                            moves: rm,
                            steps: rs,
                            rounds: rr,
                        }),
                        detection: None,
                    }
                }
                _ => unreachable!("drive_topology only receives topology-mutating plans"),
            }
        };
        let record = if M::ENABLED {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(&mut one_seed)) {
                Ok(record) => record,
                Err(payload) => {
                    #[allow(clippy::drop_non_drop)]
                    drop(one_seed);
                    let msg = crate::fleet::payload_message(payload.as_ref());
                    let counters = sim
                        .meter()
                        .counters()
                        .map_or_else(|| "unavailable".to_string(), |c| c.render());
                    let topo = topology_suffix(sim.last_topology_event());
                    panic!("seed {seed} panicked: {msg} [counters: {counters}]{topo}");
                }
            }
        } else {
            one_seed()
        };
        runs.push(record);
        if let Some(c) = sim.meter().counters() {
            match metrics.as_mut() {
                Some(acc) => acc.merge(c),
                None => metrics = Some(c.clone()),
            }
        }
        // Fresh sim per seed, so the breakdown is per-seed here and has
        // to be accumulated across the chunk.
        if let Some(b) = exchange_of(&sim, metrics.is_some()) {
            match exchange.as_mut() {
                Some(acc) => acc.merge(&b),
                None => exchange = Some(b),
            }
        }
    }
    CellOutcome {
        cell: *cell,
        nodes: net.node_count(),
        edges: net.graph().edge_count(),
        runs,
        metrics,
        exchange,
    }
}

/// Applies the single scheduled topology event of a `link-fail@S` /
/// `link-add@S` / `node-crash@S` / `node-join@S` plan, derived from the
/// run's topology RNG against the *current* (possibly already mutated)
/// graph. Plans whose precondition has vanished (no absent link to add,
/// no removable link, no room to join) degrade to a no-op rather than
/// fail the run.
fn apply_scheduled_event<P: Protocol, M: Meter>(
    sim: &mut Simulation<'_, P, M>,
    plan: &FaultPlan,
    rng: &mut dyn RngCore,
) {
    match plan {
        FaultPlan::LinkAdd { .. } => {
            if let Some((u, v)) = pick_absent_link(sim.network().graph(), rng) {
                sim.apply_topology_event(&TopologyEvent::LinkAdd { u, v }, None)
                    .expect("derived link addition is valid");
            }
        }
        FaultPlan::LinkFail { .. } => {
            if let Some((u, v)) = pick_removable_link(sim.network().graph(), rng) {
                sim.apply_topology_event(&TopologyEvent::LinkFail { u, v }, None)
                    .expect("derived link failure is valid");
            }
        }
        FaultPlan::NodeCrash { .. } => {
            // Restart semantics: the processor loses its state and links
            // atomically, then rejoins with the same links — a processor
            // reboot, which keeps the network connected without having to
            // search for a non-articulation victim.
            let n = sim.network().node_count();
            if n < 2 {
                return;
            }
            let x = NodeId::new(1 + (rng.next_u64() as usize) % (n - 1));
            let g = sim.network().graph();
            let links: Vec<NodeId> = (0..g.degree(x))
                .map(|l| g.neighbor(x, Port::new(l)))
                .collect();
            sim.apply_topology_event(&TopologyEvent::NodeCrash { node: x }, None)
                .expect("non-root crash is valid");
            for v in links {
                sim.apply_topology_event(&TopologyEvent::LinkAdd { u: x, v }, None)
                    .expect("re-adding a dropped link is valid");
            }
        }
        FaultPlan::NodeJoin { .. } => {
            let n = sim.network().node_count();
            if n >= sim.network().n_bound() {
                return;
            }
            let a = NodeId::new((rng.next_u64() as usize) % n);
            let mut links = vec![a];
            if n > 1 {
                let b = NodeId::new((rng.next_u64() as usize) % n);
                if b != a {
                    links.push(b);
                }
            }
            sim.apply_topology_event(&TopologyEvent::NodeJoin { links }, Some(rng))
                .expect("derived join is valid");
        }
        _ => unreachable!("not a single scheduled topology event"),
    }
}

/// One churn perturbation: a new link appears between two non-adjacent
/// processors and a non-bridge link fails, in that order (the addition
/// can turn a former bridge into a removable link). Either half degrades
/// to a no-op when the graph has no candidate.
fn apply_churn_window<P: Protocol, M: Meter>(
    sim: &mut Simulation<'_, P, M>,
    rng: &mut dyn RngCore,
) {
    if let Some((u, v)) = pick_absent_link(sim.network().graph(), rng) {
        sim.apply_topology_event(&TopologyEvent::LinkAdd { u, v }, None)
            .expect("derived link addition is valid");
    }
    if let Some((u, v)) = pick_removable_link(sim.network().graph(), rng) {
        sim.apply_topology_event(&TopologyEvent::LinkFail { u, v }, None)
            .expect("derived link failure is valid");
    }
}

/// One *unrestricted* churn perturbation (`churn-any`): a new link
/// appears between two non-adjacent processors and then any link —
/// bridges included — fails, so the window may disconnect processors
/// from the root. Only disconnection-aware stacks ride this
/// ([`ScenarioMatrix::validate`] enforces it).
fn apply_any_churn_window<P: Protocol, M: Meter>(
    sim: &mut Simulation<'_, P, M>,
    rng: &mut dyn RngCore,
) {
    if let Some((u, v)) = pick_absent_link(sim.network().graph(), rng) {
        sim.apply_topology_event(&TopologyEvent::LinkAdd { u, v }, None)
            .expect("derived link addition is valid");
    }
    if let Some((u, v)) = pick_any_link(sim.network().graph(), rng) {
        sim.apply_topology_event(&TopologyEvent::LinkFail { u, v }, None)
            .expect("derived link failure is valid");
    }
}

/// A uniformly-ish sampled absent link (bounded rejection sampling —
/// `None` on tiny or near-complete graphs).
fn pick_absent_link(g: &Graph, rng: &mut dyn RngCore) -> Option<(NodeId, NodeId)> {
    let n = g.node_count();
    if n < 2 {
        return None;
    }
    for _ in 0..64 {
        let u = NodeId::new((rng.next_u64() as usize) % n);
        let v = NodeId::new((rng.next_u64() as usize) % n);
        if u == v {
            continue;
        }
        let adjacent = (0..g.degree(u)).any(|l| g.neighbor(u, Port::new(l)) == v);
        if !adjacent {
            return Some((u, v));
        }
    }
    None
}

/// A uniformly chosen link, bridge or not — `None` only on an edgeless
/// graph. The `churn-any` counterpart of [`pick_removable_link`].
fn pick_any_link(g: &Graph, rng: &mut dyn RngCore) -> Option<(NodeId, NodeId)> {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(g.edge_count());
    for u in g.nodes() {
        for l in 0..g.degree(u) {
            let v = g.neighbor(u, Port::new(l));
            if u.index() < v.index() {
                edges.push((u, v));
            }
        }
    }
    if edges.is_empty() {
        return None;
    }
    Some(edges[(rng.next_u64() as usize) % edges.len()])
}

/// A randomly chosen link whose failure keeps the network connected —
/// `None` when every link is a bridge (e.g. on a tree).
fn pick_removable_link(g: &Graph, rng: &mut dyn RngCore) -> Option<(NodeId, NodeId)> {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(g.edge_count());
    for u in g.nodes() {
        for l in 0..g.degree(u) {
            let v = g.neighbor(u, Port::new(l));
            if u.index() < v.index() {
                edges.push((u, v));
            }
        }
    }
    if edges.is_empty() {
        return None;
    }
    let start = (rng.next_u64() as usize) % edges.len();
    (0..edges.len())
        .map(|i| edges[(start + i) % edges.len()])
        .find(|&(u, v)| g.is_connected_without(u, v))
}

/// Renders the sharded synchronous executor's phase trace of the first
/// seed of the matrix's first cell as a Chrome trace-event JSON document
/// (`chrome://tracing` / Perfetto) — the `sno-lab run --trace` backend.
///
/// The re-run always uses [`EngineMode::SyncSharded`](sno_engine::EngineMode)
/// with the options' resolved shard count (raised to at least 2 — a
/// one-shard trace has nothing to attribute) and a parallel-activation
/// threshold of zero, so the guard/write/re-eval phases fan out over the
/// shard fleet (one trace lane per shard) even at lab-scale instances.
/// Steps with a single writer still run the serial path — pair the flag
/// with a daemon that selects many writers (`synchronous`,
/// `distributed`) for a meaningful trace.
/// Engine modes agree bit-for-bit on every trajectory, so the traced run
/// computes exactly what the campaign's run of the same seed computed.
///
/// Returns `None` for an empty matrix.
pub fn trace_first_cell(matrix: &ScenarioMatrix, options: &EngineOptions) -> Option<String> {
    let cells = matrix.cells();
    let cell = cells.first()?;
    Some(dispatch_stack(
        cell,
        matrix,
        TraceVisitor {
            cell,
            matrix,
            seed: matrix.seed_start,
            shards: options.resolved_shards().max(2),
        },
    ))
}

/// The `--trace` visitor: one seed, sharded executor, tracer attached.
struct TraceVisitor<'a> {
    cell: &'a CellSpec,
    matrix: &'a ScenarioMatrix,
    seed: u64,
    shards: usize,
}

impl StackVisitor for TraceVisitor<'_> {
    type Out = String;

    fn visit<P, L>(
        self,
        net: &Network,
        protocol: P,
        mode: Mode,
        legit: L,
        _detect: Option<Probe<'_, P>>,
    ) -> String
    where
        P: Protocol + Clone,
        L: Fn(&Network, &[P::State]) -> bool,
    {
        let mut daemon = self
            .cell
            .daemon
            .build(net, self.matrix.seed_start ^ DAEMON_SALT);
        let mut sim = Simulation::from_initial(net, protocol);
        sim.set_mode(sno_engine::EngineMode::SyncSharded);
        sim.configure_sync_sharding(self.shards, self.shards);
        sim.set_sync_parallel_threshold(0);
        sim.set_tracer(TraceBuffer::new());
        let mut rng = StdRng::seed_from_u64(self.seed);
        sim.reinit_random(&mut rng);
        daemon.reset(self.seed ^ DAEMON_SALT);
        let _ = run_phase(
            &mut sim,
            &mut daemon,
            &mode,
            &legit,
            net,
            self.matrix.max_steps,
        );
        sim.take_tracer()
            .expect("tracer was attached above")
            .to_chrome_json()
    }
}

/// The engine-mode label campaigns started with these options will run
/// under — printed in the `sno-lab run` report header (next to the
/// thread count) so cross-mode campaign diffs in CI are
/// self-describing.
pub fn engine_mode_label(options: &EngineOptions) -> String {
    use sno_engine::EngineMode;
    let name = |m| match m {
        EngineMode::FullSweep => "full-sweep",
        EngineMode::NodeDirty => "node-dirty",
        EngineMode::PortDirty => "port-dirty",
        EngineMode::SyncSharded => "sync-sharded",
    };
    match options.resolved_mode() {
        Some(EngineMode::SyncSharded) => {
            format!("sync-sharded (shards {})", options.resolved_shards())
        }
        Some(m) => name(m).to_string(),
        None => "port-dirty (default)".to_string(),
    }
}

/// Back-compat alias of [`engine_mode_label`] for environment-only
/// resolution.
pub fn active_engine_mode_name() -> String {
    engine_mode_label(&EngineOptions::default())
}

/// The engine mode requested via the environment, if any: the
/// `SNO_ENGINE_MODE` name, or the legacy `SNO_ENGINE_FULL_SWEEP=1`.
/// Unknown names panic — a silently ignored differential hook would make
/// the CI determinism gates vacuous.
fn engine_mode_from_env() -> Option<sno_engine::EngineMode> {
    use sno_engine::EngineMode;
    if std::env::var_os("SNO_ENGINE_FULL_SWEEP").is_some_and(|v| v == "1") {
        return Some(EngineMode::FullSweep);
    }
    let v = std::env::var("SNO_ENGINE_MODE").ok()?;
    match v.as_str() {
        "full-sweep" => Some(EngineMode::FullSweep),
        "node-dirty" => Some(EngineMode::NodeDirty),
        "port-dirty" => Some(EngineMode::PortDirty),
        "sync-sharded" | "sync" => Some(EngineMode::SyncSharded),
        other => panic!(
            "unknown SNO_ENGINE_MODE {other:?} (expected full-sweep, node-dirty, port-dirty, \
             or sync-sharded)"
        ),
    }
}

/// The shard count requested via `SNO_SYNC_SHARDS`, if any (the
/// `--shards` flag overrides it). Only consulted when the resolved mode
/// is the sharded executor.
fn sync_shards_from_env() -> Option<usize> {
    let v = std::env::var("SNO_SYNC_SHARDS").ok()?;
    Some(
        v.parse()
            .unwrap_or_else(|_| panic!("SNO_SYNC_SHARDS must be a positive integer, got {v:?}")),
    )
}

/// One convergence phase under the cell's detection mode.
fn run_phase<P, L, M>(
    sim: &mut Simulation<'_, P, M>,
    daemon: &mut Box<dyn Daemon>,
    mode: &Mode,
    legit: &L,
    net: &Network,
    max_steps: u64,
) -> (bool, u64, u64, u64)
where
    P: Protocol,
    L: Fn(&Network, &[P::State]) -> bool,
    M: Meter,
{
    match mode {
        Mode::Goal => {
            let r = sim.run_until(daemon, max_steps, |c| legit(net, c));
            (r.converged, r.moves, r.steps, r.rounds)
        }
        Mode::Silence => {
            let r = sim.run_until_silent(daemon, max_steps);
            // Evaluated against the simulation's own network, not the
            // `net` the cell was built from: under a topology-mutating
            // fault plan the two differ, and legitimacy is a property of
            // the *current* topology.
            let ok = r.converged && legit(sim.network(), sim.config());
            (ok, r.moves, r.steps, r.rounds)
        }
    }
}

/// Convenience for benches: one run of one cell, returning its record.
pub fn converge_once(cell: &CellSpec, seed: u64, max_steps: u64) -> RunRecord {
    let matrix = ScenarioMatrix::new("once")
        .topologies([cell.topology])
        .sizes([cell.n])
        .protocols([cell.protocol])
        .daemons([cell.daemon])
        .faults([cell.fault])
        .seeds(seed, 1)
        .max_steps(max_steps);
    if let Err(e) = matrix.validate() {
        panic!("invalid cell for converge_once: {e}");
    }
    let outcome = run_cell(cell, &matrix);
    outcome.runs[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DaemonSpec;
    use sno_core::dftno::dftno_orientation;
    use sno_graph::GeneratorSpec;

    fn tiny_matrix() -> ScenarioMatrix {
        ScenarioMatrix::new("tiny")
            .topologies([GeneratorSpec::Ring, GeneratorSpec::Star])
            .sizes([6])
            .protocols([
                ProtocolSpec::Dftno(TokenSubstrate::Oracle),
                ProtocolSpec::Stno(TreeSubstrate::Oracle),
            ])
            .daemons([DaemonSpec::CentralRandom])
            .seeds(0, 3)
            .max_steps(500_000)
    }

    #[test]
    fn tiny_campaign_fully_converges() {
        let report = run_campaign_with_threads(&tiny_matrix(), 2);
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.total_runs, 12);
        assert_eq!(report.total_converged, 12);
        for cell in &report.cells {
            assert_eq!(cell.convergence_rate, 1.0);
            assert!(cell.moves.is_some());
        }
    }

    #[test]
    fn campaigns_are_deterministic_across_thread_counts() {
        let m = tiny_matrix();
        let a = run_campaign_with_threads(&m, 1);
        let b = run_campaign_with_threads(&m, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn seed_chunk_size_policy() {
        // Plenty of cells: keep whole cells as the work unit.
        assert_eq!(seed_chunk_size(100, 64, 8), 100);
        // A single heavy cell on 4 threads splits into ≥ 8 chunks.
        assert!(seed_chunk_size(100, 1, 4) <= 13);
        // Never degenerates below one seed per chunk.
        assert_eq!(seed_chunk_size(1, 1, 8), 1);
        // Single-threaded fleets do not pay the chunking overhead.
        assert_eq!(seed_chunk_size(100, 1, 1), 100);
    }

    #[test]
    fn seed_chunking_splits_heavy_cells_and_stays_byte_identical() {
        // One cell, 13 seeds: cell-granular work would serialize on one
        // worker, so this exercises the chunked path — and the report
        // must not depend on how (or whether) the range was split.
        let m = ScenarioMatrix::new("heavy-cell")
            .topologies([GeneratorSpec::Ring])
            .sizes([8])
            .protocols([ProtocolSpec::Stno(TreeSubstrate::Oracle)])
            .daemons([DaemonSpec::Distributed])
            .seeds(3, 13)
            .max_steps(1_000_000);
        let a = run_campaign_with_threads(&m, 1);
        let b = run_campaign_with_threads(&m, 4);
        let c = run_campaign_with_threads(&m, 7);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.to_json(), c.to_json(), "byte-identical JSON");
        assert_eq!(a.cells[0].runs, 13);
        let seeds: Vec<u64> = run_cell(&m.cells()[0], &m)
            .runs
            .iter()
            .map(|r| r.seed)
            .collect();
        assert_eq!(seeds, (3..16).collect::<Vec<u64>>(), "seed order");
    }

    #[test]
    fn metered_campaigns_are_deterministic_and_additive_only() {
        use sno_engine::Counter;
        let m = tiny_matrix();
        let metered = EngineOptions {
            metrics: true,
            ..EngineOptions::default()
        };
        let a = run_campaign_with_options(&m, 1, &metered);
        let b = run_campaign_with_options(&m, 4, &metered);
        // Counter totals are byte-identical across thread counts (and
        // with them seed chunkings) — the whole report compares equal,
        // metrics included.
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        for cell in &a.cells {
            let metrics = cell.metrics.as_ref().expect("metrics collected");
            assert!(
                metrics.get(Counter::GuardEvals) > 0,
                "guards were evaluated"
            );
            assert!(metrics.get(Counter::TxnCommits) > 0, "moves were committed");
            let moves = cell.moves.as_ref().expect("all runs converged");
            assert_eq!(
                metrics.get(Counter::TxnCommits),
                (moves.mean * moves.count as f64).round() as u64,
                "one transaction commit per move"
            );
        }
        assert!(a
            .to_json()
            .contains("\"metrics\":{\"counters\":{\"guard_evals\":"));
        assert!(a.to_markdown().contains("### Metrics"));

        // The unmetered campaign computes the same runs and renders the
        // same (metrics-free) sections — the meter only ever adds.
        let plain = run_campaign_with_threads(&m, 2);
        assert!(plain.cells.iter().all(|c| c.metrics.is_none()));
        assert!(plain.cells.iter().all(|c| c.exchange.is_none()));
        assert!(!plain.to_json().contains("\"metrics\""));
        assert!(!plain.to_json().contains("\"exchange\""));
        assert!(!plain.to_markdown().contains("### Metrics"));
        assert!(!plain.to_markdown().contains("### Exchange"));
        for (metered_cell, plain_cell) in a.cells.iter().zip(&plain.cells) {
            assert_eq!(metered_cell.moves, plain_cell.moves);
            assert_eq!(metered_cell.steps, plain_cell.steps);
            assert_eq!(metered_cell.rounds, plain_cell.rounds);
            assert_eq!(metered_cell.converged, plain_cell.converged);
        }
    }

    #[test]
    fn metered_sharded_campaign_reports_exchange_breakdown() {
        // Large enough that the synchronous enabled set clears the
        // sharded executor's dense-step threshold — smaller instances
        // fall back to the serial step and record no exchanges.
        let m = ScenarioMatrix::new("exchange")
            .topologies([GeneratorSpec::Hubs { hubs: 3 }])
            .sizes([256])
            .protocols([ProtocolSpec::Stno(TreeSubstrate::Oracle)])
            .daemons([DaemonSpec::Synchronous])
            .seeds(0, 2)
            .max_steps(100_000);
        let options = EngineOptions {
            mode: Some(sno_engine::EngineMode::SyncSharded),
            shards: Some(4),
            metrics: true,
        };
        let a = run_campaign_with_options(&m, 1, &options);
        let b = run_campaign_with_options(&m, 4, &options);
        // For a fixed mode and shard count the breakdown is
        // deterministic: fleet threads and seed chunkings cannot leak.
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        let ex = a.cells[0]
            .exchange
            .as_ref()
            .expect("sharded hub run crosses boundaries");
        assert!(ex.stats.exchanges > 0, "exchange phases ran");
        assert!(
            ex.stats.boundary_ports > 0,
            "hub topology hands ports across shards"
        );
        assert_eq!(
            ex.per_shard.iter().sum::<u64>(),
            ex.stats.boundary_ports,
            "per-shard counts partition the boundary total"
        );
        assert!(a.to_json().contains("\"exchange\":{\"local_ports\":"));
        assert!(a.to_markdown().contains("### Exchange boundary traffic"));
    }

    #[test]
    fn trace_renders_shard_lanes_for_the_first_cell() {
        let m = ScenarioMatrix::new("trace")
            .topologies([GeneratorSpec::Hubs { hubs: 3 }])
            .sizes([24])
            .protocols([ProtocolSpec::Stno(TreeSubstrate::Oracle)])
            .daemons([DaemonSpec::Synchronous])
            .seeds(0, 1)
            .max_steps(100_000);
        let options = EngineOptions {
            shards: Some(4),
            ..EngineOptions::default()
        };
        let doc = trace_first_cell(&m, &options).expect("non-empty matrix");
        assert!(doc.starts_with("{\"traceEvents\":["), "{doc}");
        for needle in [
            "\"ph\":\"M\"",
            "\"name\":\"thread_name\"",
            "\"shard 0\"",
            "\"shard 3\"",
            "\"control\"",
            "\"ph\":\"X\"",
            "\"name\":\"resolve\"",
            "\"name\":\"write\"",
            "\"name\":\"barrier\"",
        ] {
            assert!(doc.contains(needle), "missing {needle} in {doc}");
        }
    }

    #[test]
    fn dftno_matches_agrees_with_full_predicate() {
        use sno_core::dftno::dftno_golden;
        use sno_engine::daemon::CentralRoundRobin;

        let g = GeneratorSpec::ChordalRing.build(8, 5);
        let root = NodeId::new(0);
        let oracle = OracleToken::new(&g, root);
        let net = Network::new(g, root);
        let golden = golden_dfs_orientation(&net);
        let mut rng = StdRng::seed_from_u64(1);
        let mut sim = Simulation::from_random(&net, Dftno::new(oracle), &mut rng);
        let mut daemon = CentralRoundRobin::new();
        for _ in 0..50_000 {
            assert_eq!(
                dftno_matches(&golden, &net, sim.config()),
                dftno_golden(&net, sim.config()),
                "predicates must agree on every visited configuration"
            );
            if dftno_golden(&net, sim.config()) {
                break;
            }
            sim.step(&mut daemon);
        }
        assert!(dftno_golden(&net, sim.config()), "run must converge");
        // The extraction helper agrees as well.
        assert_eq!(dftno_orientation(sim.config()), golden);
    }

    #[test]
    fn fault_plans_measure_recovery() {
        let m = ScenarioMatrix::new("faulty")
            .topologies([GeneratorSpec::Path])
            .sizes([8])
            .protocols([ProtocolSpec::Stno(TreeSubstrate::Bfs)])
            .daemons([DaemonSpec::CentralRoundRobin])
            .faults([FaultPlan::AfterConvergence { hits: 2 }])
            .seeds(0, 3)
            .max_steps(2_000_000);
        let report = run_campaign_with_threads(&m, 2);
        let cell = &report.cells[0];
        assert_eq!(cell.convergence_rate, 1.0);
        let rec = cell.recovery_moves.as_ref().expect("recovery measured");
        assert_eq!(rec.count, 3);
        assert_eq!(cell.recovered, 3);
    }

    #[test]
    fn at_step_plans_hit_mid_run_and_measure_recovery() {
        let m = ScenarioMatrix::new("mid-run")
            .topologies([GeneratorSpec::Ring])
            .sizes([8])
            .protocols([ProtocolSpec::Stno(TreeSubstrate::Bfs)])
            .daemons([DaemonSpec::CentralRoundRobin])
            .faults([FaultPlan::AtStep { step: 25, hits: 2 }])
            .seeds(0, 3)
            .max_steps(2_000_000);
        let report = run_campaign_with_threads(&m, 2);
        let cell = &report.cells[0];
        assert_eq!(cell.convergence_rate, 1.0);
        assert_eq!(cell.recovered, 3);
        // The record's totals span both segments, so they dominate the
        // recovery phase alone.
        let rec = cell.recovery_steps.as_ref().expect("recovery measured");
        let all = cell.steps.as_ref().expect("steps measured");
        assert!(all.mean >= rec.mean);
    }

    fn topology_matrix(faults: &[FaultPlan]) -> ScenarioMatrix {
        ScenarioMatrix::new("topo")
            .topologies([GeneratorSpec::Hubs { hubs: 2 }, GeneratorSpec::RandomTree])
            .sizes([10])
            .protocols([ProtocolSpec::Stno(TreeSubstrate::Bfs)])
            .daemons([DaemonSpec::Distributed])
            .faults(faults.iter().copied())
            .seeds(0, 3)
            .max_steps(2_000_000)
    }

    #[test]
    fn topology_fault_plans_converge_after_every_event() {
        let m = topology_matrix(&[
            FaultPlan::LinkFail { step: 30 },
            FaultPlan::LinkAdd { step: 30 },
            FaultPlan::NodeCrash { step: 30 },
            FaultPlan::NodeJoin { step: 30 },
            FaultPlan::Churn { rate: 3, seed: 5 },
        ]);
        let report = run_campaign_with_threads(&m, 2);
        assert_eq!(report.cells.len(), 10);
        for cell in &report.cells {
            let label = format!("{} fault={}", cell.topology, cell.fault);
            assert_eq!(cell.convergence_rate, 1.0, "{label}");
            assert_eq!(cell.recovered, 3, "{label}");
        }
    }

    #[test]
    fn topology_campaigns_are_deterministic_across_threads_and_modes() {
        let m = topology_matrix(&[
            FaultPlan::NodeJoin { step: 20 },
            FaultPlan::Churn { rate: 2, seed: 9 },
        ]);
        let a = run_campaign_with_threads(&m, 1);
        let b = run_campaign_with_threads(&m, 4);
        assert_eq!(a, b);
        // Engine modes agree byte-for-byte even across topology events —
        // the JSON is the CI determinism artifact.
        for mode in [
            sno_engine::EngineMode::FullSweep,
            sno_engine::EngineMode::NodeDirty,
            sno_engine::EngineMode::SyncSharded,
        ] {
            let options = EngineOptions {
                mode: Some(mode),
                shards: Some(3),
                ..EngineOptions::default()
            };
            let c = run_campaign_with_options(&m, 2, &options);
            assert_eq!(a.to_json(), c.to_json(), "{mode:?}");
        }
    }

    #[test]
    fn churn_any_campaign_measures_detection_latency_deterministically() {
        // On a random tree every link is a bridge, so unrestricted churn
        // windows genuinely sever processors and the detector has real
        // work to do.
        let m = ScenarioMatrix::new("churn-any-test")
            .topologies([GeneratorSpec::RandomTree])
            .sizes([10])
            .protocols([ProtocolSpec::Dcd])
            .daemons([DaemonSpec::Distributed])
            .faults([FaultPlan::ChurnAny { rate: 2, seed: 3 }])
            .seeds(0, 4)
            .max_steps(2_000_000);
        let a = run_campaign_with_threads(&m, 1);
        let b = run_campaign_with_threads(&m, 4);
        assert_eq!(a, b, "detection latency is seed-derived, thread-free");
        let cell = &a.cells[0];
        assert_eq!(cell.convergence_rate, 1.0, "dcd rides out every window");
        assert_eq!(cell.recovered, 4, "every run's windows re-converged");
        let d = cell
            .detection_steps
            .as_ref()
            .expect("churn-any reports detection latency");
        assert_eq!(d.count, 4, "one detection total per converged run");
        assert!(
            d.max > 0,
            "at least one window severed processors and made the detector count"
        );
        assert!(a.to_json().contains("\"detection_steps\""));
        assert!(a.to_markdown().contains("### Detection latency"));
        // Restricted churn cells don't grow the new column.
        assert!(!run_campaign_with_threads(
            &ScenarioMatrix::new("plain-churn")
                .topologies([GeneratorSpec::RandomTree])
                .sizes([10])
                .protocols([ProtocolSpec::Stno(TreeSubstrate::Bfs)])
                .daemons([DaemonSpec::Distributed])
                .faults([FaultPlan::Churn { rate: 1, seed: 3 }])
                .seeds(0, 2)
                .max_steps(2_000_000),
            1,
        )
        .to_json()
        .contains("detection_steps"));
    }

    #[test]
    fn churn_preset_is_a_valid_topology_campaign() {
        let m = crate::matrix::churn_preset();
        m.validate().unwrap();
        assert!(m.seeds_per_cell >= 32);
        let rates: std::collections::HashSet<u8> = m
            .faults
            .iter()
            .map(|f| match f {
                FaultPlan::Churn { rate, .. } => *rate,
                other => panic!("non-churn plan {other} in the churn preset"),
            })
            .collect();
        assert!(rates.len() >= 3, "at least three churn rates");
    }

    #[test]
    fn converge_once_matches_campaign_cell() {
        let m = tiny_matrix();
        let cells = m.cells();
        let outcome = run_cell(&cells[0], &m);
        let single = converge_once(&cells[0], m.seed_start, m.max_steps);
        assert_eq!(outcome.runs[0], single);
    }
}
