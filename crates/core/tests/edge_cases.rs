//! Edge-case integration tests for the orientation protocols: degenerate
//! networks, adversarial topologies, and bound slack.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sno_core::dftno::{dftno_golden, dftno_orientation, Dftno};
use sno_core::stno::{stno_golden, stno_orientation, Stno};
use sno_engine::daemon::{CentralRandom, CentralRoundRobin, LocallyCentralRandom};
use sno_engine::{Network, Simulation};
use sno_graph::{generators, traverse, NodeId, RootedTree};
use sno_token::OracleToken;
use sno_tree::{BfsSpanningTree, OracleSpanningTree};

fn bfs_tree_of(g: &sno_graph::Graph) -> RootedTree {
    let b = traverse::bfs(g, NodeId::new(0));
    RootedTree::from_parents(g, NodeId::new(0), &b.parent).unwrap()
}

#[test]
fn singleton_network_orients_trivially() {
    // One processor, zero edges: the root names itself 0; there is nothing
    // to label. Both protocols must handle the degenerate case.
    let g = generators::singleton();
    let root = NodeId::new(0);
    let oracle = OracleToken::new(&g, root);
    let net = Network::new(g, root);
    let mut rng = StdRng::seed_from_u64(0);
    let mut sim = Simulation::from_random(&net, Dftno::new(oracle), &mut rng);
    let run = sim.run_until(&mut CentralRoundRobin::new(), 1_000, |c| {
        dftno_golden(&net, c)
    });
    assert!(run.converged);
    assert_eq!(dftno_orientation(sim.config()).names, vec![0]);
}

#[test]
fn singleton_network_stno() {
    let g = generators::singleton();
    let tree = bfs_tree_of(&g);
    let oracle = OracleSpanningTree::from_graph(&g, &tree);
    let net = Network::new(g, NodeId::new(0));
    let mut rng = StdRng::seed_from_u64(0);
    let mut sim = Simulation::from_random(&net, Stno::new(oracle), &mut rng);
    let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 1_000);
    assert!(run.converged);
    assert!(stno_golden(&net, &tree, sim.config()));
}

#[test]
fn two_node_network() {
    let g = generators::path(2);
    let root = NodeId::new(0);
    let oracle = OracleToken::new(&g, root);
    let net = Network::new(g, root);
    let mut rng = StdRng::seed_from_u64(1);
    let mut sim = Simulation::from_random(&net, Dftno::new(oracle), &mut rng);
    let run = sim.run_until(&mut CentralRandom::seeded(1), 10_000, |c| {
        dftno_golden(&net, c)
    });
    assert!(run.converged);
    let o = dftno_orientation(sim.config());
    assert_eq!(o.names, vec![0, 1]);
    // With N = 2 both directions of the single edge carry label 1.
    assert_eq!(o.labels, vec![vec![1], vec![1]]);
}

#[test]
fn petersen_graph_both_protocols() {
    let g = generators::petersen();
    let root = NodeId::new(0);

    let oracle = OracleToken::new(&g, root);
    let net = Network::new(g.clone(), root);
    let mut rng = StdRng::seed_from_u64(2);
    let mut sim = Simulation::from_random(&net, Dftno::new(oracle), &mut rng);
    let run = sim.run_until(&mut CentralRandom::seeded(2), 1_000_000, |c| {
        dftno_golden(&net, c)
    });
    assert!(run.converged, "DFTNO on the Petersen graph");

    let tree = bfs_tree_of(&g);
    let mut sim = Simulation::from_random(&net, Stno::new(BfsSpanningTree), &mut rng);
    let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 1_000_000);
    assert!(run.converged, "STNO on the Petersen graph");
    assert!(stno_golden(&net, &tree, sim.config()));
}

#[test]
fn complete_bipartite_with_loose_bound() {
    let g = generators::complete_bipartite(3, 4);
    let tree = bfs_tree_of(&g);
    let net = Network::with_bound(g, NodeId::new(0), 20);
    let mut rng = StdRng::seed_from_u64(3);
    let mut sim = Simulation::from_random(&net, Stno::new(BfsSpanningTree), &mut rng);
    let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 1_000_000);
    assert!(run.converged);
    assert!(stno_golden(&net, &tree, sim.config()));
    let o = stno_orientation(sim.config());
    assert!(o.sp1(20));
    assert!(o.sp2(&net), "labels are taken modulo the loose N = 20");
}

#[test]
fn wheel_hub_root_vs_rim_root() {
    // Rooting at the hub (ecc 1) vs at a rim node (ecc 2) produces
    // different but equally valid orientations.
    let g = generators::wheel(8);
    for root in [NodeId::new(0), NodeId::new(3)] {
        let tree = {
            let b = traverse::bfs(&g, root);
            RootedTree::from_parents(&g, root, &b.parent).unwrap()
        };
        let oracle = OracleSpanningTree::from_graph(&g, &tree);
        let net = Network::new(g.clone(), root);
        let mut rng = StdRng::seed_from_u64(4);
        let mut sim = Simulation::from_random(&net, Stno::new(oracle), &mut rng);
        let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 1_000_000);
        assert!(run.converged, "root {root}");
        assert!(stno_golden(&net, &tree, sim.config()), "root {root}");
        // The root always gets name 0.
        assert_eq!(stno_orientation(sim.config()).names[root.index()], 0);
    }
}

#[test]
fn stno_under_locally_central_daemon() {
    let g = generators::random_connected(14, 9, 5);
    let tree = bfs_tree_of(&g);
    let net = Network::new(g, NodeId::new(0));
    let mut daemon = LocallyCentralRandom::seeded(8, &net);
    let mut rng = StdRng::seed_from_u64(5);
    let mut sim = Simulation::from_random(&net, Stno::new(BfsSpanningTree), &mut rng);
    let run = sim.run_until_silent(&mut daemon, 2_000_000);
    assert!(run.converged);
    assert!(stno_golden(&net, &tree, sim.config()));
}

#[test]
fn dftno_max_values_track_subtree_maxima_mid_round() {
    // White-box check of UpdateMax: after a full stabilized round, every
    // node's Max is at least its own name and at most n − 1.
    let g = generators::random_connected(10, 6, 7);
    let root = NodeId::new(0);
    let oracle = OracleToken::new(&g, root);
    let net = Network::new(g, root);
    let mut rng = StdRng::seed_from_u64(6);
    let mut sim = Simulation::from_random(&net, Dftno::new(oracle), &mut rng);
    let run = sim.run_until(&mut CentralRandom::seeded(3), 1_000_000, |c| {
        dftno_golden(&net, c)
    });
    assert!(run.converged);
    let mut daemon = CentralRandom::seeded(4);
    for _ in 0..500 {
        sim.step(&mut daemon);
        for p in net.nodes() {
            let s = sim.state(p);
            assert!(s.max < 10, "Max stays within 0..n");
        }
    }
}
