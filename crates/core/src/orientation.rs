//! The orientation specification `SP_NO` and the chordal sense of
//! direction (Chapter 2.2–2.3).

use sno_engine::Network;
use sno_graph::{NodeId, Port};

/// A snapshot of the orientation variables of every processor: names `η`
/// and per-port edge labels `π`.
///
/// Extracted from protocol configurations (see [`crate::dftno`] /
/// [`crate::stno`]) so the same verifier serves both algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Orientation {
    /// `names[p]` = `η_p`.
    pub names: Vec<u32>,
    /// `labels[p][l]` = `π_p[l]`.
    pub labels: Vec<Vec<u32>>,
}

impl Orientation {
    /// The orientation a correct protocol should reach, computed
    /// sequentially from a name assignment: `π_p[l] = (η_p − η_q) mod N`.
    ///
    /// # Panics
    ///
    /// Panics if `names.len()` differs from the network size.
    pub fn from_names(net: &Network, names: Vec<u32>) -> Self {
        assert_eq!(names.len(), net.node_count(), "one name per processor");
        let n_bound = net.n_bound() as u32;
        let g = net.graph();
        let labels = g
            .nodes()
            .map(|p| {
                g.neighbors(p)
                    .iter()
                    .map(|&q| chordal_label(names[p.index()], names[q.index()], n_bound))
                    .collect()
            })
            .collect();
        Orientation { names, labels }
    }

    /// `SP1`: all names are unique and within `0 … N−1`.
    pub fn sp1(&self, n_bound: usize) -> bool {
        let mut seen = vec![false; n_bound];
        self.names.iter().all(|&e| {
            let ok = (e as usize) < n_bound && !seen[e as usize];
            if ok {
                seen[e as usize] = true;
            }
            ok
        })
    }

    /// `SP2`: every edge label satisfies `π_p[l] = (η_p − η_q) mod N`.
    pub fn sp2(&self, net: &Network) -> bool {
        let n_bound = net.n_bound() as u32;
        let g = net.graph();
        g.nodes().all(|p| {
            let mine = &self.labels[p.index()];
            mine.len() == g.degree(p)
                && g.neighbors(p).iter().enumerate().all(|(l, &q)| {
                    mine[l] == chordal_label(self.names[p.index()], self.names[q.index()], n_bound)
                })
        })
    }

    /// The full specification `SP_NO = SP1 ∧ SP2`.
    pub fn satisfies_spec(&self, net: &Network) -> bool {
        self.sp1(net.n_bound()) && self.sp2(net)
    }

    /// **Local orientation**: at every node the labeling is injective
    /// (no two incident edges share a label). Guaranteed by `SP1 ∧ SP2`
    /// (Lemma 3.2.2) but checked directly here.
    pub fn is_locally_oriented(&self) -> bool {
        self.labels.iter().all(|ls| {
            let mut sorted = ls.clone();
            sorted.sort_unstable();
            sorted.windows(2).all(|w| w[0] != w[1])
        })
    }

    /// **Edge symmetry**: knowing the label on one side determines the
    /// other — for the chordal labeling, `π_p[l] + π_q[l'] ≡ 0 (mod N)`
    /// across every edge.
    pub fn has_edge_symmetry(&self, net: &Network) -> bool {
        let n_bound = net.n_bound() as u32;
        let g = net.graph();
        g.nodes().all(|p| {
            (0..g.degree(p)).all(|l| {
                let l = Port::new(l);
                let q = g.neighbor(p, l);
                let back = g.back_port(p, l);
                let a = self.labels[p.index()][l.index()];
                let b = self.labels[q.index()][back.index()];
                (a + b).is_multiple_of(n_bound)
            })
        })
    }

    /// **Locally symmetric orientation** = local orientation ∧ edge
    /// symmetry (Chapter 1.3).
    pub fn is_locally_symmetric(&self, net: &Network) -> bool {
        self.is_locally_oriented() && self.has_edge_symmetry(net)
    }

    /// Verifies the labeling is a **chordal sense of direction**: some
    /// cyclic ordering `ψ` of the nodes exists under which every label is
    /// the cyclic distance `δ(p, q)`. With `SP1 ∧ SP2` the ordering is the
    /// one induced by the names; this checker reconstructs it and
    /// re-derives every label from scratch.
    pub fn is_chordal_sense_of_direction(&self, net: &Network) -> bool {
        if !self.sp1(net.n_bound()) {
            return false;
        }
        // ψ orders nodes by name; δ(p, q) = (η_p − η_q) mod N matches the
        // definition with the successor function ψ(x) = name − 1 … any
        // cyclic shift works; SP2 is exactly the distance condition.
        self.sp2(net)
    }
}

/// The chordal label of the edge `(p, q)` at `p`: `(η_p − η_q) mod N`.
///
/// Total for any inputs (corrupt out-of-range names are reduced mod `N`
/// first), so verifiers can be run against arbitrary configurations.
///
/// # Panics
///
/// Panics if `n_bound == 0`.
pub fn chordal_label(eta_p: u32, eta_q: u32, n_bound: u32) -> u32 {
    assert!(n_bound > 0, "N must be positive");
    let p = eta_p % n_bound;
    let q = eta_q % n_bound;
    (p + n_bound - q) % n_bound
}

/// The **per-port** edge-label validity predicate: `π_p[l] ==
/// (η_p − η_q) mod N` for one incident link.
///
/// This is the unit of `DFTNO`/`STNO` guard *port-separability* (what
/// makes the engine's port-dirty invalidation exact for the `Edgelabel`
/// actions): the whole-node `InvalidEdgelabel(p)` guard is the disjunction
/// of this predicate over ports, each conjunct reading only `p`'s own
/// variables and the single neighbor behind `l` — strictly-local edge
/// labels in the sense of Itkis–Levin's flat holonomies.
///
/// # Panics
///
/// Panics if `n_bound == 0`.
pub fn chordal_label_valid(pi_l: u32, eta_p: u32, eta_q: u32, n_bound: u32) -> bool {
    pi_l == chordal_label(eta_p, eta_q, n_bound)
}

/// Recovers the neighbor's absolute name from a node's own name and the
/// edge label — the sense-of-direction property that lets processors refer
/// to each other by name without communication: `η_q = (η_p − π_p[l]) mod
/// N`.
///
/// # Panics
///
/// Panics if `n_bound == 0`.
pub fn neighbor_name(eta_p: u32, label: u32, n_bound: u32) -> u32 {
    assert!(n_bound > 0, "N must be positive");
    let p = eta_p % n_bound;
    let l = label % n_bound;
    (p + n_bound - l) % n_bound
}

/// Convenience: the golden orientation induced by first-DFS ranks — what
/// `DFTNO` must converge to (and `STNO` over a DFS tree, experiment E9).
pub fn golden_dfs_orientation(net: &Network) -> Orientation {
    let dfs = sno_graph::traverse::first_dfs(net.graph(), net.root());
    let names = dfs.rank.iter().map(|&r| r as u32).collect();
    Orientation::from_names(net, names)
}

/// Convenience: the golden orientation induced by the preorder ranks of a
/// spanning tree — what `STNO` over that tree must converge to.
pub fn golden_preorder_orientation(net: &Network, tree: &sno_graph::RootedTree) -> Orientation {
    let names = tree.preorder_ranks().iter().map(|&r| r as u32).collect();
    Orientation::from_names(net, names)
}

/// Renders an oriented network as Graphviz DOT: nodes captioned with
/// their names, every edge captioned with its two chordal labels
/// (`δ / N−δ`).
///
/// # Example
///
/// ```
/// use sno_core::orientation::{golden_dfs_orientation, orientation_to_dot};
/// use sno_engine::Network;
///
/// let net = Network::new(sno_graph::generators::ring(4), sno_graph::NodeId::new(0));
/// let o = golden_dfs_orientation(&net);
/// let dot = orientation_to_dot(&net, &o);
/// assert!(dot.contains("label=\"1/3\""));
/// ```
pub fn orientation_to_dot(net: &Network, o: &Orientation) -> String {
    let g = net.graph();
    sno_graph::dot::to_dot(
        g,
        |p| format!("η={}", o.names[p.index()]),
        |u, v| {
            let lu = g.port_to(u, v).expect("edge exists");
            let lv = g.port_to(v, u).expect("edge exists");
            Some(format!(
                "{}/{}",
                o.labels[u.index()][lu.index()],
                o.labels[v.index()][lv.index()]
            ))
        },
    )
}

/// Formats the labels of one node for reports: `port→label` pairs.
pub fn format_labels(o: &Orientation, p: NodeId) -> String {
    o.labels[p.index()]
        .iter()
        .enumerate()
        .map(|(l, lab)| format!("p{l}→{lab}"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_graph::generators;

    fn ring_net(n: usize) -> Network {
        Network::new(generators::ring(n), NodeId::new(0))
    }

    fn identity_names(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn identity_orientation_on_ring_satisfies_spec() {
        let net = ring_net(6);
        let o = Orientation::from_names(&net, identity_names(6));
        assert!(o.satisfies_spec(&net));
        assert!(o.is_locally_oriented());
        assert!(o.has_edge_symmetry(&net));
        assert!(o.is_chordal_sense_of_direction(&net));
    }

    #[test]
    fn ring_labels_are_plus_minus_one() {
        let net = ring_net(5);
        let o = Orientation::from_names(&net, identity_names(5));
        // Node 2 sees node 1 (label 1) and node 3 (label 5−1 = 4).
        assert_eq!(o.labels[2], vec![1, 4]);
    }

    #[test]
    fn sp1_rejects_duplicates_and_out_of_range() {
        let net = ring_net(4);
        let dup = Orientation::from_names(&net, vec![0, 1, 1, 3]);
        assert!(!dup.sp1(4));
        let oor = Orientation::from_names(&net, vec![0, 1, 2, 7]);
        assert!(!oor.sp1(4));
    }

    #[test]
    fn sp2_rejects_wrong_labels() {
        let net = ring_net(4);
        let mut o = Orientation::from_names(&net, identity_names(4));
        o.labels[1][0] = 2; // should be (1 − 0) mod 4 = 1
        assert!(!o.sp2(&net));
        assert!(!o.satisfies_spec(&net));
    }

    #[test]
    fn edge_symmetry_inverse_modulo_n() {
        // "if the link between p and q is labeled d at node p, it is
        // labeled N − d at node q."
        let net = ring_net(8);
        let o = Orientation::from_names(&net, identity_names(8));
        let g = net.graph();
        for p in g.nodes() {
            for l in 0..g.degree(p) {
                let l = Port::new(l);
                let q = g.neighbor(p, l);
                let back = g.back_port(p, l);
                let d = o.labels[p.index()][l.index()];
                assert_eq!(o.labels[q.index()][back.index()], (8 - d) % 8);
            }
        }
    }

    #[test]
    fn neighbor_name_round_trips() {
        let n = 16u32;
        for eta_p in 0..n {
            for eta_q in 0..n {
                if eta_p == eta_q {
                    continue;
                }
                let label = chordal_label(eta_p, eta_q, n);
                assert_eq!(neighbor_name(eta_p, label, n), eta_q);
            }
        }
    }

    #[test]
    fn loose_bound_spec_holds() {
        // N > n: names 0..n−1 are still unique in 0..N−1 and labels are
        // taken mod N.
        let g = generators::path(4);
        let net = Network::with_bound(g, NodeId::new(0), 11);
        let o = Orientation::from_names(&net, identity_names(4));
        assert!(o.satisfies_spec(&net));
        assert!(o.has_edge_symmetry(&net));
    }

    #[test]
    fn golden_dfs_orientation_is_valid_everywhere() {
        for (i, t) in generators::Topology::ALL.into_iter().enumerate() {
            let g = t.build(12, 9);
            let net = Network::new(g, NodeId::new(0));
            let o = golden_dfs_orientation(&net);
            assert!(o.satisfies_spec(&net), "topology {t} seed {i}");
            assert!(o.is_locally_symmetric(&net), "topology {t}");
        }
    }

    #[test]
    fn local_orientation_catches_collisions() {
        let net = ring_net(4);
        let mut o = Orientation::from_names(&net, identity_names(4));
        o.labels[0][1] = o.labels[0][0];
        assert!(!o.is_locally_oriented());
    }

    #[test]
    fn format_labels_is_stable() {
        let net = ring_net(4);
        let o = Orientation::from_names(&net, identity_names(4));
        assert_eq!(format_labels(&o, NodeId::new(1)), "p0→1 p1→3");
    }
}
