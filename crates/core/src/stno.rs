//! **Algorithm 4.1.2 — `STNO`**: network orientation using a spanning
//! tree.
//!
//! The protocol runs on top of any [`SpanningTree`] substrate and keeps
//! four orientation variables per processor: the subtree weight
//! `Weight_p`, the name `η_p`, the range starts `Start_p[q]` for each
//! child, and the edge labels `π_p[l]`. Mechanics (Figure 4.1.1):
//!
//! 1. **weights, bottom-up** — every leaf reports `Weight = 1`; every
//!    other node drives `Weight := 1 + Σ_{q ∈ D_p} Weight_q`
//!    (`CalcWeight`);
//! 2. **names, top-down** — the root takes `η = 0` and `Distribute`s the
//!    remaining range over its children in port order, each child
//!    receiving as many numbers as its subtree weighs; every node adopts
//!    the lowest number of its range (`η := Start_{A_p}[p]`) and
//!    redistributes the rest. The stabilized names are the preorder ranks;
//! 3. **edge labels** — once `η` is valid a node labels *every* incident
//!    edge, tree and non-tree, with `π_p[l] = (η_p − η_q) mod N`.
//!
//! Stabilization takes `O(h)` steps after the tree stabilizes (Theorem
//! 4.2.3 and §4.2.3), measured in experiment E5.
//!
//! ## Faithfulness note
//!
//! The thesis text triggers `Distribute_p` only inside the node-labeling
//! actions (`IN`/`RN`), whose guards watch `η_p` alone. Started from an
//! arbitrary configuration in which `η_p` happens to be correct while
//! `Start_p` is corrupt, no printed action would ever rewrite `Start_p`
//! and the children below it could keep invalid names forever. We add the
//! implied standalone repair action (`DS`: `η` valid ∧ `Start` differs
//! from what `Distribute` would write → `Distribute`), which the paper's
//! convergence proof (Lemma 4.2.1) implicitly assumes; it does not change
//! the `O(h)` bound.

use std::hash::Hash;

use rand::Rng as _;
use rand::RngCore;
use sno_engine::protocol::ProjectedView;
use sno_engine::{
    ApplyProfile, LayerLayout, LayerTxn, Network, NodeCtx, NodeView, PortCache, PortVerdict,
    Protocol, ReadScope, Scratch, SpaceMeasured, StateTxn,
};
use sno_graph::{Port, RootedTree};
use sno_tree::SpanningTree;

use crate::orientation::{
    chordal_label, chordal_label_valid, golden_preorder_orientation, Orientation,
};

/// Per-processor state: the substrate's variables plus the orientation
/// variables of Algorithm 4.1.2.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct StnoState<S> {
    /// The spanning-tree substrate's variables.
    pub tree: S,
    /// `Weight_p ∈ {1, …, N}` — the believed size of the subtree at `p`.
    pub weight: u32,
    /// The node name `η_p ∈ {0, …, N−1}`.
    pub eta: u32,
    /// `Start_p[l]` — the first name of the range granted to the child
    /// behind port `l` (only child ports are meaningful).
    pub start: Vec<u32>,
    /// The edge labels `π_p[l]`, one per port (tree *and* non-tree edges).
    pub pi: Vec<u32>,
}

/// Manual so `clone_from` is field-wise and reuses the per-port vector
/// capacities — the engine's copy-on-write stash depends on this to
/// keep multi-writer preservations allocation-free.
impl<S: Clone> Clone for StnoState<S> {
    fn clone(&self) -> Self {
        StnoState {
            tree: self.tree.clone(),
            weight: self.weight,
            eta: self.eta,
            start: self.start.clone(),
            pi: self.pi.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.tree.clone_from(&source.tree);
        self.weight = source.weight;
        self.eta = source.eta;
        self.start.clone_from(&source.start);
        self.pi.clone_from(&source.pi);
    }
}

/// Actions of `STNO` (grouped; the paper spells them per role as
/// `{RN, RE, RW}`, `{IN, IE, IW}`, `{LN, LE, LW}` — the role only changes
/// which target values the guards compare against).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StnoAction<A> {
    /// A substrate action (tree maintenance).
    Tree(A),
    /// `IW`/`RW`/`LW`: `Weight := 1 + Σ Weight_q` (leaves: 1).
    CalcWeight,
    /// `IN`/`RN`/`LN`: adopt the name granted by the parent (0 at the
    /// root), then `Distribute` and `Edgelabel` in the same atomic step.
    NodeLabel,
    /// The implied standalone `Distribute` repair (see module docs).
    Distribute,
    /// `IE`/`RE`/`LE`: rewrite every inconsistent `π_p[l]`.
    EdgeLabel,
}

/// The `STNO` protocol over a spanning-tree substrate `T`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stno<T> {
    tree: T,
}

fn tree_of<S>(s: &StnoState<S>) -> &S {
    &s.tree
}

fn tree_of_mut<S>(s: &mut StnoState<S>) -> &mut S {
    &mut s.tree
}

type TreeView<'a, S, V> = ProjectedView<'a, StnoState<S>, V, fn(&StnoState<S>) -> &S>;

/// [`StateTxn::note_self`] bit: `η` changed.
const NOTE_ETA: u64 = 1;
/// Note bit: `π` changed.
const NOTE_PI: u64 = 1 << 1;
/// Note bit: `Weight` changed.
const NOTE_WEIGHT: u64 = 1 << 2;
/// Note bit: some `Start` slot changed.
const NOTE_START: u64 = 1 << 3;
/// The substrate's note bits start here (meaningful only for a future
/// separable-but-live tree; a frozen substrate never moves).
const NOTE_SHIFT: u32 = 4;

impl<T: SpanningTree> Stno<T> {
    /// Wraps the substrate `tree`.
    pub fn new(tree: T) -> Self {
        Stno { tree }
    }

    /// The wrapped substrate.
    pub fn tree(&self) -> &T {
        &self.tree
    }

    fn project<'a, V: NodeView<StnoState<T::State>>>(view: &'a V) -> TreeView<'a, T::State, V> {
        ProjectedView::new(view, tree_of as fn(&StnoState<T::State>) -> &T::State)
    }

    /// `CalcWeight` target over a precomputed child-port list: `1 +
    /// Σ_{q ∈ D_p} Weight_q` — uniformly `1` at leaves (no children),
    /// saturating at `N` against corrupt inputs.
    fn weight_target_over(
        &self,
        view: &impl NodeView<StnoState<T::State>>,
        children: &[Port],
    ) -> u32 {
        let cap = view.ctx().n_bound as u32;
        let sum: u32 = children
            .iter()
            .map(|&l| view.neighbor(l).weight)
            .fold(1u32, |acc, w| acc.saturating_add(w));
        sum.min(cap)
    }

    /// Allocating convenience around [`Stno::weight_target_over`].
    fn weight_target(&self, view: &impl NodeView<StnoState<T::State>>) -> u32 {
        let proj = Self::project(view);
        self.weight_target_over(view, &self.tree.children_ports(&proj))
    }

    /// `Nodelabel` target: `0` at the root, otherwise `Start_{A_p}[p]`
    /// read from the parent. `None` while the parent is unknown (substrate
    /// still stabilizing).
    fn eta_target(&self, view: &impl NodeView<StnoState<T::State>>) -> Option<u32> {
        let ctx = view.ctx();
        if ctx.is_root {
            return Some(0);
        }
        let proj = Self::project(view);
        let pp = self.tree.parent_port(&proj)?;
        let slot = ctx.back_ports[pp.index()];
        Some(view.neighbor(pp).start[slot.index()] % ctx.n_bound as u32)
    }

    /// Walks `Distribute`'s target values — `given := η_p; ∀q ∈ D_p ::
    /// Start_p[q] := given + 1; given := given + Weight_q`, children in
    /// port order — calling `f(port, start)` per child. Allocation-free.
    fn for_each_start(
        view: &impl NodeView<StnoState<T::State>>,
        eta: u32,
        children: &[Port],
        mut f: impl FnMut(Port, u32),
    ) {
        let mut given = eta;
        for &l in children {
            f(l, given.saturating_add(1));
            given = given.saturating_add(view.neighbor(l).weight);
        }
    }

    fn start_invalid_over(
        &self,
        view: &impl NodeView<StnoState<T::State>>,
        eta: u32,
        children: &[Port],
    ) -> bool {
        let me = view.state();
        let mut invalid = false;
        Self::for_each_start(view, eta, children, |l, s| {
            invalid |= me.start[l.index()] != s;
        });
        invalid
    }

    /// `InvalidEdgelabel(p)` against the current names.
    fn invalid_edge_label(view: &impl NodeView<StnoState<T::State>>) -> bool {
        let ctx = view.ctx();
        let n = ctx.n_bound as u32;
        let me = view.state();
        (0..ctx.degree).any(|l| {
            let q = view.neighbor(Port::new(l));
            me.pi[l] != chordal_label(me.eta, q.eta, n)
        })
    }

    /// `Edgelabel`'s statement, in place: `π[l] := (η − η_q) mod N` for
    /// every incident edge (the transaction's alternating borrows replace
    /// the old clone-and-return shape).
    fn relabel_in_place(&self, txn: &mut impl StateTxn<StnoState<T::State>>, n: u32) {
        let deg = txn.ctx().degree;
        for l in 0..deg {
            let q_eta = txn.neighbor(Port::new(l)).eta;
            let me = txn.state_mut();
            me.pi[l] = chordal_label(me.eta, q_eta, n);
        }
    }

    /// `Distribute`'s statement, in place: `given := η; ∀q ∈ D_p ::
    /// Start[q] := given + 1; given := given + Weight_q`, children in
    /// port order. With `touch_exact` (frozen substrate) it declares
    /// exactly the child ports whose slot value actually changed — the
    /// per-slot diff the old `write_scope` computed from old-vs-new
    /// states.
    fn write_starts(
        &self,
        txn: &mut impl StateTxn<StnoState<T::State>>,
        eta: u32,
        children: &[Port],
        touch_exact: bool,
    ) {
        let mut given = eta;
        for &l in children {
            let v = given.saturating_add(1);
            if txn.state().start[l.index()] != v {
                txn.state_mut().start[l.index()] = v;
                if touch_exact {
                    txn.touch_port(l);
                }
            }
            given = given.saturating_add(txn.neighbor(l).weight);
        }
        if touch_exact {
            // Declare even an empty scope explicitly so an all-current
            // Distribute does not fall back to dirtying every port.
            txn.mark_unobservable();
        }
    }

    // --- Port-cache helpers (see the cache layout described on the
    // Protocol impl below). ---

    /// Label-validity flag of one port.
    const LABEL_BIT: u64 = 1;
    /// The neighbor behind this port is a child (static under a frozen
    /// substrate); its cached `Weight` sits at [`Stno::WEIGHT_SHIFT`].
    const CHILD_BIT: u64 = 1 << 1;
    /// The neighbor behind this port is the parent (static likewise).
    const PARENT_BIT: u64 = 1 << 2;
    /// The cached child `Weight` occupies the 32 bits above the flags —
    /// bits 3..35 of the layer's declared window (the old layout
    /// hard-coded the word's high half; the explicit `LayerLayout` packs
    /// it immediately above the flags instead).
    const WEIGHT_SHIFT: u32 = 3;

    /// `CalcWeight` target from the cached child-weight sum; must agree
    /// with [`Stno::weight_target_over`] (the saturating fold of
    /// non-negative terms equals `min(u32::MAX, 1 + Σ)`).
    fn weight_target_from_sum(cap: u32, sum: u64) -> u32 {
        u32::try_from(1u64.saturating_add(sum))
            .unwrap_or(u32::MAX)
            .min(cap)
    }

    /// The start-validity flag recomputed from the cached child weights
    /// (current once every pending port notification of the step has been
    /// processed) and the node's own `Start` array.
    fn start_flag_from_cache(me: &StnoState<T::State>, eta: u32, cache: &PortCache<'_>) -> bool {
        let mut given = eta;
        let mut invalid = false;
        for l in 0..cache.port_count() {
            let w = cache.port(l);
            if w & Self::CHILD_BIT != 0 {
                invalid |= me.start[l] != given.saturating_add(1);
                given = given.saturating_add((w >> Self::WEIGHT_SHIFT) as u32);
            }
        }
        invalid
    }

    /// The exact enabled-action count from the cache words, matching
    /// `enabled`'s emission order (no tree actions under a frozen
    /// substrate; `CalcWeight`; then `NodeLabel` *or* `Distribute` +
    /// `EdgeLabel`).
    fn stno_count_from_cache(cache: &PortCache<'_>) -> u32 {
        let flags = cache.node[2];
        let mut c = (flags & 1) as u32;
        if flags & 2 != 0 {
            c += 1;
        } else {
            c += ((flags >> 2) & 1) as u32;
            c += u32::from(cache.node[0] > 0);
        }
        c
    }
}

impl<T: SpanningTree> Protocol for Stno<T> {
    type State = StnoState<T::State>;
    type Action = StnoAction<T::Action>;

    fn enabled(&self, view: &impl NodeView<Self::State>, out: &mut Vec<Self::Action>) {
        self.enabled_into(view, out, &mut Scratch::new());
    }

    fn enabled_into(
        &self,
        view: &impl NodeView<Self::State>,
        out: &mut Vec<Self::Action>,
        scratch: &mut Scratch,
    ) {
        let proj = Self::project(view);
        let mut tree_actions = scratch.take_vec::<T::Action>();
        self.tree.enabled_into(&proj, &mut tree_actions, scratch);
        out.extend(tree_actions.drain(..).map(StnoAction::Tree));
        scratch.put_vec(tree_actions);

        let mut children = scratch.take_vec::<Port>();
        let proj = Self::project(view);
        self.tree.children_ports_into(&proj, &mut children);
        let me = view.state();
        if me.weight != self.weight_target_over(view, &children) {
            out.push(StnoAction::CalcWeight);
        }
        if let Some(eta) = self.eta_target(view) {
            if me.eta != eta {
                out.push(StnoAction::NodeLabel);
            } else {
                if self.start_invalid_over(view, eta, &children) {
                    out.push(StnoAction::Distribute);
                }
                if Self::invalid_edge_label(view) {
                    out.push(StnoAction::EdgeLabel);
                }
            }
        }
        scratch.put_vec(children);
    }

    fn apply_profile(
        &self,
        _view: &impl NodeView<Self::State>,
        action: &Self::Action,
    ) -> ApplyProfile {
        // Aspect vocabulary of the delta-staged commit: the wrapper's
        // note bits plus the whole shifted substrate space for tree
        // reads (`children_ports` / `parent_port` consult neighbor tree
        // variables on a live substrate). Tree moves stay conservative;
        // the orientation statements declare exactly the fields their
        // helpers read — which is what lets a dense synchronous repair
        // round (η/π relabeling) commit with few or no copies.
        const TREE_MASK: u64 = u64::MAX << NOTE_SHIFT;
        match action {
            StnoAction::Tree(_) => ApplyProfile::CONSERVATIVE,
            // weight := 1 + Σ child weights (children from the tree).
            StnoAction::CalcWeight => {
                ApplyProfile::reading(ReadScope::All, NOTE_WEIGHT | TREE_MASK, NOTE_WEIGHT)
            }
            // η from the parent's Start, Start from child weights,
            // π from neighbor η — all in one atomic statement.
            StnoAction::NodeLabel => ApplyProfile::reading(
                ReadScope::All,
                NOTE_ETA | NOTE_START | NOTE_WEIGHT | TREE_MASK,
                NOTE_ETA | NOTE_START | NOTE_PI,
            ),
            StnoAction::Distribute => {
                ApplyProfile::reading(ReadScope::All, NOTE_WEIGHT | TREE_MASK, NOTE_START)
            }
            StnoAction::EdgeLabel => ApplyProfile::reading(ReadScope::All, NOTE_ETA, NOTE_PI),
        }
    }

    fn apply_in_place(&self, txn: &mut impl StateTxn<Self::State>, action: &Self::Action) {
        // Write-scope accounting (replacing the old old-vs-new diff):
        // neighbor guards read my η (their per-port label checks — all
        // ports), my `Weight` (only the parent's `CalcWeight` /
        // `Distribute` targets), and my `Start[l]` (only the child behind
        // port `l`, for its η target). My π is consulted by no neighbor
        // guard, so a pure `Edgelabel` repair dirties nothing. The exact
        // declarations require the static tree knowledge of a frozen
        // substrate — precisely when the protocol is port-separable; over
        // a live tree (node-dirty anyway) we declare conservatively.
        let frozen = self.tree.frozen();
        let n = txn.ctx().n_bound as u32;
        match action {
            StnoAction::Tree(a) => {
                {
                    let mut sub = LayerTxn::new(txn, tree_of, tree_of_mut, NOTE_SHIFT);
                    self.tree.apply_in_place(&mut sub, a);
                }
                // Tree edges moved: every derived quantity a neighbor
                // reads may differ.
                txn.touch_all_ports();
            }
            StnoAction::CalcWeight => {
                let w = self.weight_target(txn);
                txn.state_mut().weight = w;
                txn.note_self(NOTE_WEIGHT);
                if frozen {
                    match self.tree.static_parent_port(txn.ctx()) {
                        Some(pp) => txn.touch_port(pp),
                        None => txn.mark_unobservable(),
                    }
                } else {
                    txn.touch_all_ports();
                }
            }
            StnoAction::NodeLabel => {
                // η := target; Distribute; Edgelabel — one atomic step, as
                // in the paper's IN/RN/LN statements. The guard guarantees
                // η actually changes, and every neighbor reads η.
                let eta = self.eta_target(txn).expect("guard guarantees a target");
                let children = self.tree.children_ports(&Self::project(txn));
                txn.state_mut().eta = eta;
                self.write_starts(txn, eta, &children, false);
                self.relabel_in_place(txn, n);
                txn.note_self(NOTE_ETA | NOTE_START | NOTE_PI);
                txn.touch_all_ports();
            }
            StnoAction::Distribute => {
                let eta = txn.state().eta;
                let children = self.tree.children_ports(&Self::project(txn));
                self.write_starts(txn, eta, &children, frozen);
                txn.note_self(NOTE_START);
                if !frozen {
                    txn.touch_all_ports();
                }
            }
            StnoAction::EdgeLabel => {
                self.relabel_in_place(txn, n);
                txn.note_self(NOTE_PI);
                if frozen {
                    txn.mark_unobservable();
                } else {
                    txn.touch_all_ports();
                }
            }
        }
        txn.commit();
    }

    fn initial_state(&self, ctx: &NodeCtx) -> Self::State {
        StnoState {
            tree: self.tree.initial_state(ctx),
            weight: 1,
            eta: 0,
            start: vec![0; ctx.degree],
            pi: vec![0; ctx.degree],
        }
    }

    fn random_state(&self, ctx: &NodeCtx, rng: &mut dyn RngCore) -> Self::State {
        let n = ctx.n_bound as u32;
        StnoState {
            tree: self.tree.random_state(ctx, rng),
            weight: rng.random_range(0..=n),
            eta: rng.random_range(0..n),
            start: (0..ctx.degree).map(|_| rng.random_range(0..=n)).collect(),
            pi: (0..ctx.degree).map(|_| rng.random_range(0..n)).collect(),
        }
    }

    // --- Port-separable interface, live when the substrate is *frozen*
    // (the paper's "after the spanning tree stabilizes" regime): tree
    // edges cannot move, so child/parent roles are static per port.
    //
    // Cache layout, declared through `LayerLayout` (35 port bits + 4
    // node words of its own) — port word window: bit 0 label-invalid,
    // bit 1 is-child, bit 2 is-parent, bits 3..35 the child's cached
    // `Weight`; node words: [0] invalid-label count, [1] Σ cached child
    // weights, [2] flags (bit 0 `CalcWeight` pending, bit 1 `NodeLabel`
    // pending, bit 2 `Distribute` pending), [3] the cached η target read
    // from the parent's `Start`. A frozen substrate is inert and
    // declares an empty layout, so the whole 35-bit window fits with
    // room to spare; a future separable-but-live tree substrate would
    // declare its own bits and stack below automatically. ---

    fn port_separable(&self) -> bool {
        self.tree.frozen()
    }

    fn port_layout(&self) -> LayerLayout {
        self.tree.port_layout().stacked(35, 4)
    }

    fn enabled_from_cache(
        &self,
        _view: &impl NodeView<Self::State>,
        cache: &mut PortCache<'_>,
        out: &mut Vec<Self::Action>,
        _scratch: &mut Scratch,
    ) -> bool {
        // A frozen substrate has no tree actions; the flags word holds
        // the rest, in `enabled_into`'s emission order (`CalcWeight`,
        // then `NodeLabel` *or* `Distribute` + `EdgeLabel`) — must match
        // `stno_count_from_cache`.
        debug_assert!(self.tree.frozen(), "separability requires a frozen tree");
        let flags = cache.node[2];
        if flags & 1 != 0 {
            out.push(StnoAction::CalcWeight);
        }
        if flags & 2 != 0 {
            out.push(StnoAction::NodeLabel);
        } else {
            if flags & 4 != 0 {
                out.push(StnoAction::Distribute);
            }
            if cache.node[0] > 0 {
                out.push(StnoAction::EdgeLabel);
            }
        }
        true
    }

    fn init_ports(&self, view: &impl NodeView<Self::State>, cache: &mut PortCache<'_>) -> u32 {
        debug_assert!(self.tree.frozen(), "separability requires a frozen tree");
        let ctx = view.ctx();
        let n = ctx.n_bound as u32;
        let me = view.state();
        let proj = Self::project(view);
        let children = self.tree.children_ports(&proj);
        let parent = self.tree.static_parent_port(ctx);
        let mut child_iter = children.iter().peekable();
        let mut invalid = 0u64;
        let mut sum = 0u64;
        for l in 0..ctx.degree {
            let port = Port::new(l);
            let q = view.neighbor(port);
            let mut word = 0u64;
            if !chordal_label_valid(me.pi[l], me.eta, q.eta, n) {
                word |= Self::LABEL_BIT;
                invalid += 1;
            }
            if child_iter.peek() == Some(&&port) {
                child_iter.next();
                word |= Self::CHILD_BIT | (u64::from(q.weight) << Self::WEIGHT_SHIFT);
                sum += u64::from(q.weight);
            }
            if parent == Some(port) {
                word |= Self::PARENT_BIT;
            }
            cache.set_port(l, word);
        }
        cache.node[0] = invalid;
        cache.node[1] = sum;
        let eta_t = self
            .eta_target(view)
            .expect("a frozen substrate always knows the tree");
        cache.node[3] = u64::from(eta_t);
        let mut flags = 0u64;
        if me.weight != Self::weight_target_from_sum(n, sum) {
            flags |= 1;
        }
        if me.eta != eta_t {
            flags |= 2;
        }
        if Self::start_flag_from_cache(me, me.eta, cache) {
            flags |= 4;
        }
        cache.node[2] = flags;
        Self::stno_count_from_cache(cache)
    }

    fn refresh_self(
        &self,
        view: &impl NodeView<Self::State>,
        touched: u64,
        cache: &mut PortCache<'_>,
    ) -> PortVerdict {
        let ctx = view.ctx();
        let n = ctx.n_bound as u32;
        let me = view.state();
        // Label bits read own η and π.
        if touched & (NOTE_ETA | NOTE_PI) != 0 {
            let mut invalid = 0u64;
            for l in 0..ctx.degree {
                let q = view.neighbor(Port::new(l));
                let bad = !chordal_label_valid(me.pi[l], me.eta, q.eta, n);
                cache.set_port(l, (cache.port(l) & !Self::LABEL_BIT) | u64::from(bad));
                invalid += u64::from(bad);
            }
            cache.node[0] = invalid;
        }
        let mut flags = cache.node[2] & !0b11;
        if me.weight != Self::weight_target_from_sum(n, cache.node[1]) {
            flags |= 1;
        }
        if me.eta != cache.node[3] as u32 {
            flags |= 2;
        }
        // The start flag reads own η and `Start` (child weights cached).
        if touched & (NOTE_ETA | NOTE_START) != 0 {
            flags &= !0b100;
            if Self::start_flag_from_cache(me, me.eta, cache) {
                flags |= 4;
            }
        }
        cache.node[2] = flags;
        PortVerdict::Count(Self::stno_count_from_cache(cache))
    }

    fn reevaluate_port(
        &self,
        view: &impl NodeView<Self::State>,
        port: Port,
        cache: &mut PortCache<'_>,
    ) -> PortVerdict {
        let ctx = view.ctx();
        let n = ctx.n_bound as u32;
        let me = view.state();
        let q = view.neighbor(port);
        let li = port.index();
        let bad = !chordal_label_valid(me.pi[li], me.eta, q.eta, n);
        let was = cache.port(li) & Self::LABEL_BIT != 0;
        if bad != was {
            cache.set_port(li, cache.port(li) ^ Self::LABEL_BIT);
            cache.node[0] = cache.node[0] + u64::from(bad) - u64::from(was);
        }
        let mut flags = cache.node[2];
        if cache.port(li) & Self::CHILD_BIT != 0 {
            let old_w = (cache.port(li) >> Self::WEIGHT_SHIFT) as u32;
            let new_w = q.weight;
            if new_w != old_w {
                cache.node[1] = cache.node[1] - u64::from(old_w) + u64::from(new_w);
                let flags_part = cache.port(li) & ((1 << Self::WEIGHT_SHIFT) - 1);
                cache.set_port(li, flags_part | (u64::from(new_w) << Self::WEIGHT_SHIFT));
                flags &= !0b101;
                if me.weight != Self::weight_target_from_sum(n, cache.node[1]) {
                    flags |= 1;
                }
                if Self::start_flag_from_cache(me, me.eta, cache) {
                    flags |= 4;
                }
            }
        }
        if cache.port(li) & Self::PARENT_BIT != 0 {
            let slot = ctx.back_ports[li];
            let eta_t = u64::from(q.start[slot.index()] % n);
            cache.node[3] = eta_t;
            flags &= !0b10;
            if me.eta != eta_t as u32 {
                flags |= 2;
            }
        }
        cache.node[2] = flags;
        PortVerdict::Count(Self::stno_count_from_cache(cache))
    }
}

impl<T> SpaceMeasured for Stno<T>
where
    T: SpanningTree + SpaceMeasured,
{
    fn state_bits(&self, ctx: &NodeCtx) -> usize {
        // §4.2.3: Weight and η need log N bits each; Start and π each need
        // Δ·log N — total O(Δ × log N) — plus the substrate (the extra
        // O(Δ × log N) the conclusion charges STNO for its tree).
        let log_n = (usize::BITS - ctx.n_bound.leading_zeros()) as usize;
        (2 + 2 * ctx.degree) * log_n + self.tree.state_bits(ctx)
    }
}

/// The orientation bits of `STNO`'s space usage alone (excluding the
/// substrate) — the quantity §4.2.3 reports as `O(Δ × log N)`.
pub fn stno_orientation_bits(ctx: &NodeCtx) -> usize {
    let log_n = (usize::BITS - ctx.n_bound.leading_zeros()) as usize;
    (2 + 2 * ctx.degree) * log_n
}

/// Extracts the orientation variables from a configuration.
pub fn stno_orientation<S>(config: &[StnoState<S>]) -> Orientation {
    Orientation {
        names: config.iter().map(|s| s.eta).collect(),
        labels: config.iter().map(|s| s.pi.clone()).collect(),
    }
}

/// The specification `SP_NO`: unique names and chordal labels.
pub fn stno_oriented<S>(net: &Network, config: &[StnoState<S>]) -> bool {
    stno_orientation(config).satisfies_spec(net)
}

/// The stronger golden predicate against a concrete spanning tree: names
/// equal the preorder ranks, weights equal the subtree sizes, labels are
/// chordal.
pub fn stno_golden<S>(net: &Network, tree: &RootedTree, config: &[StnoState<S>]) -> bool {
    if stno_orientation(config) != golden_preorder_orientation(net, tree) {
        return false;
    }
    let sizes = tree.subtree_sizes();
    config
        .iter()
        .zip(&sizes)
        .all(|(s, &w)| s.weight as usize == w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sno_engine::daemon::{
        CentralFixedPriority, CentralRoundRobin, DistributedRandom, Synchronous,
    };
    use sno_engine::Simulation;
    use sno_graph::{generators, traverse, NodeId};
    use sno_tree::{BfsSpanningTree, OracleSpanningTree};

    fn bfs_tree_of(g: &sno_graph::Graph) -> RootedTree {
        let b = traverse::bfs(g, NodeId::new(0));
        RootedTree::from_parents(g, NodeId::new(0), &b.parent).unwrap()
    }

    /// STNO over a frozen tree — the regime of the paper's `O(h)` claim.
    fn oracle_fixture(g: sno_graph::Graph) -> (Network, Stno<OracleSpanningTree>, RootedTree) {
        let tree = bfs_tree_of(&g);
        let oracle = OracleSpanningTree::from_graph(&g, &tree);
        (Network::new(g, NodeId::new(0)), Stno::new(oracle), tree)
    }

    #[test]
    fn orients_paper_figure_tree() {
        let (net, proto, tree) = oracle_fixture(generators::paper_example_stno());
        let mut rng = StdRng::seed_from_u64(1);
        let mut sim = Simulation::from_random(&net, proto, &mut rng);
        let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 100_000);
        assert!(run.converged, "STNO is silent once oriented");
        assert!(stno_golden(&net, &tree, sim.config()));
        let o = stno_orientation(sim.config());
        // Figure 4.1.1: preorder names 0..4; weights 5,3,1,1,1.
        assert_eq!(o.names, vec![0, 1, 2, 3, 4]);
        let weights: Vec<u32> = sim.config().iter().map(|s| s.weight).collect();
        assert_eq!(weights, vec![5, 3, 1, 1, 1]);
    }

    #[test]
    fn orients_many_topologies_from_arbitrary_states() {
        for (i, t) in generators::Topology::ALL.into_iter().enumerate() {
            let g = t.build(14, 3);
            let (net, proto, tree) = oracle_fixture(g);
            let mut rng = StdRng::seed_from_u64(60 + i as u64);
            let mut sim = Simulation::from_random(&net, proto, &mut rng);
            let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 1_000_000);
            assert!(run.converged, "topology {t}");
            assert!(stno_golden(&net, &tree, sim.config()), "topology {t}");
        }
    }

    #[test]
    fn non_tree_edges_are_labeled_too() {
        // A dense graph: most edges are chords of the BFS tree.
        let (net, proto, tree) = oracle_fixture(generators::complete(8));
        let mut rng = StdRng::seed_from_u64(4);
        let mut sim = Simulation::from_random(&net, proto, &mut rng);
        sim.run_until_silent(&mut CentralRoundRobin::new(), 1_000_000);
        assert!(stno_golden(&net, &tree, sim.config()));
        let o = stno_orientation(sim.config());
        assert!(o.sp2(&net), "every incident edge, tree or chord, labeled");
        assert!(o.is_locally_symmetric(&net));
    }

    #[test]
    fn converges_under_the_unfair_daemon() {
        // Chapter 5: "STNO … requires an underlying protocol which
        // maintains a spanning tree of the network with an unfair daemon."
        let (net, proto, tree) = oracle_fixture(generators::random_connected(12, 8, 5));
        let mut rng = StdRng::seed_from_u64(9);
        let mut sim = Simulation::from_random(&net, proto, &mut rng);
        let run = sim.run_until_silent(&mut CentralFixedPriority::new(), 1_000_000);
        assert!(run.converged);
        assert!(stno_golden(&net, &tree, sim.config()));
    }

    #[test]
    fn stabilizes_in_height_rounds_after_tree_stabilizes() {
        // §4.2.3: O(h) steps after the spanning tree stabilizes. Under the
        // synchronous daemon rounds = steps; allow a small constant factor
        // (one bottom-up weight wave + one top-down naming wave + labels).
        for (g, h) in [
            (generators::star(24), 1usize),
            (generators::balanced_tree(2, 4), 4),
            (generators::path(24), 23),
        ] {
            let (net, proto, _) = oracle_fixture(g);
            let mut rng = StdRng::seed_from_u64(7);
            let mut sim = Simulation::from_random(&net, proto, &mut rng);
            let run = sim.run_until_silent(&mut Synchronous::new(), 100_000);
            assert!(run.converged);
            let bound = (3 * h + 6) as u64;
            assert!(
                run.steps <= bound,
                "h={h}: {} sync steps exceed {bound}",
                run.steps
            );
        }
    }

    #[test]
    fn full_stack_self_stabilizes_over_bfs_substrate() {
        let g = generators::random_connected(10, 6, 2);
        let tree = bfs_tree_of(&g);
        let net = Network::new(g, NodeId::new(0));
        let proto = Stno::new(BfsSpanningTree);
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sim = Simulation::from_random(&net, proto, &mut rng);
            let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 1_000_000);
            assert!(run.converged, "seed {seed}");
            assert!(stno_golden(&net, &tree, sim.config()), "seed {seed}");
        }
    }

    #[test]
    fn full_stack_under_distributed_daemon() {
        let g = generators::random_connected(11, 9, 14);
        let tree = bfs_tree_of(&g);
        let net = Network::new(g, NodeId::new(0));
        let proto = Stno::new(BfsSpanningTree);
        let mut rng = StdRng::seed_from_u64(21);
        let mut sim = Simulation::from_random(&net, proto, &mut rng);
        let run = sim.run_until_silent(&mut DistributedRandom::seeded(3), 2_000_000);
        assert!(run.converged);
        assert!(stno_golden(&net, &tree, sim.config()));
    }

    #[test]
    fn stale_start_array_self_repairs() {
        // The scenario motivating the DS repair action (module docs): all
        // names correct, one Start slot corrupted.
        let (net, proto, tree) = oracle_fixture(generators::paper_example_stno());
        let mut sim = Simulation::from_initial(&net, proto);
        sim.run_until_silent(&mut CentralRoundRobin::new(), 100_000);
        assert!(stno_golden(&net, &tree, sim.config()));

        let mut bad = sim.state(NodeId::new(1)).clone();
        bad.start[1] = 0; // child 2's range start corrupted
        sim.set_state(NodeId::new(1), bad);
        let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 100_000);
        assert!(run.converged);
        assert!(stno_golden(&net, &tree, sim.config()));
    }

    #[test]
    fn closure_oriented_configuration_is_silent() {
        let (net, proto, _) = oracle_fixture(generators::random_connected(9, 4, 3));
        let mut rng = StdRng::seed_from_u64(2);
        let mut sim = Simulation::from_random(&net, proto, &mut rng);
        sim.run_until_silent(&mut CentralRoundRobin::new(), 1_000_000);
        assert!(
            sim.enabled_nodes().is_empty(),
            "STNO over a frozen tree is silent at the fixpoint"
        );
    }

    #[test]
    fn loose_bound_still_orients() {
        let g = generators::paper_example_stno();
        let tree = bfs_tree_of(&g);
        let oracle = OracleSpanningTree::from_graph(&g, &tree);
        let net = Network::with_bound(g, NodeId::new(0), 12);
        let mut rng = StdRng::seed_from_u64(5);
        let mut sim = Simulation::from_random(&net, Stno::new(oracle), &mut rng);
        let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 100_000);
        assert!(run.converged);
        assert!(stno_golden(&net, &tree, sim.config()));
    }

    #[test]
    fn space_accounting_matches_paper_breakdown() {
        let g = generators::star(9);
        let net = Network::new(g, NodeId::new(0));
        let hub = net.ctx(NodeId::new(0));
        // Weight + η + Δ·Start + Δ·π, log N = 4 bits for N = 9.
        assert_eq!(stno_orientation_bits(hub), (2 + 16) * 4);
    }
}
