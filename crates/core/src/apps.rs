//! Message-complexity applications: how much communication an orientation
//! saves (experiment E10).
//!
//! The paper motivates orientation with Santoro's observation \[21\] that
//! "the availability of an orientation decreases the message complexity of
//! important computations". This module makes that concrete with two
//! executable token-traversal algorithms over the same topology:
//!
//! * [`dfs_traversal_unoriented`] — the classic depth-first traversal of
//!   an anonymous port-numbered network. The token must *probe* every
//!   incident edge, because a node cannot know where an edge leads without
//!   sending the token across; every non-tree probe comes straight back.
//!   Cost: exactly `2m` messages.
//! * [`dfs_traversal_oriented`] — the same traversal when the network is
//!   oriented: the token carries the set of visited *names*, and each node
//!   uses its [`NeighborDirectory`] to skip edges leading to names already
//!   visited — chords are never probed. Cost: exactly `2(n − 1)` messages
//!   (the tree edges, each crossed twice).
//!
//! The gap, `2(m − n + 1)`, grows with density: zero on trees, `Θ(n²)` on
//! cliques.

use sno_engine::Network;
use sno_graph::{NodeId, Port};

use crate::orientation::Orientation;
use crate::sod::NeighborDirectory;

/// Outcome of a traversal: messages spent and the visit order achieved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraversalReport {
    /// Total messages (each token hop counts as one).
    pub messages: u64,
    /// Nodes in first-visit order.
    pub visit_order: Vec<NodeId>,
}

/// Depth-first token traversal of an *unoriented* anonymous network.
///
/// The token records visited nodes only by the route it took (the
/// simulator tracks identity, but the algorithm never uses it): at each
/// node it tries the lowest unexplored port; the receiving node bounces
/// the token back if it was already visited. Every edge is crossed exactly
/// twice: `2m` messages.
///
/// # Panics
///
/// Panics if `root` is out of range or the graph is disconnected.
pub fn dfs_traversal_unoriented(net: &Network, root: NodeId) -> TraversalReport {
    let g = net.graph();
    let n = g.node_count();
    assert!(root.index() < n, "root out of range");
    let mut visited = vec![false; n];
    let mut next_port = vec![0usize; n];
    let mut parent: Vec<Option<Port>> = vec![None; n];
    // A node skips ports on which it has already seen traffic (the
    // standard bookkeeping keeping classic DFS traversal at 2m instead of
    // 4 messages per chord).
    let mut explored: Vec<Vec<bool>> = g.nodes().map(|p| vec![false; g.degree(p)]).collect();
    let mut messages = 0u64;
    let mut order = vec![root];
    visited[root.index()] = true;

    let mut cur = root;
    loop {
        if next_port[cur.index()] < g.degree(cur) {
            let l = Port::new(next_port[cur.index()]);
            next_port[cur.index()] += 1;
            if explored[cur.index()][l.index()] {
                continue; // traffic already crossed this edge
            }
            let q = g.neighbor(cur, l);
            let back = g.back_port(cur, l);
            explored[cur.index()][l.index()] = true;
            explored[q.index()][back.index()] = true;
            messages += 1; // probe: the node cannot know q's status
            if visited[q.index()] {
                messages += 1; // bounce straight back
            } else {
                visited[q.index()] = true;
                order.push(q);
                parent[q.index()] = Some(back);
                cur = q;
            }
        } else {
            match parent[cur.index()] {
                Some(l) => {
                    messages += 1; // return over the tree edge
                    cur = g.neighbor(cur, l);
                }
                None => break, // back at the root with all ports explored
            }
        }
    }
    assert!(visited.iter().all(|&v| v), "graph must be connected");
    TraversalReport {
        messages,
        visit_order: order,
    }
}

/// Depth-first token traversal of an *oriented* network.
///
/// The token carries the set of visited names; each node consults its
/// label-derived [`NeighborDirectory`] and forwards the token only through
/// ports whose neighbor names are unvisited. Chords to visited nodes are
/// pruned without communication: `2(n − 1)` messages.
///
/// # Panics
///
/// Panics if the orientation does not satisfy `SP_NO` (the pruning is only
/// sound with correct names), if `root` is out of range, or if the graph
/// is disconnected.
pub fn dfs_traversal_oriented(net: &Network, o: &Orientation, root: NodeId) -> TraversalReport {
    assert!(
        o.satisfies_spec(net),
        "oriented traversal requires a valid orientation"
    );
    let g = net.graph();
    let n = g.node_count();
    assert!(root.index() < n, "root out of range");
    let dirs: Vec<NeighborDirectory> = g
        .nodes()
        .map(|p| NeighborDirectory::of(o, p, net.n_bound()))
        .collect();

    // The token's payload: the set of visited names.
    let mut visited_names = vec![false; net.n_bound()];
    let mut visited = vec![false; n];
    let mut next_port = vec![0usize; n];
    let mut parent: Vec<Option<Port>> = vec![None; n];
    let mut messages = 0u64;
    let mut order = vec![root];
    visited[root.index()] = true;
    visited_names[o.names[root.index()] as usize] = true;

    let mut cur = root;
    loop {
        let dir = &dirs[cur.index()];
        if next_port[cur.index()] < g.degree(cur) {
            let l = Port::new(next_port[cur.index()]);
            next_port[cur.index()] += 1;
            if Some(l) == parent[cur.index()] {
                continue;
            }
            // The saving: the name behind l is known locally.
            if visited_names[dir.names[l.index()] as usize] {
                continue; // prune the chord, zero messages
            }
            let q = g.neighbor(cur, l);
            messages += 1;
            debug_assert!(!visited[q.index()], "pruning is sound");
            visited[q.index()] = true;
            visited_names[o.names[q.index()] as usize] = true;
            order.push(q);
            parent[q.index()] = Some(g.back_port(cur, l));
            cur = q;
        } else {
            match parent[cur.index()] {
                Some(l) => {
                    messages += 1;
                    cur = g.neighbor(cur, l);
                }
                None => break,
            }
        }
    }
    assert!(visited.iter().all(|&v| v), "graph must be connected");
    TraversalReport {
        messages,
        visit_order: order,
    }
}

/// Convenience: both traversals side by side, for the E10 table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraversalComparison {
    /// Messages without an orientation (`2m`).
    pub unoriented: u64,
    /// Messages with the chordal orientation (`2(n−1)`).
    pub oriented: u64,
}

/// Runs both traversals from the network root with the golden orientation.
pub fn compare_traversals(net: &Network) -> TraversalComparison {
    let o = crate::orientation::golden_dfs_orientation(net);
    TraversalComparison {
        unoriented: dfs_traversal_unoriented(net, net.root()).messages,
        oriented: dfs_traversal_oriented(net, &o, net.root()).messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orientation::golden_dfs_orientation;
    use sno_graph::generators;

    fn net_of(g: sno_graph::Graph) -> Network {
        Network::new(g, NodeId::new(0))
    }

    #[test]
    fn unoriented_costs_exactly_2m() {
        for t in generators::Topology::ALL {
            let net = net_of(t.build(12, 8));
            let m = net.graph().edge_count() as u64;
            let rep = dfs_traversal_unoriented(&net, net.root());
            assert_eq!(rep.messages, 2 * m, "{t}");
            assert_eq!(rep.visit_order.len(), net.node_count(), "{t}");
        }
    }

    #[test]
    fn oriented_costs_exactly_2n_minus_2() {
        for t in generators::Topology::ALL {
            let net = net_of(t.build(12, 8));
            let n = net.node_count() as u64;
            let o = golden_dfs_orientation(&net);
            let rep = dfs_traversal_oriented(&net, &o, net.root());
            assert_eq!(rep.messages, 2 * (n - 1), "{t}");
        }
    }

    #[test]
    fn both_traversals_visit_in_the_same_dfs_order() {
        let net = net_of(generators::random_connected(15, 12, 4));
        let o = golden_dfs_orientation(&net);
        let a = dfs_traversal_unoriented(&net, net.root());
        let b = dfs_traversal_oriented(&net, &o, net.root());
        assert_eq!(a.visit_order, b.visit_order);
        let dfs = sno_graph::traverse::first_dfs(net.graph(), net.root());
        assert_eq!(a.visit_order, dfs.order, "both equal the first DFS");
    }

    #[test]
    fn saving_is_zero_on_trees_and_large_on_cliques() {
        let tree = net_of(generators::random_tree(20, 2));
        let c = compare_traversals(&tree);
        assert_eq!(c.unoriented, c.oriented, "no chords, no saving");

        let clique = net_of(generators::complete(12));
        let c = compare_traversals(&clique);
        assert_eq!(c.unoriented, 2 * 66);
        assert_eq!(c.oriented, 2 * 11);
    }

    #[test]
    #[should_panic(expected = "valid orientation")]
    fn oriented_traversal_rejects_bogus_orientation() {
        let net = net_of(generators::ring(5));
        let bogus = Orientation {
            names: vec![0, 0, 0, 0, 0],
            labels: vec![vec![0, 0]; 5],
        };
        let _ = dfs_traversal_oriented(&net, &bogus, net.root());
    }
}
