//! Regeneration of the paper's worked figures as executable traces.
//!
//! * [`dftno_figure_trace`] reproduces **Figure 3.1.1** (steps i–x): the
//!   token walks the 5-node example network `{r, a, b, c, d}` and the
//!   trace records every `Nodelabel`/`UpdateMax` effect.
//! * [`stno_figure_trace`] reproduces **Figure 4.1.1** (steps i–vi): the
//!   bottom-up weight wave and the top-down naming wave on the 5-node
//!   example tree.
//!
//! Both run the *real* protocols under a deterministic daemon and extract
//! rows for the report binary (`report e2` / `report e3`) and the
//! `dftno_trace` / `stno_trace` examples.

use sno_engine::daemon::CentralRoundRobin;
use sno_engine::{Network, Simulation};
use sno_graph::{generators, NodeId};
use sno_token::OracleToken;
use sno_tree::OracleSpanningTree;

use crate::dftno::{dftno_golden, Dftno, DftnoAction};
use crate::stno::{stno_golden, Stno, StnoAction};

/// One row of the Figure 3.1.1 trace: a token event and the orientation
/// variables it wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DftnoTraceRow {
    /// Sequence number of the event within the trace.
    pub step: usize,
    /// `"Forward"` or `"Backtrack"`.
    pub event: &'static str,
    /// The display name of the acting node (`r`, `a`, `b`, `c`, `d`).
    pub node: &'static str,
    /// `η` at the acting node after the step (`None` until it was named
    /// this round).
    pub eta: Option<u32>,
    /// `Max` at the acting node after the step.
    pub max: u32,
}

/// Runs `DFTNO` on the paper's Figure 3.1.1 network for one full round
/// starting from the round boundary, recording the naming trace; then
/// finishes stabilization and returns the final names alongside the rows.
///
/// The returned names are indexed by node id (`r=0, a=1, b=2, c=3, d=4`)
/// and must equal the figure's `r=0, b=1, d=2, c=3, a=4`.
pub fn dftno_figure_trace() -> (Vec<DftnoTraceRow>, Vec<u32>) {
    let g = generators::paper_example_dftno();
    let names = generators::paper_example_dftno_names();
    let root = NodeId::new(0);
    // The golden event word tells us which node acts next and whether the
    // move is a Forward or a Backtrack — the oracle substrate replays it.
    let dfs = sno_graph::traverse::first_dfs(&g, root);
    let mut word: Vec<(NodeId, &'static str)> = vec![(root, "Forward")];
    for ev in &dfs.euler {
        word.push(match *ev {
            sno_graph::traverse::EulerEvent::Forward { to, .. } => (to, "Forward"),
            sno_graph::traverse::EulerEvent::Backtrack { to, .. } => (to, "Backtrack"),
        });
    }
    let oracle = OracleToken::new(&g, root);
    let net = Network::new(g, root);
    let proto = Dftno::new(oracle);
    let mut sim = Simulation::from_initial(&net, proto);

    let mut rows = Vec::new();
    let mut named = [false; 5];
    for (step, &(node, event)) in word.iter().enumerate() {
        // The oracle is sequential: the expected node holds the only
        // enabled token action (the label repair may sort before it — it
        // is priority-ordered — so select the token action explicitly).
        let actions = sim.enabled_actions(node);
        let token_index = actions
            .iter()
            .position(|a| matches!(a, DftnoAction::Token(_)))
            .unwrap_or_else(|| panic!("token action expected at {node}"));
        sim_apply(&mut sim, node, token_index);
        if event == "Forward" {
            named[node.index()] = true;
        }
        let s = sim.state(node);
        rows.push(DftnoTraceRow {
            step: step + 1,
            event,
            node: names[node.index()],
            eta: named[node.index()].then_some(s.eta),
            max: s.max,
        });
    }
    // Finish stabilizing the labels.
    let mut random = sno_engine::daemon::CentralRandom::seeded(7);
    let run = sim.run_until(&mut random, 100_000, |c| dftno_golden(&net, c));
    assert!(run.converged, "figure network must orient");
    let etas = sim.config().iter().map(|s| s.eta).collect();
    (rows, etas)
}

/// Helper: execute action `action_index` of `node` through the simulation
/// (a single-node "daemon").
fn sim_apply<P: sno_engine::Protocol>(
    sim: &mut Simulation<'_, P>,
    node: NodeId,
    action_index: usize,
) {
    struct One {
        node: NodeId,
        action_index: usize,
    }
    impl sno_engine::daemon::Daemon for One {
        fn select_into(
            &mut self,
            enabled: &[sno_engine::daemon::EnabledNode],
            out: &mut Vec<sno_engine::daemon::Choice>,
        ) {
            let i = enabled
                .iter()
                .position(|e| e.node == self.node)
                .expect("node must be enabled");
            out.clear();
            out.push(sno_engine::daemon::Choice {
                enabled_index: i,
                action_index: self.action_index,
            });
        }
    }
    let mut d = One { node, action_index };
    sim.step(&mut d);
}

/// One row of the Figure 4.1.1 trace: a weight or naming step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StnoTraceRow {
    /// Sequence number.
    pub step: usize,
    /// `"Weight"`, `"Name"`, or `"Labels"`.
    pub phase: &'static str,
    /// Acting node id.
    pub node: usize,
    /// `Weight` after the step.
    pub weight: u32,
    /// `η` after the step.
    pub eta: u32,
}

/// Runs `STNO` on the paper's Figure 4.1.1 tree from a configuration with
/// all weights and names corrupted, recording every `CalcWeight` /
/// `Nodelabel` step until silence. Returns the rows, the final weights,
/// and the final names (which must be `5,3,1,1,1` and `0,1,2,3,4`).
pub fn stno_figure_trace() -> (Vec<StnoTraceRow>, Vec<u32>, Vec<u32>) {
    let g = generators::paper_example_stno();
    let golden = sno_graph::traverse::bfs(&g, NodeId::new(0));
    let tree = sno_graph::RootedTree::from_parents(&g, NodeId::new(0), &golden.parent)
        .expect("figure tree");
    let oracle = OracleSpanningTree::from_graph(&g, &tree);
    let net = Network::new(g, NodeId::new(0));
    let proto = Stno::new(oracle);

    // The figure starts from scratch: zero knowledge everywhere. Weight 0
    // and a wrong η force every wave to be observed.
    let mut config = Vec::new();
    for p in net.nodes() {
        let mut s = sno_engine::Protocol::initial_state(&proto, net.ctx(p));
        s.weight = 0;
        s.eta = 4 - p.index() as u32; // reversed names
        config.push(s);
    }
    let mut sim = Simulation::new(&net, proto, config);
    let mut daemon = CentralRoundRobin::new();
    let mut rows = Vec::new();
    let mut step = 0usize;
    for _ in 0..10_000 {
        let enabled = sim.enabled_nodes();
        if enabled.is_empty() {
            break;
        }
        let out = sim.step(&mut daemon);
        if let sno_engine::StepOutcome::Executed(moves) = out {
            for (node, action) in moves {
                let phase = match action {
                    StnoAction::CalcWeight => "Weight",
                    StnoAction::NodeLabel => "Name",
                    StnoAction::Distribute => "Name",
                    StnoAction::EdgeLabel => "Labels",
                    StnoAction::Tree(_) => continue,
                };
                step += 1;
                let s = sim.state(node);
                rows.push(StnoTraceRow {
                    step,
                    phase,
                    node: node.index(),
                    weight: s.weight,
                    eta: s.eta,
                });
            }
        }
    }
    assert!(
        stno_golden(&net, &tree, sim.config()),
        "figure tree must orient"
    );
    let weights = sim.config().iter().map(|s| s.weight).collect();
    let etas = sim.config().iter().map(|s| s.eta).collect();
    (rows, weights, etas)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dftno_trace_matches_figure_3_1_1() {
        let (rows, etas) = dftno_figure_trace();
        // Final names: r=0, a=4, b=1, c=3, d=2.
        assert_eq!(etas, vec![0, 4, 1, 3, 2]);
        // The Forward sub-sequence is the figure's naming order with the
        // figure's names and running maxima.
        let forwards: Vec<(&str, Option<u32>)> = rows
            .iter()
            .filter(|r| r.event == "Forward")
            .map(|r| (r.node, r.eta))
            .collect();
        assert_eq!(
            forwards,
            vec![
                ("r", Some(0)),
                ("b", Some(1)),
                ("d", Some(2)),
                ("c", Some(3)),
                ("a", Some(4)),
            ]
        );
        // Backtracks propagate the max: d and b learn 3, r learns 3 then 4.
        let backs: Vec<(&str, u32)> = rows
            .iter()
            .filter(|r| r.event == "Backtrack")
            .map(|r| (r.node, r.max))
            .collect();
        assert_eq!(backs, vec![("d", 3), ("b", 3), ("r", 3), ("r", 4)]);
    }

    #[test]
    fn stno_trace_matches_figure_4_1_1() {
        let (rows, weights, etas) = stno_figure_trace();
        assert_eq!(weights, vec![5, 3, 1, 1, 1], "figure weights");
        assert_eq!(etas, vec![0, 1, 2, 3, 4], "figure preorder names");
        // Weight rows exist for every node and the root's weight settles
        // at 5 only after its child's weight settled at 3 (bottom-up).
        let root_final_w = rows
            .iter()
            .filter(|r| r.phase == "Weight" && r.node == 0 && r.weight == 5)
            .map(|r| r.step)
            .next_back()
            .expect("root reaches weight 5");
        let child_w3 = rows
            .iter()
            .find(|r| r.phase == "Weight" && r.node == 1 && r.weight == 3)
            .expect("internal node reaches weight 3")
            .step;
        assert!(child_w3 < root_final_w, "bottom-up wave order");
    }
}
