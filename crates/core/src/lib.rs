//! # sno-core
//!
//! The paper's primary contribution: two deterministic, **self-stabilizing
//! network orientation** protocols for arbitrary rooted asynchronous
//! networks, establishing a *chordal sense of direction*.
//!
//! Network orientation (Chapter 2.3) assigns every processor a globally
//! unique name `η_p ∈ {0, …, N−1}` and labels the edge from `p` to `q`, at
//! `p`, with `π_p[l] = (η_p − η_q) mod N`. The specification `SP_NO`:
//!
//! * **SP1** — every node has a unique name in `0 … N−1`;
//! * **SP2** — every edge label satisfies the chordal equation above.
//!
//! The two protocols:
//!
//! * [`dftno::Dftno`] — **Algorithm 3.1.1**: orientation on top of a
//!   depth-first token circulation. The circulating token acts as a
//!   counter; a node receiving it for the first time in a round
//!   (`Forward(p)`) names itself `Max_{A_p} + 1`, backtracking propagates
//!   the running maximum, and a separate action repairs edge labels.
//!   Stabilizes in `O(n)` steps once the token circulation has stabilized.
//! * [`stno::Stno`] — **Algorithm 4.1.2**: orientation on top of a
//!   spanning tree. Leaves report weight 1; internal nodes sum child
//!   weights bottom-up; the root then distributes non-overlapping name
//!   ranges top-down (`Distribute`), every node taking the lowest value of
//!   its range — the preorder numbering. All edges, tree and non-tree,
//!   are labeled. Stabilizes in `O(h)` steps once the tree has stabilized.
//!
//! Both are generic over their substrate (the paper's "underlying
//! protocol"): any [`sno_token::TokenCirculation`] under `DFTNO`, any
//! [`sno_tree::SpanningTree`] under `STNO`.
//!
//! Supporting modules: [`orientation`] (the `SP_NO` verifier and chordal
//! sense-of-direction checks), [`sod`] (what an oriented node can do with
//! its labels: identify neighbors by name with zero communication),
//! [`apps`] (message-complexity experiments: depth-first traversal with
//! and without an orientation), and [`trace`] (regeneration of the paper's
//! worked figures).
//!
//! # Example
//!
//! ```
//! use sno_core::stno::{stno_oriented, Stno};
//! use sno_engine::{daemon::CentralRoundRobin, Network, Simulation};
//! use sno_tree::BfsSpanningTree;
//!
//! let g = sno_graph::generators::ring(6);
//! let net = Network::new(g, sno_graph::NodeId::new(0));
//! let stno = Stno::new(BfsSpanningTree);
//! let mut sim = Simulation::from_initial(&net, stno);
//! let run = sim.run_until(&mut CentralRoundRobin::new(), 100_000, |c| {
//!     stno_oriented(&net, c)
//! });
//! assert!(run.converged);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod dcd;
pub mod dftno;
pub mod orientation;
pub mod sod;
pub mod stno;
pub mod trace;

pub use dcd::Dcd;
pub use dftno::Dftno;
pub use orientation::Orientation;
pub use stno::Stno;
