//! Disconnection-aware root-path maintenance (`DCD`).
//!
//! Dynamic topology makes **disconnection** a first-class fault: a link
//! failure or a node crash can cut a processor's every path to the
//! distinguished root, and the paper's orientation protocols (whose
//! specifications presume a connected rooted network) are then vacuous on
//! the severed component. Following the silent self-stabilizing
//! distance-based detectors (arXiv:1703.03315), `DCD` lets every
//! processor *detect* whether it still has a root path, and
//! re-stabilizes across reconnection:
//!
//! * every processor maintains a believed root distance
//!   `dist ∈ {0, …, N}` where `N` (the known bound) is the **infinity
//!   sentinel** [`DcdState::INF`], plus the parent port of its believed
//!   shortest path;
//! * the root drives `dist := 0`; every other processor drives
//!   `dist := min(1 + min_q dist_q, N)` and points its parent at the
//!   *lowest* port attaining the minimum (the paper's "lowest port
//!   first" determinism);
//! * on the root component this is the classic silent BFS computation;
//!   off it, the minimum has no anchor, so every severed processor's
//!   `dist` rises each round until it **saturates at `N`** — the
//!   count-to-infinity divergence, bounded by the known `N`, becomes the
//!   detector: `dist = N` *is* the disconnection verdict
//!   ([`DcdState::is_disconnected`]);
//! * a reconnection (link add, node join) re-anchors the minimum and the
//!   fresh distances flood back in `O(diameter)` rounds — no extra
//!   mechanics, stabilization *is* the recovery.
//!
//! The protocol is deliberately not layered over the orientation stacks:
//! it is the robustness-layer primitive the dynamic-topology campaigns
//! drive (a severed `STNO` cell, for instance, is only expected to
//! re-orient once `DCD`-style detection says the component is whole
//! again).

use rand::RngCore;
use sno_engine::{Enumerable, Network, NodeCtx, NodeView, Protocol, SpaceMeasured, StateTxn};
use sno_graph::NodeId;

/// Per-processor state of [`Dcd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DcdState {
    /// The believed root distance; `n_bound` (= [`DcdState::INF`] for
    /// that network) is the infinity sentinel.
    pub dist: u32,
    /// The port toward the believed parent on the shortest root path;
    /// [`DcdState::NO_PARENT`] at the root and wherever `dist` is
    /// saturated.
    pub parent: u32,
}

impl DcdState {
    /// The parent sentinel of the root and of disconnected processors.
    pub const NO_PARENT: u32 = u32::MAX;

    /// The infinity sentinel for a network with bound `n_bound`.
    pub fn inf(n_bound: usize) -> u32 {
        n_bound as u32
    }

    /// `true` iff this processor currently *detects* disconnection from
    /// the root (its distance is saturated at the bound `N`).
    pub fn is_disconnected(&self, n_bound: usize) -> bool {
        self.dist >= Self::inf(n_bound)
    }
}

/// The single action of [`Dcd`]: adopt the recomputed distance/parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adopt;

/// The disconnection-aware root-path protocol (see module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dcd;

impl Dcd {
    /// The target `(dist, parent)` pair of the processor in `view`.
    fn target(view: &impl NodeView<DcdState>) -> DcdState {
        let ctx = view.ctx();
        if ctx.is_root {
            return DcdState {
                dist: 0,
                parent: DcdState::NO_PARENT,
            };
        }
        let inf = DcdState::inf(ctx.n_bound);
        let mut best = inf;
        let mut parent = DcdState::NO_PARENT;
        for l in ctx.ports() {
            let d = view.neighbor(l).dist.min(inf);
            if d < best {
                best = d;
                parent = l.index() as u32;
            }
        }
        let dist = best.saturating_add(1).min(inf);
        if dist >= inf {
            parent = DcdState::NO_PARENT;
        }
        DcdState { dist, parent }
    }
}

impl Protocol for Dcd {
    type State = DcdState;
    type Action = Adopt;

    fn enabled(&self, view: &impl NodeView<DcdState>, out: &mut Vec<Adopt>) {
        if *view.state() != Self::target(view) {
            out.push(Adopt);
        }
    }

    fn apply_in_place(&self, txn: &mut impl StateTxn<DcdState>, _action: &Adopt) {
        let t = Self::target(txn);
        *txn.state_mut() = t;
        txn.touch_all_ports();
        txn.commit();
    }

    fn initial_state(&self, ctx: &NodeCtx) -> DcdState {
        DcdState {
            dist: DcdState::inf(ctx.n_bound),
            parent: DcdState::NO_PARENT,
        }
    }

    fn random_state(&self, ctx: &NodeCtx, rng: &mut dyn RngCore) -> DcdState {
        let dist = rng.next_u32() % (DcdState::inf(ctx.n_bound) + 1);
        let parent = if ctx.degree == 0 {
            DcdState::NO_PARENT
        } else {
            // One value past the last port maps to "no parent", so the
            // adversary can corrupt the pointer itself.
            match rng.next_u32() % (ctx.degree as u32 + 1) {
                p if p == ctx.degree as u32 => DcdState::NO_PARENT,
                p => p,
            }
        };
        DcdState { dist, parent }
    }

    fn reattach_state(&self, ctx: &NodeCtx, old: &DcdState) -> DcdState {
        // The distance is port-free and survives; the parent is a port
        // number, which the event may have renumbered — drop it and let
        // one move re-derive it from the kept distance.
        let _ = ctx;
        DcdState {
            dist: old.dist,
            parent: DcdState::NO_PARENT,
        }
    }
}

impl Enumerable for Dcd {
    fn enumerate_states(&self, ctx: &NodeCtx) -> Vec<DcdState> {
        // dist ∈ {0, …, N}; parent ∈ {ports} ∪ {NO_PARENT} — the full
        // corruption range of `random_state`, so the model checker
        // covers every adversarial value including dangling pointers
        // (e.g. a finite dist with no parent, or a parent at a
        // saturated processor).
        let inf = DcdState::inf(ctx.n_bound);
        let mut out = Vec::with_capacity((inf as usize + 1) * (ctx.degree + 1));
        for dist in 0..=inf {
            for parent in (0..ctx.degree as u32).chain([DcdState::NO_PARENT]) {
                out.push(DcdState { dist, parent });
            }
        }
        out
    }
}

impl SpaceMeasured for Dcd {
    fn state_bits(&self, ctx: &NodeCtx) -> usize {
        let dist_bits = usize::BITS as usize - (ctx.n_bound + 1).leading_zeros() as usize;
        let parent_bits = usize::BITS as usize - (ctx.degree + 1).leading_zeros() as usize;
        dist_bits + parent_bits
    }
}

/// The legitimacy predicate of [`Dcd`] on a possibly **disconnected**
/// network: every processor on the root component holds its true BFS
/// distance and points its parent at the lowest port reaching a
/// processor one step closer; every severed processor is saturated at
/// the sentinel with no parent.
pub fn dcd_legit(net: &Network, config: &[DcdState]) -> bool {
    let g = net.graph();
    let n = g.node_count();
    if config.len() != n {
        return false;
    }
    let inf = DcdState::inf(net.n_bound());
    // BFS from the root over the *current* graph; `sno_graph`'s golden
    // traversal asserts connectivity, which mutation no longer grants.
    let mut dist = vec![inf; n];
    let mut queue = std::collections::VecDeque::new();
    dist[net.root().index()] = 0;
    queue.push_back(net.root());
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v.index()] == inf && dist[u.index()] + 1 < inf {
                dist[v.index()] = dist[u.index()] + 1;
                queue.push_back(v);
            }
        }
    }
    net.nodes().all(|p| {
        let s = &config[p.index()];
        let d = dist[p.index()];
        if s.dist != d {
            return false;
        }
        if p == net.root() || d >= inf {
            return s.parent == DcdState::NO_PARENT;
        }
        let expected = g.neighbors(p).iter().position(|q| dist[q.index()] == d - 1);
        expected.map(|l| l as u32) == Some(s.parent)
    })
}

/// The processors of `net` with no path to the root (the ground truth
/// the detector must converge to).
pub fn severed_nodes(net: &Network) -> Vec<NodeId> {
    let g = net.graph();
    let mut seen = vec![false; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    seen[net.root().index()] = true;
    queue.push_back(net.root());
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if !std::mem::replace(&mut seen[v.index()], true) {
                queue.push_back(v);
            }
        }
    }
    net.nodes().filter(|p| !seen[p.index()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sno_engine::daemon::{CentralRoundRobin, DistributedRandom, Synchronous};
    use sno_engine::{Simulation, TopologyEvent};
    use sno_graph::NodeId;

    fn net(n: usize) -> Network {
        Network::with_bound(sno_graph::generators::ring(n), NodeId::new(0), n + 2)
    }

    #[test]
    fn stabilizes_to_bfs_distances_from_any_configuration() {
        let g = sno_graph::generators::random_connected(14, 10, 5);
        let net = Network::new(g, NodeId::new(0));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..8 {
            let mut sim = Simulation::from_random(&net, Dcd, &mut rng);
            let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 100_000);
            assert!(run.converged);
            assert!(dcd_legit(&net, sim.config()));
        }
    }

    #[test]
    fn detects_disconnection_after_a_bridge_fails() {
        let g = sno_graph::generators::path(6);
        let base = Network::new(g, NodeId::new(0));
        let mut sim = Simulation::from_initial(&base, Dcd);
        sim.run_until_silent(&mut CentralRoundRobin::new(), 100_000);
        assert!(dcd_legit(&base, sim.config()));

        // Cut the path in the middle: 3, 4, 5 lose the root.
        sim.apply_topology_event(
            &TopologyEvent::LinkFail {
                u: NodeId::new(2),
                v: NodeId::new(3),
            },
            None,
        )
        .unwrap();
        let run = sim.run_until_silent(&mut Synchronous::new(), 100_000);
        assert!(run.converged, "the detector must re-silence");
        let net = sim.network();
        assert_eq!(severed_nodes(net).len(), 3);
        assert!(dcd_legit(net, sim.config()));
        for p in [3, 4, 5] {
            assert!(sim.config()[p].is_disconnected(net.n_bound()), "node {p}");
        }
        for p in [0, 1, 2] {
            assert!(!sim.config()[p].is_disconnected(net.n_bound()), "node {p}");
        }
    }

    #[test]
    fn restabilizes_across_reconnection() {
        let base = net(8);
        let mut sim = Simulation::from_initial(&base, Dcd);
        sim.run_until_silent(&mut CentralRoundRobin::new(), 100_000);

        // Sever nodes 3..6 (remove both ring edges around them), let the
        // detector saturate, then reconnect elsewhere and demand full
        // re-stabilization.
        for (u, v) in [(2usize, 3usize), (6, 7)] {
            sim.apply_topology_event(
                &TopologyEvent::LinkFail {
                    u: NodeId::new(u),
                    v: NodeId::new(v),
                },
                None,
            )
            .unwrap();
        }
        let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 100_000);
        assert!(run.converged);
        assert!(dcd_legit(sim.network(), sim.config()));
        assert!(sim.config()[4].is_disconnected(sim.network().n_bound()));

        sim.apply_topology_event(
            &TopologyEvent::LinkAdd {
                u: NodeId::new(0),
                v: NodeId::new(4),
            },
            None,
        )
        .unwrap();
        let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 100_000);
        assert!(run.converged);
        let net = sim.network();
        assert!(severed_nodes(net).is_empty());
        assert!(dcd_legit(net, sim.config()));
        assert!(net
            .nodes()
            .all(|p| { !sim.config()[p.index()].is_disconnected(net.n_bound()) }));
    }

    #[test]
    fn churn_sequence_converges_under_a_distributed_daemon() {
        let base = net(10);
        let mut rng = StdRng::seed_from_u64(11);
        let mut sim = Simulation::from_random(&base, Dcd, &mut rng);
        let mut daemon = DistributedRandom::seeded(7);
        let events = [
            TopologyEvent::NodeJoin {
                links: vec![NodeId::new(1), NodeId::new(5)],
            },
            TopologyEvent::LinkFail {
                u: NodeId::new(0),
                v: NodeId::new(1),
            },
            TopologyEvent::NodeCrash {
                node: NodeId::new(3),
            },
            TopologyEvent::LinkAdd {
                u: NodeId::new(2),
                v: NodeId::new(8),
            },
        ];
        for event in &events {
            sim.run_until_silent(&mut daemon, 100_000);
            sim.apply_topology_event(event, Some(&mut rng)).unwrap();
        }
        let run = sim.run_until_silent(&mut daemon, 100_000);
        assert!(run.converged);
        assert!(dcd_legit(sim.network(), sim.config()));
    }
}
