//! What an oriented node can *do* with its labels: the sense-of-direction
//! toolkit.
//!
//! Chapter 5: "An important property of SoD is that it allows processors
//! to refer to the other processors by locally unique names … and can be
//! translated from one processor to the other." With the chordal labeling
//! a processor knows, with **zero communication**:
//!
//! * the absolute name of each neighbor — `η_q = (η_p − π_p[l]) mod N`;
//! * the port leading to any named neighbor (inverting the labels);
//! * how a name heard from a neighbor translates into its own frame
//!   (absolute names need no translation; chordal *relative* names
//!   translate by adding the edge label).
//!
//! These primitives power the message-complexity experiments in
//! [`crate::apps`].

use sno_engine::Network;
use sno_graph::{NodeId, Port};

use crate::orientation::{neighbor_name, Orientation};

/// A processor-local directory of the neighborhood, computed from the
/// orientation alone (no communication).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborDirectory {
    /// This node's own name.
    pub my_name: u32,
    /// `names[l]` = the absolute name of the neighbor behind port `l`.
    pub names: Vec<u32>,
}

impl NeighborDirectory {
    /// Builds the directory of `p` from an orientation.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range for the orientation.
    pub fn of(o: &Orientation, p: NodeId, n_bound: usize) -> Self {
        let my_name = o.names[p.index()];
        let names = o.labels[p.index()]
            .iter()
            .map(|&lab| neighbor_name(my_name, lab, n_bound as u32))
            .collect();
        NeighborDirectory { my_name, names }
    }

    /// The port leading to the neighbor named `name`, if adjacent.
    pub fn port_of(&self, name: u32) -> Option<Port> {
        self.names.iter().position(|&x| x == name).map(Port::new)
    }

    /// `true` iff a neighbor with this name exists.
    pub fn knows(&self, name: u32) -> bool {
        self.names.contains(&name)
    }
}

/// Verifies that the directories reconstructed from labels alone agree
/// with the ground truth — the "refer to processors by name without
/// asking" property. Returns the number of (node, port) pairs checked.
///
/// # Panics
///
/// Panics if a derived name disagrees with the true neighbor name.
pub fn verify_neighbor_identification(net: &Network, o: &Orientation) -> usize {
    let g = net.graph();
    let mut checked = 0;
    for p in g.nodes() {
        let dir = NeighborDirectory::of(o, p, net.n_bound());
        for (l, &q) in g.neighbors(p).iter().enumerate() {
            assert_eq!(
                dir.names[l],
                o.names[q.index()],
                "name of {q} derived at {p} from the labels alone"
            );
            checked += 1;
        }
    }
    checked
}

/// The *virtual ring* the chordal orientation induces: node named `k` is
/// conceptually followed by `k + 1 mod N`. Returns, for each node, the
/// port toward its cyclic successor if the successor happens to be
/// physically adjacent (`None` otherwise — on arbitrary topologies the
/// virtual ring is not guaranteed to follow physical edges).
pub fn virtual_ring_ports(net: &Network, o: &Orientation) -> Vec<Option<Port>> {
    let n = net.node_count() as u32;
    net.nodes()
        .map(|p| {
            let dir = NeighborDirectory::of(o, p, net.n_bound());
            let succ = (dir.my_name + 1) % n;
            dir.port_of(succ)
        })
        .collect()
}

/// Recovers a node's **DFS-tree parent port from the orientation alone**.
///
/// With first-DFS names, every non-tree edge of an undirected DFS is a
/// back edge to an ancestor, so all of a node's lower-named neighbors are
/// its ancestors — and the parent is the most recently visited one, i.e.
/// the neighbor with the **largest name smaller than its own**. A node can
/// therefore reconstruct its tree edge with zero communication; the root
/// (name 0) returns `None`.
///
/// This is what makes [`convergecast_oriented`] free of any setup phase.
pub fn dfs_parent_port_from_names(o: &Orientation, net: &Network, p: NodeId) -> Option<Port> {
    let dir = NeighborDirectory::of(o, p, net.n_bound());
    let mine = dir.my_name;
    dir.names
        .iter()
        .enumerate()
        .filter(|(_, &name)| name < mine)
        .max_by_key(|(_, &name)| name)
        .map(|(l, _)| Port::new(l))
}

/// Outcome of an oriented convergecast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergecastReport {
    /// Messages sent (exactly `n − 1`).
    pub messages: u64,
    /// Values aggregated at the root (must be `n`: everyone reported).
    pub reports_at_root: usize,
}

/// Convergecast on a DFS-rank-oriented network: every node forwards its
/// report (and any reports received from its subtree) one hop toward the
/// parent it computed **from the labels alone** — `n − 1` messages total
/// and zero setup, versus the `2m`-message traversal an unoriented network
/// needs just to discover a tree (see [`crate::apps`]).
///
/// # Panics
///
/// Panics if the orientation is not the first-DFS orientation of the
/// network (parents are validated against the golden model).
pub fn convergecast_oriented(net: &Network, o: &Orientation) -> ConvergecastReport {
    let golden = sno_graph::traverse::first_dfs(net.graph(), net.root());
    // Process nodes deepest-first so every subtree report is complete
    // before it is forwarded.
    let mut order: Vec<NodeId> = net.nodes().collect();
    order.sort_by_key(|p| std::cmp::Reverse(golden.rank[p.index()]));
    let mut gathered = vec![1usize; net.node_count()]; // own report
    let mut messages = 0u64;
    for p in order {
        match dfs_parent_port_from_names(o, net, p) {
            Some(l) => {
                let parent = net.graph().neighbor(p, l);
                assert_eq!(
                    Some(parent),
                    golden.parent[p.index()],
                    "the max-smaller-neighbor rule recovers the DFS parent"
                );
                messages += 1; // the whole bundle travels as one message
                gathered[parent.index()] += gathered[p.index()];
            }
            None => assert_eq!(p, net.root(), "only the root lacks a parent"),
        }
    }
    ConvergecastReport {
        messages,
        reports_at_root: gathered[net.root().index()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orientation::golden_dfs_orientation;
    use sno_graph::generators;

    fn oriented(g: sno_graph::Graph) -> (Network, Orientation) {
        let net = Network::new(g, NodeId::new(0));
        let o = golden_dfs_orientation(&net);
        (net, o)
    }

    #[test]
    fn directory_identifies_every_neighbor() {
        for t in generators::Topology::ALL {
            let (net, o) = oriented(t.build(12, 5));
            let checked = verify_neighbor_identification(&net, &o);
            assert_eq!(checked, 2 * net.graph().edge_count(), "{t}");
        }
    }

    #[test]
    fn port_of_inverts_names() {
        let (net, o) = oriented(generators::paper_example_dftno());
        let g = net.graph();
        for p in g.nodes() {
            let dir = NeighborDirectory::of(&o, p, net.n_bound());
            for (l, &q) in g.neighbors(p).iter().enumerate() {
                assert_eq!(dir.port_of(o.names[q.index()]), Some(Port::new(l)));
            }
            assert_eq!(dir.port_of(999), None);
        }
    }

    #[test]
    fn virtual_ring_is_complete_on_a_ring() {
        // On a ring oriented by DFS ranks, names run around the cycle, so
        // every successor is physically adjacent.
        let (net, o) = oriented(generators::ring(8));
        let ports = virtual_ring_ports(&net, &o);
        assert!(ports.iter().all(Option::is_some));
    }

    #[test]
    fn virtual_ring_may_have_gaps_on_trees() {
        // On a star, DFS names leaves 1..n−1; leaf k's successor k+1 is
        // another leaf — not adjacent.
        let (net, o) = oriented(generators::star(6));
        let ports = virtual_ring_ports(&net, &o);
        assert!(ports.iter().any(Option::is_none));
    }

    #[test]
    fn loose_bound_identification_still_works() {
        let g = generators::random_connected(10, 8, 3);
        let net = Network::with_bound(g, NodeId::new(0), 23);
        let o = golden_dfs_orientation(&net);
        verify_neighbor_identification(&net, &o);
    }

    #[test]
    fn max_smaller_neighbor_is_the_dfs_parent() {
        // The theorem behind zero-setup convergecast: in an undirected
        // first-DFS all non-tree edges are back edges, so the parent is
        // the largest-named smaller neighbor.
        for t in generators::Topology::ALL {
            let g = t.build(14, 9);
            let golden = sno_graph::traverse::first_dfs(&g, NodeId::new(0));
            let net = Network::new(g, NodeId::new(0));
            let o = golden_dfs_orientation(&net);
            for p in net.nodes() {
                assert_eq!(
                    dfs_parent_port_from_names(&o, &net, p),
                    golden.parent_port[p.index()],
                    "{t}: node {p}"
                );
            }
        }
    }

    #[test]
    fn convergecast_uses_n_minus_1_messages_and_reaches_everyone() {
        for t in generators::Topology::ALL {
            let g = t.build(16, 4);
            let n = g.node_count();
            let net = Network::new(g, NodeId::new(0));
            let o = golden_dfs_orientation(&net);
            let rep = convergecast_oriented(&net, &o);
            assert_eq!(rep.messages, n as u64 - 1, "{t}");
            assert_eq!(rep.reports_at_root, n, "{t}");
        }
    }

    #[test]
    fn petersen_convergecast() {
        // Dense, highly symmetric, girth-5: a good adversary for the
        // max-smaller-neighbor rule.
        let g = generators::petersen();
        let net = Network::new(g, NodeId::new(0));
        let o = golden_dfs_orientation(&net);
        let rep = convergecast_oriented(&net, &o);
        assert_eq!(rep.messages, 9);
        assert_eq!(rep.reports_at_root, 10);
    }
}
