//! **Algorithm 3.1.1 — `DFTNO`**: network orientation using depth-first
//! token circulation.
//!
//! The protocol runs on top of any [`TokenCirculation`] substrate and adds
//! three orientation variables per processor: the name `η_p`, the running
//! maximum `Max_p`, and the edge labels `π_p[l]`. Its actions are hooked
//! onto the substrate's guards exactly as in the paper:
//!
//! ```text
//! Forward(p)   → Nodelabel_p     (η, Max := 0 at the root;
//!                                 η := Max_{A_p} + 1, Max := η otherwise)
//! Backtrack(p) → UpdateMax_p     (Max_p := Max_{D_p})
//! ¬Forward(p) ∧ ¬Backtrack(p) ∧ InvalidEdgelabel(p) → Edgelabel_p
//! ```
//!
//! The token acts as a counter: each first visit hands out the next free
//! name, so after one complete round every `η_p` is the node's rank in the
//! deterministic depth-first order, and the edge-label action then repairs
//! `π_p[l] = (η_p − η_q) mod N`. Stabilization takes `O(n)` steps after
//! the substrate stabilizes (Theorem 3.2.3 and §3.2.3), measured in
//! experiment E4.

use std::hash::Hash;

use rand::Rng as _;
use rand::RngCore;
use sno_engine::protocol::ProjectedView;
use sno_engine::{
    ApplyProfile, Enumerable, LayerLayout, LayerTxn, Network, NodeCtx, NodeView, PortCache,
    PortVerdict, Protocol, ReadScope, Scratch, SpaceMeasured, StateTxn,
};
use sno_graph::Port;
use sno_token::{TokenCirculation, TokenKind};

use crate::orientation::{chordal_label, chordal_label_valid, golden_dfs_orientation, Orientation};

/// Per-processor state: the substrate's variables plus the orientation
/// variables of Algorithm 3.1.1.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct DftnoState<S> {
    /// The token-circulation substrate's variables.
    pub token: S,
    /// The node name `η_p ∈ {0, …, N−1}`.
    pub eta: u32,
    /// The running maximum `Max_p` — the largest name this node knows.
    pub max: u32,
    /// The edge labels `π_p[l]`, one per port.
    pub pi: Vec<u32>,
}

/// Manual so `clone_from` is field-wise: the engine's copy-on-write
/// stash pools pre-round copies, and `pi.clone_from` reusing its
/// capacity is what keeps a rare multi-writer preservation
/// allocation-free (the derive would fall back to a fresh `O(Δ)`
/// allocation per copy).
impl<S: Clone> Clone for DftnoState<S> {
    fn clone(&self) -> Self {
        DftnoState {
            token: self.token.clone(),
            eta: self.eta,
            max: self.max,
            pi: self.pi.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.token.clone_from(&source.token);
        self.eta = source.eta;
        self.max = source.max;
        self.pi.clone_from(&source.pi);
    }
}

/// Actions of `DFTNO`: substrate actions (with orientation side effects on
/// `Forward`/`Backtrack`) plus the standalone edge-label repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DftnoAction<A> {
    /// A substrate action; `Forward` additionally runs `Nodelabel`,
    /// `Backtrack` additionally runs `UpdateMax`.
    Token(A),
    /// `Edgelabel_p`: rewrite every inconsistent `π_p[l]`.
    EdgeLabel,
}

/// The `DFTNO` protocol over a token-circulation substrate `T`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dftno<T> {
    token: T,
}

fn token_of<S>(s: &DftnoState<S>) -> &S {
    &s.token
}

fn token_of_mut<S>(s: &mut DftnoState<S>) -> &mut S {
    &mut s.token
}

type TokenView<'a, S, V> = ProjectedView<'a, DftnoState<S>, V, fn(&DftnoState<S>) -> &S>;

/// [`StateTxn::note_self`] bit: `η` changed (label bits must rebuild).
const NOTE_ETA: u64 = 1;
/// Note bit: `π` changed.
const NOTE_PI: u64 = 1 << 1;
/// Note bit: the substrate moved (its notes sit above [`NOTE_SHIFT`]).
const NOTE_TOKEN: u64 = 1 << 2;
/// The substrate's note bits start here.
const NOTE_SHIFT: u32 = 3;

impl<T: TokenCirculation> Dftno<T> {
    /// Wraps the substrate `token`.
    pub fn new(token: T) -> Self {
        Dftno { token }
    }

    /// The wrapped substrate.
    pub fn token(&self) -> &T {
        &self.token
    }

    fn project<'a, V: NodeView<DftnoState<T::State>>>(view: &'a V) -> TokenView<'a, T::State, V> {
        ProjectedView::new(view, token_of as fn(&DftnoState<T::State>) -> &T::State)
    }

    /// `InvalidEdgelabel(p)`: some incident label violates the chordal
    /// equation against the *current* names.
    fn invalid_edge_label(view: &impl NodeView<DftnoState<T::State>>) -> bool {
        let ctx = view.ctx();
        let n = ctx.n_bound as u32;
        let me = view.state();
        (0..ctx.degree).any(|l| {
            let q = view.neighbor(Port::new(l));
            me.pi[l] != chordal_label(me.eta, q.eta, n)
        })
    }

    /// Recomputes every cached per-port label-validity bit (and the
    /// invalid count in `node[0]`) against the current view — `O(Δ)`,
    /// used by cache (re)initialization and own-η/π changes.
    fn rebuild_label_bits(view: &impl NodeView<DftnoState<T::State>>, cache: &mut PortCache<'_>) {
        let ctx = view.ctx();
        let n = ctx.n_bound as u32;
        let me = view.state();
        let mut invalid = 0u64;
        for l in 0..ctx.degree {
            let q = view.neighbor(Port::new(l));
            let bad = !chordal_label_valid(me.pi[l], me.eta, q.eta, n);
            cache.set_port(l, (cache.port(l) & !1) | u64::from(bad));
            invalid += u64::from(bad);
        }
        cache.node[0] = invalid;
    }

    /// The exact enabled-action count from the cache words: the (single)
    /// `Edgelabel` repair iff any label bit is set, plus the substrate's
    /// cached action count — matching `enabled`'s emission order.
    fn count_from_cache(cache: &PortCache<'_>) -> u32 {
        u32::from(cache.node[0] > 0) + cache.node[1] as u32
    }
}

impl<T: TokenCirculation> Protocol for Dftno<T> {
    type State = DftnoState<T::State>;
    type Action = DftnoAction<T::Action>;

    fn enabled(&self, view: &impl NodeView<Self::State>, out: &mut Vec<Self::Action>) {
        self.enabled_into(view, out, &mut Scratch::new());
    }

    fn enabled_into(
        &self,
        view: &impl NodeView<Self::State>,
        out: &mut Vec<Self::Action>,
        scratch: &mut Scratch,
    ) {
        // The paper's third action is guarded by ¬Forward ∧ ¬Backtrack ∧
        // InvalidEdgelabel. Under daemons that deterministically run a
        // node's first enabled action, that conjunct starves the repair: a
        // hub whose token action is pending whenever the schedule reaches
        // it never gets to fix its labels (the E12 `∞` rows of an earlier
        // revision). The repair is therefore *priority-ordered* instead:
        // it is offered whenever the labels are invalid and listed first,
        // so deterministic-action daemons repair before circulating. The
        // repair disables itself after one execution, so the token is
        // delayed by at most one selection per invalid labeling and the
        // stabilized behavior is unchanged (valid labels never re-enable
        // the repair).
        if Self::invalid_edge_label(view) {
            out.push(DftnoAction::EdgeLabel);
        }
        let proj = Self::project(view);
        let mut tok_actions = scratch.take_vec::<T::Action>();
        self.token.enabled_into(&proj, &mut tok_actions, scratch);
        out.extend(tok_actions.drain(..).map(DftnoAction::Token));
        scratch.put_vec(tok_actions);
    }

    // --- Port-separable interface, live when the substrate's is
    // (`DFTNO` over the oracle walker in practice). Cache layout,
    // declared through `LayerLayout`: the wrapper claims one port-word
    // bit (the per-port label-validity flag, the low bit of its window)
    // and two node words — `node[0]` the invalid-label count, `node[1]`
    // the substrate's cached action count — then hands the substrate the
    // rest (`cache.layer(2, 1)`). ---

    fn port_separable(&self) -> bool {
        self.token.port_separable()
    }

    fn port_layout(&self) -> LayerLayout {
        self.token.port_layout().stacked(1, 2)
    }

    fn enabled_from_cache(
        &self,
        view: &impl NodeView<Self::State>,
        cache: &mut PortCache<'_>,
        out: &mut Vec<Self::Action>,
        scratch: &mut Scratch,
    ) -> bool {
        // Mirrors `enabled_into`'s emission order without the O(Δ)
        // `InvalidEdgelabel` scan: the cache's invalid-label count
        // already answers it.
        if cache.node[0] > 0 {
            out.push(DftnoAction::EdgeLabel);
        }
        let proj = Self::project(view);
        let mut tok_actions = scratch.take_vec::<T::Action>();
        let ok = {
            let mut sub = cache.layer(2, 1);
            self.token
                .enabled_from_cache(&proj, &mut sub, &mut tok_actions, scratch)
        };
        if !ok {
            tok_actions.clear();
            scratch.put_vec(tok_actions);
            out.clear();
            return false;
        }
        out.extend(tok_actions.drain(..).map(DftnoAction::Token));
        scratch.put_vec(tok_actions);
        true
    }

    fn init_ports(&self, view: &impl NodeView<Self::State>, cache: &mut PortCache<'_>) -> u32 {
        Self::rebuild_label_bits(view, cache);
        let proj = Self::project(view);
        let mut sub = cache.layer(2, 1);
        let tok = self.token.init_ports(&proj, &mut sub);
        cache.node[1] = u64::from(tok);
        Self::count_from_cache(cache)
    }

    fn refresh_self(
        &self,
        view: &impl NodeView<Self::State>,
        touched: u64,
        cache: &mut PortCache<'_>,
    ) -> PortVerdict {
        // The label bits read own η and π; recompute them only when the
        // transaction noted one of those changed (a token move leaves
        // both alone, so a steady-state hub step stays o(Δ) guard
        // evaluations).
        if touched & (NOTE_ETA | NOTE_PI) != 0 {
            Self::rebuild_label_bits(view, cache);
        }
        if touched & NOTE_TOKEN != 0 {
            let proj = Self::project(view);
            let mut sub = cache.layer(2, 1);
            match self
                .token
                .refresh_self(&proj, touched >> NOTE_SHIFT, &mut sub)
            {
                PortVerdict::Whole => return PortVerdict::Whole,
                PortVerdict::Count(c) => cache.node[1] = u64::from(c),
                PortVerdict::Unchanged => {}
            }
        }
        PortVerdict::Count(Self::count_from_cache(cache))
    }

    fn reevaluate_port(
        &self,
        view: &impl NodeView<Self::State>,
        port: Port,
        cache: &mut PortCache<'_>,
    ) -> PortVerdict {
        let ctx = view.ctx();
        let n = ctx.n_bound as u32;
        let me = view.state();
        let q = view.neighbor(port);
        let bad = !chordal_label_valid(me.pi[port.index()], me.eta, q.eta, n);
        let was = cache.port(port.index()) & 1 != 0;
        if bad != was {
            cache.set_port(port.index(), cache.port(port.index()) ^ 1);
            cache.node[0] = cache.node[0] + u64::from(bad) - u64::from(was);
        }
        {
            let proj = Self::project(view);
            let mut sub = cache.layer(2, 1);
            match self.token.reevaluate_port(&proj, port, &mut sub) {
                PortVerdict::Whole => return PortVerdict::Whole,
                PortVerdict::Count(c) => cache.node[1] = u64::from(c),
                PortVerdict::Unchanged => {}
            }
        }
        PortVerdict::Count(Self::count_from_cache(cache))
    }

    fn apply_profile(
        &self,
        view: &impl NodeView<Self::State>,
        action: &Self::Action,
    ) -> ApplyProfile {
        // Aspect vocabulary of the delta-staged commit (coarser than the
        // note bits need to be): `NOTE_ETA` the name, `NOTE_PI` the edge
        // labels, `NOTE_TOKEN` everything token-adjacent — the substrate
        // variables *and* `Max`, which only token statements read or
        // write. This is what makes dense synchronous repair rounds
        // copy-free: an `Edgelabel` statement reads neighbor η (never
        // written by other `Edgelabel`s, whose writes are π-only), so
        // the only conflict left is a token hand-off adjacent to a
        // same-step repair.
        match action {
            DftnoAction::EdgeLabel => ApplyProfile::reading(ReadScope::All, NOTE_ETA, NOTE_PI),
            DftnoAction::Token(a) => {
                let proj = Self::project(view);
                // The substrate's own reads, coarsened to the one
                // token aspect (substrate-substrate conflicts stay
                // conservative; cross-layer ones stay precise).
                let sub = self.token.apply_profile(&proj, a);
                let sub = ApplyProfile::reading(
                    sub.reads,
                    if sub.is_reader() { NOTE_TOKEN } else { 0 },
                    NOTE_TOKEN,
                );
                let own = match self.token.classify(&proj, a) {
                    TokenKind::Forward => {
                        let reads = if view.ctx().is_root {
                            (ReadScope::None, 0)
                        } else {
                            match self.token.parent_port(&proj) {
                                // Nodelabel consults the parent's Max.
                                Some(pp) => (ReadScope::One(pp), NOTE_TOKEN),
                                None => (ReadScope::None, 0),
                            }
                        };
                        ApplyProfile::reading(reads.0, reads.1, NOTE_TOKEN | NOTE_ETA)
                    }
                    TokenKind::Backtrack { child } => {
                        // UpdateMax consults the descendant's Max.
                        ApplyProfile::reading(ReadScope::One(child), NOTE_TOKEN, NOTE_TOKEN)
                    }
                    TokenKind::Internal => ApplyProfile::local(NOTE_TOKEN),
                };
                own.union(sub)
            }
        }
    }

    fn apply_in_place(&self, txn: &mut impl StateTxn<Self::State>, action: &Self::Action) {
        let ctx_is_root = txn.ctx().is_root;
        let n = txn.ctx().n_bound as u32;
        // Write-scope accounting (replacing the old old-vs-new diff):
        // neighbor guards read exactly two things of this node — its η
        // (their per-port label checks) and its substrate variables
        // (their token guards, declared by the substrate's own
        // sub-transaction). `Max` and `π` are consulted only inside
        // statements, never by a guard, so changing them dirties nothing
        // — this is what makes a hub's `Edgelabel` repair free for its Δ
        // neighbors.
        match action {
            DftnoAction::Token(a) => {
                // Classification and the parent port are read against the
                // pre-move substrate state, then the substrate moves and
                // the orientation side effect lands in the same atomic
                // step, as in Algorithm 3.1.1.
                let (kind, parent_port) = {
                    let mut sub = LayerTxn::new(txn, token_of, token_of_mut, NOTE_SHIFT);
                    let kind = self.token.classify(&sub, a);
                    let pp = self.token.parent_port(&sub);
                    self.token.apply_in_place(&mut sub, a);
                    (kind, pp)
                };
                txn.note_self(NOTE_TOKEN);
                match kind {
                    TokenKind::Forward => {
                        let new_eta = if ctx_is_root {
                            0
                        } else {
                            // Nodelabel: consult the parent for the
                            // current maximum. While the substrate is
                            // still stabilizing the parent may be unknown;
                            // fall back to the local Max (repaired next
                            // round).
                            let parent_max = parent_port
                                .map(|l| txn.neighbor(l).max)
                                .unwrap_or(txn.state().max);
                            (parent_max + 1) % n
                        };
                        let me = txn.state_mut();
                        let eta_changed = me.eta != new_eta;
                        me.eta = new_eta;
                        me.max = new_eta;
                        if eta_changed {
                            txn.note_self(NOTE_ETA);
                            txn.touch_all_ports();
                        }
                    }
                    TokenKind::Backtrack { child } => {
                        // UpdateMax: adopt the maximum of the descendant
                        // the token returned from. Unobservable (no
                        // neighbor guard reads Max).
                        let m = txn.neighbor(child).max % n;
                        txn.state_mut().max = m;
                    }
                    TokenKind::Internal => {}
                }
            }
            DftnoAction::EdgeLabel => {
                let deg = txn.ctx().degree;
                for l in 0..deg {
                    let q_eta = txn.neighbor(Port::new(l)).eta;
                    let me = txn.state_mut();
                    me.pi[l] = chordal_label(me.eta, q_eta, n);
                }
                txn.note_self(NOTE_PI);
                // π is read by no neighbor guard.
                txn.mark_unobservable();
            }
        }
        txn.commit();
    }

    fn initial_state(&self, ctx: &NodeCtx) -> Self::State {
        DftnoState {
            token: self.token.initial_state(ctx),
            eta: 0,
            max: 0,
            pi: vec![0; ctx.degree],
        }
    }

    fn random_state(&self, ctx: &NodeCtx, rng: &mut dyn RngCore) -> Self::State {
        let n = ctx.n_bound as u32;
        DftnoState {
            token: self.token.random_state(ctx, rng),
            eta: rng.random_range(0..n),
            max: rng.random_range(0..n),
            pi: (0..ctx.degree).map(|_| rng.random_range(0..n)).collect(),
        }
    }
}

impl<T> Enumerable for Dftno<T>
where
    T: TokenCirculation + Enumerable,
{
    fn enumerate_states(&self, ctx: &NodeCtx) -> Vec<Self::State> {
        // The substrate's space times the orientation variables. Every
        // value the protocol ever writes stays inside it: `Nodelabel`
        // and `UpdateMax` reduce mod N, `Edgelabel` writes chordal
        // labels (already mod N) — so the exhaustive checker's successor
        // closure holds. Substrate-major order keeps the token layer in
        // the low digits.
        let toks = self.token.enumerate_states(ctx);
        let n = ctx.n_bound as u64;
        let deg = ctx.degree;
        let labelings = n.pow(deg as u32);
        let mut out =
            Vec::with_capacity(toks.len() * (n * n * labelings) as usize);
        for token in &toks {
            for eta in 0..n as u32 {
                for max in 0..n as u32 {
                    for labeling in 0..labelings {
                        let mut code = labeling;
                        let mut pi = Vec::with_capacity(deg);
                        for _ in 0..deg {
                            pi.push((code % n) as u32);
                            code /= n;
                        }
                        out.push(DftnoState {
                            token: token.clone(),
                            eta,
                            max,
                            pi,
                        });
                    }
                }
            }
        }
        out
    }
}

impl<T> SpaceMeasured for Dftno<T>
where
    T: TokenCirculation + SpaceMeasured,
{
    fn state_bits(&self, ctx: &NodeCtx) -> usize {
        // §3.2.3: η and Max need log N bits each, π needs Δ·log N — total
        // O(Δ × log N) — plus whatever the substrate keeps.
        let log_n = (usize::BITS - ctx.n_bound.leading_zeros()) as usize;
        (2 + ctx.degree) * log_n + self.token.state_bits(ctx)
    }
}

/// The orientation bits of `DFTNO`'s space usage alone (excluding the
/// substrate) — the quantity §3.2.3 reports as `O(Δ × log N)`.
pub fn dftno_orientation_bits(ctx: &NodeCtx) -> usize {
    let log_n = (usize::BITS - ctx.n_bound.leading_zeros()) as usize;
    (2 + ctx.degree) * log_n
}

/// Extracts the orientation variables from a configuration.
pub fn dftno_orientation<S>(config: &[DftnoState<S>]) -> Orientation {
    Orientation {
        names: config.iter().map(|s| s.eta).collect(),
        labels: config.iter().map(|s| s.pi.clone()).collect(),
    }
}

/// The specification `SP_NO`: unique names and chordal labels.
pub fn dftno_oriented<S>(net: &Network, config: &[DftnoState<S>]) -> bool {
    dftno_orientation(config).satisfies_spec(net)
}

/// The stronger golden predicate: names equal the first-DFS ranks (what
/// the algorithm actually converges to) and all labels are chordal.
pub fn dftno_golden<S>(net: &Network, config: &[DftnoState<S>]) -> bool {
    dftno_orientation(config) == golden_dfs_orientation(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sno_engine::daemon::{CentralRoundRobin, DistributedRandom, Synchronous};
    use sno_engine::Simulation;
    use sno_graph::{generators, NodeId};
    use sno_token::{DfsTokenCirculation, OracleToken};

    /// DFTNO over the golden substrate, from arbitrary orientation
    /// variables — the regime of the paper's complexity claim.
    fn oracle_fixture(g: sno_graph::Graph) -> (Network, Dftno<OracleToken>) {
        let root = NodeId::new(0);
        let oracle = OracleToken::new(&g, root);
        (Network::new(g, root), Dftno::new(oracle))
    }

    #[test]
    fn orients_paper_example_to_figure_names() {
        let (net, proto) = oracle_fixture(generators::paper_example_dftno());
        let mut rng = StdRng::seed_from_u64(5);
        let mut sim = Simulation::from_random(&net, proto, &mut rng);
        let run = sim.run_until(&mut CentralRoundRobin::new(), 100_000, |c| {
            dftno_golden(&net, c)
        });
        assert!(run.converged);
        let o = dftno_orientation(sim.config());
        // Figure 3.1.1: r=0, a=4, b=1, c=3, d=2.
        assert_eq!(o.names, vec![0, 4, 1, 3, 2]);
    }

    #[test]
    fn orients_many_topologies_from_arbitrary_states() {
        // A randomized central daemon: strongly fair with probability 1.
        // (Weakly fair daemons also converge since the repair-priority fix;
        // see `repair_priority_defeats_round_robin_resonance` below.)
        for (i, t) in generators::Topology::ALL.into_iter().enumerate() {
            let g = t.build(14, 3);
            let (net, proto) = oracle_fixture(g);
            let mut rng = StdRng::seed_from_u64(40 + i as u64);
            let mut sim = Simulation::from_random(&net, proto, &mut rng);
            let mut daemon = sno_engine::daemon::CentralRandom::seeded(i as u64);
            let run = sim.run_until(&mut daemon, 1_000_000, |c| dftno_golden(&net, c));
            assert!(run.converged, "topology {t}");
        }
    }

    #[test]
    fn repair_priority_defeats_round_robin_resonance() {
        // Regression for a reproduction finding: with the paper's literal
        // Edgelabel guard (¬Forward ∧ ¬Backtrack ∧ InvalidEdgelabel) the
        // weakly fair round-robin schedule *resonated* with the token on a
        // star — it served the hub only at moments its token action was
        // the enabled one, so the hub's labels were never repaired (names
        // converged, SP2 did not). Priority-ordering the repair action in
        // `Dftno::enabled` removes the resonance; the same instance now
        // converges under round robin, the synchronous daemon, and a
        // randomized daemon alike.
        let (net, proto) = oracle_fixture(generators::star(14));
        let mut rng = StdRng::seed_from_u64(42);
        let mut sim = Simulation::from_random(&net, proto.clone(), &mut rng);
        let run = sim.run_until(&mut CentralRoundRobin::new(), 200_000, |c| {
            dftno_golden(&net, c)
        });
        assert!(run.converged, "round robin no longer starves the repair");

        let mut rng = StdRng::seed_from_u64(42);
        let mut sim = Simulation::from_random(&net, proto.clone(), &mut rng);
        let run = sim.run_until(&mut Synchronous::new(), 200_000, |c| dftno_golden(&net, c));
        assert!(run.converged, "synchronous daemon converges");

        let mut rng = StdRng::seed_from_u64(42);
        let mut sim = Simulation::from_random(&net, proto, &mut rng);
        let mut daemon = sno_engine::daemon::CentralRandom::seeded(1);
        let run = sim.run_until(&mut daemon, 200_000, |c| dftno_golden(&net, c));
        assert!(run.converged, "randomized daemon converges");
    }

    #[test]
    fn stabilizes_in_linear_moves_after_token_stabilizes() {
        // §3.2.3: O(n) steps after the token circulation stabilizes. With
        // the oracle substrate every move is charged to DFTNO's phase:
        // ≤ 2 rounds of token moves + edge-label repairs.
        for n in [8usize, 16, 32, 64] {
            let g = generators::random_tree(n, 77);
            let (net, proto) = oracle_fixture(g);
            let mut rng = StdRng::seed_from_u64(n as u64);
            let mut sim = Simulation::from_random(&net, proto, &mut rng);
            let run = sim.run_until(&mut CentralRoundRobin::new(), 10_000_000, |c| {
                dftno_golden(&net, c)
            });
            assert!(run.converged);
            let bound = 10 * n as u64 + 20;
            assert!(
                run.moves <= bound,
                "n={n}: {} moves exceeds linear bound {bound}",
                run.moves
            );
        }
    }

    #[test]
    fn closure_orientation_survives_continued_circulation() {
        let (net, proto) = oracle_fixture(generators::random_connected(10, 7, 8));
        let mut rng = StdRng::seed_from_u64(2);
        let mut sim = Simulation::from_random(&net, proto, &mut rng);
        let run = sim.run_until(&mut CentralRoundRobin::new(), 1_000_000, |c| {
            dftno_golden(&net, c)
        });
        assert!(run.converged);
        // The token keeps circulating; the orientation must never regress.
        let mut daemon = CentralRoundRobin::new();
        for _ in 0..2_000 {
            sim.step(&mut daemon);
            assert!(dftno_oriented(&net, sim.config()), "SP_NO closure");
            assert!(dftno_golden(&net, sim.config()), "names stay golden");
        }
    }

    #[test]
    fn full_stack_self_stabilizes_from_arbitrary_states() {
        // DFTNO over the *self-stabilizing* substrate: everything random.
        let g = generators::paper_example_dftno();
        let net = Network::new(g, NodeId::new(0));
        let proto = Dftno::new(DfsTokenCirculation);
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sim = Simulation::from_random(&net, proto, &mut rng);
            let run = sim.run_until(&mut CentralRoundRobin::new(), 4_000_000, |c| {
                dftno_golden(&net, c)
            });
            assert!(run.converged, "seed {seed}");
        }
    }

    #[test]
    fn full_stack_works_under_distributed_daemon() {
        let g = generators::random_connected(8, 5, 12);
        let net = Network::new(g, NodeId::new(0));
        let proto = Dftno::new(DfsTokenCirculation);
        let mut rng = StdRng::seed_from_u64(3);
        let mut sim = Simulation::from_random(&net, proto, &mut rng);
        let run = sim.run_until(&mut DistributedRandom::seeded(5), 4_000_000, |c| {
            dftno_golden(&net, c)
        });
        assert!(run.converged);
    }

    #[test]
    fn full_stack_works_under_synchronous_daemon() {
        let g = generators::ring(7);
        let net = Network::new(g, NodeId::new(0));
        let proto = Dftno::new(DfsTokenCirculation);
        let mut rng = StdRng::seed_from_u64(6);
        let mut sim = Simulation::from_random(&net, proto, &mut rng);
        let run = sim.run_until(&mut Synchronous::new(), 4_000_000, |c| {
            dftno_golden(&net, c)
        });
        assert!(run.converged);
    }

    #[test]
    fn loose_bound_names_stay_dense_and_labels_mod_n() {
        // N = 2n: names are still 0..n−1 (DFS ranks) but labels mod N.
        let g = generators::paper_example_dftno();
        let net = Network::with_bound(g, NodeId::new(0), 10);
        let oracle = OracleToken::new(net.graph(), NodeId::new(0));
        let proto = Dftno::new(oracle);
        let mut rng = StdRng::seed_from_u64(1);
        let mut sim = Simulation::from_random(&net, proto, &mut rng);
        let run = sim.run_until(&mut CentralRoundRobin::new(), 100_000, |c| {
            dftno_golden(&net, c)
        });
        assert!(run.converged);
        let o = dftno_orientation(sim.config());
        assert!(o.names.iter().all(|&e| e < 5));
        assert!(o.sp1(10));
    }

    #[test]
    fn space_accounting_matches_paper_breakdown() {
        let g = generators::star(9);
        let net = Network::new(g, NodeId::new(0));
        let hub = net.ctx(NodeId::new(0));
        let leaf = net.ctx(NodeId::new(3));
        // η + Max + Δ·π, log N = 4 bits for N = 9.
        assert_eq!(dftno_orientation_bits(hub), (2 + 8) * 4);
        assert_eq!(dftno_orientation_bits(leaf), (2 + 1) * 4);
    }
}
