//! A persistent barrier-synchronized worker pool.
//!
//! [`parallel_map_mut`](crate::parallel_map_mut) spawns and joins a
//! fresh set of scoped threads on every call. The engine's sharded
//! synchronous executor calls it three times per *step* (resolve, write,
//! re-evaluate), so at tens of thousands of steps per second the spawn
//! sets dominate the phase cost. [`WorkerPool`] keeps `threads - 1`
//! long-lived workers parked on a condvar; each phase is published to
//! them as an epoch bump, the caller itself participates in the claim
//! loop (so `threads = 1` degenerates to a fully inline run with no
//! workers at all), and the caller blocks on a barrier until every
//! worker has retired the epoch before the phase's borrows go out of
//! scope.
//!
//! # Safety story
//!
//! This is the one module in the crate allowed to use `unsafe`, and it
//! uses it for exactly two things:
//!
//! 1. **Lifetime erasure of the phase closure.** `run_mut` builds the
//!    worker body on its own stack frame and publishes a raw pointer to
//!    it. The pointer is only dereferenced by workers between the epoch
//!    publication and the barrier below it, and `run_mut` does not
//!    return (or unwind) past the barrier until `remaining == 0`, so
//!    the closure strictly outlives every dereference. A phase-wide
//!    mutex serializes concurrent `run_mut` callers, so no second epoch
//!    can be published while one is in flight.
//! 2. **Exclusive `&mut` hand-out from a shared slice pointer.** Work
//!    items are claimed from an atomic cursor; `fetch_add` hands each
//!    index to exactly one claimant, so the `&mut` references
//!    materialized from `base.add(i)` are disjoint. `T: Send` is
//!    required by the public signature, matching `parallel_map_mut`.
//!
//! # Panic handling
//!
//! Worker panics are caught **per item** and parked in a failure slot;
//! a poisoned flag stops further claims. Crucially every worker still
//! reports its epoch as finished — a panic never strands the barrier —
//! and the first captured panic is re-raised on the *caller's* thread
//! after the barrier, labeled with the failing shard exactly like
//! `parallel_map_mut`. The pool stays usable afterwards (see the
//! panic-injection tests).

#![allow(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::{note_spawn, reraise, CapturedPanic};

/// The phase body as seen by a worker: claim-loop over items, taking
/// the worker's slot index (unused today, reserved for per-worker
/// scratch). Published by raw pointer; see the module docs for why the
/// erased lifetime is sound.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are
// fine) and the pointer is only dereferenced while the publishing
// `run_mut` frame is blocked on the phase barrier, so no use-after-free
// is possible. Sending the pointer value itself to workers is safe.
unsafe impl Send for Job {}

struct PoolState {
    /// Bumped once per published phase; workers run one phase per bump.
    epoch: u64,
    job: Option<Job>,
    /// Workers that have not yet retired the current epoch.
    remaining: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here between phases.
    work: Condvar,
    /// The caller parks here until `remaining == 0`.
    done: Condvar,
}

/// A persistent pool of `threads - 1` parked workers plus the calling
/// thread, driving [`WorkerPool::run_mut`] phases with zero thread
/// spawns after warmup.
///
/// Cloning an `Arc<WorkerPool>` shares the workers; concurrent callers
/// (e.g. lab cells running on the same pool) serialize whole phases on
/// an internal mutex, which is deadlock-free because workers never take
/// that lock.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Parked worker threads (`threads - 1`; the caller is the last
    /// participant). Spawned lazily on the first phase so short-lived
    /// serial simulations never pay for threads.
    workers: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Serializes concurrent `run_mut` callers: one phase in flight.
    phase: Mutex<()>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .field(
                "spawned",
                &!self.handles.lock().map(|h| h.is_empty()).unwrap_or(true),
            )
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool that will run phases on `threads` participants:
    /// the caller plus `threads - 1` lazily spawned workers. `threads`
    /// is clamped to at least 1 (a pure inline pool).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            shared: Arc::new(Shared {
                state: Mutex::new(PoolState {
                    epoch: 0,
                    job: None,
                    remaining: 0,
                    shutdown: false,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
            }),
            workers: threads.max(1) - 1,
            handles: Mutex::new(Vec::new()),
            phase: Mutex::new(()),
        }
    }

    /// The number of phase participants (caller + parked workers).
    pub fn threads(&self) -> usize {
        self.workers + 1
    }

    /// Spawns the parked workers if they are not running yet. Called on
    /// the first phase; a no-op (and spawn-free) afterwards.
    fn ensure_spawned(&self) {
        if self.workers == 0 {
            return;
        }
        let mut handles = self.handles.lock().expect("pool handle store poisoned");
        if !handles.is_empty() {
            return;
        }
        for _ in 0..self.workers {
            note_spawn();
            let shared = Arc::clone(&self.shared);
            handles.push(std::thread::spawn(move || worker_loop(&shared)));
        }
    }

    /// Runs `f` over every item with exclusive `&mut` hand-out, on the
    /// caller plus the parked workers, and returns once **all**
    /// participants have retired the phase — the barrier is the point
    /// where the `&mut` borrows are known to be dead again.
    ///
    /// Items are claimed from a shared cursor so skewed shard costs
    /// balance, exactly like [`parallel_map_mut`](crate::parallel_map_mut);
    /// with one participant the phase runs fully inline.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic on the caller's thread with the
    /// failing shard index attached, *after* the barrier — a panic
    /// never strands the pool, which stays usable for further phases.
    pub fn run_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        if items.is_empty() {
            return;
        }
        let n = items.len();
        // Wrap the pointer so the closure below is `Sync` without
        // capturing a bare `*mut` (raw pointers are not `Sync`; the
        // method keeps 2021 closure capture on the whole wrapper).
        struct SlicePtr<T>(*mut T);
        // SAFETY: shared access to the pointer *value*; element access
        // is made exclusive by the claim cursor below.
        unsafe impl<T: Send> Sync for SlicePtr<T> {}
        impl<T> SlicePtr<T> {
            fn at(&self, i: usize) -> *mut T {
                // SAFETY: callers pass `i < n` for the wrapped slice.
                unsafe { self.0.add(i) }
            }
        }
        let base = SlicePtr(items.as_mut_ptr());

        let next = AtomicUsize::new(0);
        let poisoned = AtomicBool::new(false);
        let failure: Mutex<Option<CapturedPanic>> = Mutex::new(None);
        let body = |_worker: usize| loop {
            if poisoned.load(Ordering::Relaxed) {
                break;
            }
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            // SAFETY: `fetch_add` yields each index to exactly one
            // participant, so this is the only `&mut` to item `i`; the
            // borrow dies before the phase barrier releases the slice.
            let item = unsafe { &mut *base.at(i) };
            match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                Ok(()) => {}
                Err(payload) => {
                    poisoned.store(true, Ordering::Relaxed);
                    let mut slot = failure.lock().expect("pool failure store poisoned");
                    if slot.is_none() {
                        *slot = Some(CapturedPanic {
                            index: i,
                            label: format!("shard {i}"),
                            payload,
                        });
                    }
                    break;
                }
            }
        };

        if self.workers == 0 {
            // Inline pool: no publication, no barrier, same panic
            // labeling as the parallel path.
            body(0);
        } else {
            self.ensure_spawned();
            // One phase in flight at a time; workers never take this
            // lock, so holding it across the barrier cannot deadlock.
            let _phase = self.phase.lock().expect("pool phase lock poisoned");
            {
                let local: &(dyn Fn(usize) + Sync) = &body;
                // SAFETY: erases the stack lifetime of `body` in the
                // pointer type only — the pointer is dereferenced
                // strictly before the phase barrier below releases this
                // frame (module docs, point 1).
                let erased = unsafe {
                    std::mem::transmute::<
                        *const (dyn Fn(usize) + Sync + '_),
                        *const (dyn Fn(usize) + Sync + 'static),
                    >(local as *const _)
                };
                let mut st = self.shared.state.lock().expect("pool state poisoned");
                st.job = Some(Job(erased));
                st.epoch += 1;
                st.remaining = self.workers;
                drop(st);
                self.shared.work.notify_all();
            }
            // The caller is participant number `workers` in the claim
            // loop — with skewed shards it does real work instead of
            // blocking early. `body` catches its own panics, so this
            // cannot unwind past the barrier below.
            body(self.workers);
            // Phase barrier: no return (and no drop of `body` or the
            // item borrows) until every worker has retired the epoch.
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            while st.remaining != 0 {
                st = self.shared.done.wait(st).expect("pool state poisoned");
            }
            st.job = None;
        }

        if let Some(captured) = failure.into_inner().expect("pool failure store poisoned") {
            reraise(captured);
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("published epoch carries a job");
                }
                st = shared.work.wait(st).expect("pool state poisoned");
            }
        };
        // The body catches item panics itself; the extra guard here is
        // belt-and-braces so an unexpected unwind can never skip the
        // barrier report and strand the caller.
        // SAFETY: the publishing `run_mut` frame is blocked on the
        // barrier until we report below, so the closure is alive.
        let _ = catch_unwind(AssertUnwindSafe(|| (unsafe { &*job.0 })(0)));
        let mut st = shared.state.lock().expect("pool state poisoned");
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        let handles =
            std::mem::take(&mut *self.handles.lock().expect("pool handle store poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{payload_message, thread_spawns};

    #[test]
    fn pool_matches_scoped_map_and_spawns_once() {
        let pool = WorkerPool::new(4);
        let mut items: Vec<Vec<u32>> = (0..33).map(|i| vec![i]).collect();
        pool.run_mut(&mut items, |i, v| v.push(i as u32 + 100));
        for (i, v) in items.iter().enumerate() {
            assert_eq!(v, &[i as u32, i as u32 + 100]);
        }
        // Warmed: further phases spawn nothing.
        let before = thread_spawns();
        for round in 0..50u32 {
            pool.run_mut(&mut items, |_, v| v.push(round));
        }
        assert_eq!(thread_spawns(), before, "warmed pool must not spawn");
        assert_eq!(items[7].len(), 2 + 50);
    }

    #[test]
    fn inline_pool_runs_on_the_caller() {
        let pool = WorkerPool::new(1);
        let before = thread_spawns();
        let mut items: Vec<u64> = (0..16).collect();
        pool.run_mut(&mut items, |_, x| *x *= 3);
        assert_eq!(thread_spawns(), before, "threads=1 never spawns");
        assert_eq!(items[5], 15);
    }

    #[test]
    fn worker_panic_reraises_with_shard_label_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let mut items: Vec<u32> = (0..8).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.run_mut(&mut items, |_, x| {
                if *x == 5 {
                    panic!("bad shard state");
                }
            })
        }))
        .unwrap_err();
        let msg = payload_message(err.as_ref());
        assert!(msg.contains("shard 5"), "{msg}");
        assert!(msg.contains("bad shard state"), "{msg}");
        // The barrier was not stranded: the pool still runs phases.
        let mut again: Vec<u32> = (0..32).collect();
        pool.run_mut(&mut again, |i, x| *x += i as u32);
        for (i, x) in again.iter().enumerate() {
            assert_eq!(*x, 2 * i as u32);
        }
    }

    #[test]
    fn panic_on_every_item_does_not_deadlock() {
        let pool = WorkerPool::new(8);
        for _ in 0..4 {
            let mut items: Vec<u32> = (0..64).collect();
            let err = catch_unwind(AssertUnwindSafe(|| {
                pool.run_mut(&mut items, |_, _| panic!("all fall down"))
            }))
            .unwrap_err();
            assert!(payload_message(err.as_ref()).contains("all fall down"));
        }
    }

    #[test]
    fn shared_pool_serializes_concurrent_phases() {
        let pool = std::sync::Arc::new(WorkerPool::new(3));
        let total = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = std::sync::Arc::clone(&pool);
                let total = &total;
                scope.spawn(move || {
                    let mut items: Vec<usize> = (0..40).collect();
                    for _ in 0..25 {
                        pool.run_mut(&mut items, |_, x| {
                            total.fetch_add(*x, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 25 * (39 * 40 / 2));
    }

    #[test]
    fn empty_phase_is_free() {
        let pool = WorkerPool::new(4);
        let before = thread_spawns();
        pool.run_mut(&mut [] as &mut [u8], |_, _| {});
        assert_eq!(thread_spawns(), before, "empty phases never spawn");
    }
}
