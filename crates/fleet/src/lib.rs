//! # sno-fleet
//!
//! Deterministic parallel maps over scoped `std::thread` workers — the
//! workspace's stand-in for `rayon` (this build environment cannot pull
//! crates from a registry; see ROADMAP's dependency-shims item).
//!
//! Two consumers share this crate:
//!
//! * `sno-lab`'s campaign runner fans scenario cells (and seed
//!   sub-ranges of heavy cells) out over [`parallel_map`];
//! * `sno-engine`'s `SyncSharded` executor runs the per-shard phases of
//!   a synchronous round — guard resolution, delta-staged writes, dirty
//!   re-evaluation — over [`parallel_map_mut`], whose work items carry
//!   `&mut` shard state (configuration chunks, scratch arenas, dirty
//!   buckets).
//!
//! Work items are claimed from a shared cursor, so threads stay busy
//! when item costs are skewed, and results are returned **in input
//! order** — the parallel schedule can never leak into a report or a
//! simulation trace.
//!
//! # Panic handling
//!
//! A worker panic is caught per item, the fleet drains (no torn joins),
//! and the panic is re-raised on the caller's thread with the failing
//! item's identity attached. [`parallel_map_labeled`] lets the caller
//! name items in domain terms (the lab names the scenario cell and seed
//! range), so a campaign failure points at the cell that died instead of
//! a bare `Any { .. }` join error.
//!
//! # Persistent pools
//!
//! The scoped maps spawn fresh OS threads per call — fine for campaign
//! cells that run for seconds, ruinous for a synchronous-round executor
//! that runs three parallel phases per *step*. [`WorkerPool`] keeps
//! long-lived workers parked on a condvar and hands each phase to them
//! through an epoch/barrier handshake; [`WorkerPool::run_mut`] has the
//! same contract as [`parallel_map_mut`] (exclusive `&mut` hand-out,
//! per-item panic capture, labeled re-raise after the barrier) with
//! zero thread spawns after warmup. [`thread_spawns`] counts every OS
//! thread the crate has ever started, so benches can assert that.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

mod pool;

pub use pool::WorkerPool;

/// Every OS thread this crate has ever spawned (scoped maps and pool
/// workers alike). Monotonic; benches read the delta across a timed
/// window to prove a hot loop spawns nothing.
static THREAD_SPAWNS: AtomicU64 = AtomicU64::new(0);

/// Total OS threads spawned by this crate since process start.
///
/// The pooled executor gate reads this before and after a timed bench
/// window: a warmed [`WorkerPool`] must leave the delta at exactly zero.
pub fn thread_spawns() -> u64 {
    THREAD_SPAWNS.load(Ordering::Relaxed)
}

pub(crate) fn note_spawn() {
    THREAD_SPAWNS.fetch_add(1, Ordering::Relaxed);
}

/// The number of worker threads to use by default: the machine's
/// available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Renders a caught panic payload (the `&str` / `String` payloads
/// `panic!` produces; anything else becomes a placeholder).
///
/// Public so fleet *callers* can enrich a payload before re-raising it —
/// the lab's campaign driver catches a per-seed panic, appends the
/// failing cell's telemetry counter snapshot, and re-panics with the
/// combined message, which then flows through [`parallel_map_labeled`]'s
/// own labeling unchanged.
pub fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A worker panic captured with the identity of the item it was
/// processing.
pub(crate) struct CapturedPanic {
    pub(crate) index: usize,
    pub(crate) label: String,
    pub(crate) payload: Box<dyn std::any::Any + Send>,
}

/// Re-raises a captured panic with the item identity prepended, so the
/// failure is diagnosable from the backtrace-less test output alone.
pub(crate) fn reraise(captured: CapturedPanic) -> ! {
    let msg = payload_message(captured.payload.as_ref());
    resume_unwind(Box::new(format!(
        "fleet worker panicked on {} (item {}): {msg}",
        captured.label, captured.index
    )))
}

/// Applies `f` to every item on up to `threads` worker threads and
/// returns the results in input order.
///
/// `f` receives the item index alongside the item. With `threads <= 1`
/// the map runs inline on the caller's thread.
///
/// # Panics
///
/// Re-raises the first worker panic on the caller's thread, with the
/// failing item index attached (use [`parallel_map_labeled`] to attach
/// a domain-level identity instead).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_labeled(items, threads, f, |i, _| format!("item {i}"))
}

/// [`parallel_map`] with a caller-provided item-identity function,
/// evaluated only when that item's worker panics.
///
/// The lab's campaign runner labels items with their scenario cell and
/// seed sub-range, so a panicking run is attributable without re-running
/// the campaign single-threaded.
pub fn parallel_map_labeled<T, R, F, L>(items: &[T], threads: usize, f: F, label: L) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    L: Fn(usize, &T) -> String + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = threads.clamp(1, items.len());
    if workers == 1 {
        // Inline: panics propagate naturally with full context.
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    let failure: Mutex<Option<CapturedPanic>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            note_spawn();
            scope.spawn(|| loop {
                if poisoned.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                    Ok(r) => results
                        .lock()
                        .expect("fleet result store poisoned")
                        .push((i, r)),
                    Err(payload) => {
                        poisoned.store(true, Ordering::Relaxed);
                        let mut slot = failure.lock().expect("fleet failure store poisoned");
                        if slot.is_none() {
                            *slot = Some(CapturedPanic {
                                index: i,
                                label: label(i, &items[i]),
                                payload,
                            });
                        }
                        break;
                    }
                }
            });
        }
    });

    if let Some(captured) = failure.into_inner().expect("fleet failure store poisoned") {
        reraise(captured);
    }
    let mut indexed = results.into_inner().expect("fleet result store poisoned");
    assert_eq!(indexed.len(), items.len(), "every item produced a result");
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// [`parallel_map`] over work items the workers **mutate**: each item is
/// handed to exactly one worker by `&mut`, so items can carry exclusive
/// shard state (configuration chunks, scratch arenas, output buffers)
/// without locks. Results are returned in input order.
///
/// This is the engine's sharded-round primitive: a synchronous round
/// builds one work item per graph shard and the fleet drives them with
/// whatever thread count is configured — by construction the items are
/// disjoint, so the schedule cannot affect the outcome.
///
/// # Panics
///
/// Re-raises the first worker panic on the caller's thread with the
/// failing item index attached.
pub fn parallel_map_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = threads.clamp(1, items.len());
    if workers == 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let n = items.len();
    // Exclusive hand-out: workers claim `(index, &mut item)` pairs from a
    // mutex-guarded iterator — the lock is held only for the claim, never
    // for the work.
    let queue: Mutex<std::iter::Enumerate<std::slice::IterMut<'_, T>>> =
        Mutex::new(items.iter_mut().enumerate());
    let poisoned = AtomicBool::new(false);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    let failure: Mutex<Option<CapturedPanic>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            note_spawn();
            scope.spawn(|| loop {
                if poisoned.load(Ordering::Relaxed) {
                    break;
                }
                let claimed = queue.lock().expect("fleet queue poisoned").next();
                let Some((i, item)) = claimed else {
                    break;
                };
                match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                    Ok(r) => results
                        .lock()
                        .expect("fleet result store poisoned")
                        .push((i, r)),
                    Err(payload) => {
                        poisoned.store(true, Ordering::Relaxed);
                        let mut slot = failure.lock().expect("fleet failure store poisoned");
                        if slot.is_none() {
                            *slot = Some(CapturedPanic {
                                index: i,
                                label: format!("shard {i}"),
                                payload,
                            });
                        }
                        break;
                    }
                }
            });
        }
    });

    if let Some(captured) = failure.into_inner().expect("fleet failure store poisoned") {
        reraise(captured);
    }
    let mut indexed = results.into_inner().expect("fleet result store poisoned");
    // A poisoned fleet never reaches here; a healthy one covered all items.
    assert_eq!(indexed.len(), n, "every item produced a result");
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = parallel_map(&items, 8, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_threaded_fallback_matches() {
        let items: Vec<u64> = (0..40).collect();
        let seq = parallel_map(&items, 1, |_, &x| x + 1);
        let par = parallel_map(&items, 4, |_, &x| x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_map(&[] as &[u8], 4, |_, _| 1);
        assert!(out.is_empty());
        let out: Vec<u32> = parallel_map_mut(&mut [] as &mut [u8], 4, |_, _| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn skewed_work_is_shared() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 4, |_, &x| {
            if x == 0 {
                (0..100_000u64).sum::<u64>() % 7 + x
            } else {
                x
            }
        });
        assert_eq!(out[1..], items[1..]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn mut_items_are_mutated_exclusively_and_ordered() {
        let mut items: Vec<Vec<u32>> = (0..33).map(|i| vec![i]).collect();
        let out = parallel_map_mut(&mut items, 4, |i, v| {
            v.push(i as u32 + 100);
            v.iter().sum::<u32>()
        });
        for (i, v) in items.iter().enumerate() {
            assert_eq!(v, &[i as u32, i as u32 + 100]);
        }
        assert_eq!(out[3], 3 + 103);
    }

    #[test]
    fn worker_panics_carry_the_item_label() {
        let items: Vec<u32> = (0..16).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_labeled(
                &items,
                4,
                |_, &x| {
                    if x == 7 {
                        panic!("run diverged");
                    }
                    x
                },
                |_, &x| format!("cell seed={x}"),
            )
        }))
        .unwrap_err();
        let msg = payload_message(err.as_ref());
        assert!(msg.contains("cell seed=7"), "{msg}");
        assert!(msg.contains("run diverged"), "{msg}");
    }

    #[test]
    fn mut_worker_panics_name_the_shard() {
        let mut items: Vec<u32> = (0..8).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_mut(&mut items, 4, |_, x| {
                if *x == 5 {
                    panic!("bad shard state");
                }
                *x
            })
        }))
        .unwrap_err();
        let msg = payload_message(err.as_ref());
        assert!(msg.contains("shard 5"), "{msg}");
        assert!(msg.contains("bad shard state"), "{msg}");
    }

    #[test]
    fn inline_fallback_panics_propagate_plainly() {
        let items = [1u8];
        let err = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, 1, |_, _| -> u8 { panic!("inline") })
        }))
        .unwrap_err();
        assert!(payload_message(err.as_ref()).contains("inline"));
    }
}
