//! Property-based tests for the spanning tree substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sno_engine::daemon::{CentralFixedPriority, CentralRoundRobin, LocallyCentralRandom};
use sno_engine::protocol::ConfigView;
use sno_engine::{Network, Simulation};
use sno_graph::{generators, traverse, NodeId};
use sno_tree::{bfs_legit, BfsSpanningTree, CdSpanningTree, SpanningTree};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bfs_tree_stabilizes_to_golden(n in 2usize..24, extra in 0usize..24, seed: u64) {
        let g = generators::random_connected(n, extra, seed);
        let net = Network::new(g, NodeId::new(0));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = Simulation::from_random(&net, BfsSpanningTree, &mut rng);
        let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 2_000_000);
        prop_assert!(run.converged);
        prop_assert!(bfs_legit(&net, sim.config()));
    }

    #[test]
    fn bfs_tree_stabilizes_under_unfair_daemon(n in 2usize..16, extra in 0usize..12, seed: u64) {
        let g = generators::random_connected(n, extra, seed);
        let net = Network::new(g, NodeId::new(0));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
        let mut sim = Simulation::from_random(&net, BfsSpanningTree, &mut rng);
        let run = sim.run_until_silent(&mut CentralFixedPriority::new(), 2_000_000);
        prop_assert!(run.converged);
        prop_assert!(bfs_legit(&net, sim.config()));
    }

    #[test]
    fn children_and_parents_are_mutually_consistent(n in 2usize..20, extra in 0usize..16, seed: u64) {
        let g = generators::random_connected(n, extra, seed);
        let net = Network::new(g.clone(), NodeId::new(0));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = Simulation::from_random(&net, BfsSpanningTree, &mut rng);
        sim.run_until_silent(&mut CentralRoundRobin::new(), 2_000_000);
        // p lists q as a child ⇔ q lists p as its parent.
        for p in net.nodes() {
            let vp = ConfigView::new(&net, p, sim.config());
            for &l in &BfsSpanningTree.children_ports(&vp) {
                let q = g.neighbor(p, l);
                let vq = ConfigView::new(&net, q, sim.config());
                let parent_port = BfsSpanningTree.parent_port(&vq).unwrap();
                prop_assert_eq!(g.neighbor(q, parent_port), p);
            }
        }
    }

    #[test]
    fn cd_tree_preorder_matches_dfs_order(n in 2usize..16, extra in 0usize..12, seed: u64) {
        let g = generators::random_connected(n, extra, seed);
        let dfs = traverse::first_dfs(&g, NodeId::new(0));
        let net = Network::new(g.clone(), NodeId::new(0));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xAA);
        let mut sim = Simulation::from_random(&net, CdSpanningTree, &mut rng);
        let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 4_000_000);
        prop_assert!(run.converged);
        // Rebuild the tree from the provider and check its preorder is the
        // DFS visit order — the key fact behind experiment E9.
        let mut parents = vec![None; n];
        for p in net.nodes() {
            let v = ConfigView::new(&net, p, sim.config());
            parents[p.index()] = CdSpanningTree.parent_port(&v).map(|l| g.neighbor(p, l));
        }
        let tree = sno_graph::RootedTree::from_parents(&g, NodeId::new(0), &parents).unwrap();
        prop_assert_eq!(tree.preorder(), dfs.order);
    }
}

#[test]
fn bfs_tree_under_locally_central_daemon() {
    let g = generators::grid(4, 4);
    let net = Network::new(g, NodeId::new(0));
    let mut daemon = LocallyCentralRandom::seeded(7, &net);
    let mut rng = StdRng::seed_from_u64(3);
    let mut sim = Simulation::from_random(&net, BfsSpanningTree, &mut rng);
    let run = sim.run_until_silent(&mut daemon, 2_000_000);
    assert!(run.converged);
    assert!(bfs_legit(&net, sim.config()));
}
