//! The interface `STNO` is written against, and its oracle / DFS-tree
//! implementations.
//!
//! Chapter 4 keeps the spanning tree abstract: the underlying protocol
//! classifies processors as root / internal / leaf and maintains, at each
//! processor, its parent (`A_p`) and its children (`D_p`). The
//! [`SpanningTree`] trait captures exactly the locally derivable part of
//! that: given a node's view (own and neighbor states of the underlying
//! protocol), produce the parent port and the port-ordered child list.

use rand::RngCore;
use sno_engine::{NodeCtx, NodeView, Protocol, SpaceMeasured, StateTxn};
use sno_graph::{NodeId, Port, RootedTree};
use sno_token::cd::CollinDolev;
use sno_token::DfsPath;

use crate::bfs::{BfsSpanningTree, BfsState};

/// A spanning tree substrate: a protocol from whose states each processor
/// can locally derive its tree position.
///
/// Implementations: [`BfsSpanningTree`] (self-stabilizing BFS tree),
/// [`OracleSpanningTree`] (frozen tree), [`CdSpanningTree`] (self-
/// stabilizing first-DFS tree).
pub trait SpanningTree: Protocol {
    /// The port toward the parent `A_p`, if currently defined (`None` at
    /// the root or while the substrate is still stabilizing).
    fn parent_port(&self, view: &impl NodeView<Self::State>) -> Option<Port>;

    /// The ports toward the children `D_p`, in ascending port order — the
    /// order `Distribute` hands out name ranges.
    fn children_ports(&self, view: &impl NodeView<Self::State>) -> Vec<Port>;

    /// Appends the children ports to a caller-provided buffer instead of
    /// allocating — the variant `STNO`'s hot guard evaluation uses
    /// (through its [`sno_engine::Scratch`] arena). Implementations
    /// should override this to avoid the default's allocation.
    fn children_ports_into(&self, view: &impl NodeView<Self::State>, out: &mut Vec<Port>) {
        out.extend(self.children_ports(view));
    }

    /// `true` iff this substrate is **frozen**: it has no actions, its
    /// states never change, and each node's tree position is a function
    /// of the node's static context alone. A frozen substrate makes the
    /// layering `STNO` port-separable (tree edges cannot move under it),
    /// and must answer [`SpanningTree::static_parent_port`].
    fn frozen(&self) -> bool {
        false
    }

    /// The parent port derived from static context only — required (and
    /// meaningful) exactly when [`SpanningTree::frozen`] answers `true`;
    /// used by write-side invalidation, which has no neighbor view.
    fn static_parent_port(&self, ctx: &sno_engine::NodeCtx) -> Option<Port> {
        let _ = ctx;
        None
    }
}

impl SpanningTree for BfsSpanningTree {
    fn parent_port(&self, view: &impl NodeView<BfsState>) -> Option<Port> {
        if view.ctx().is_root {
            None
        } else {
            view.state().parent
        }
    }

    fn children_ports(&self, view: &impl NodeView<BfsState>) -> Vec<Port> {
        let mut out = Vec::new();
        self.children_ports_into(view, &mut out);
        out
    }

    fn children_ports_into(&self, view: &impl NodeView<BfsState>, out: &mut Vec<Port>) {
        // q is my child iff q's parent port points back at me.
        let ctx = view.ctx();
        out.extend(
            (0..ctx.degree)
                .map(Port::new)
                .filter(|&l| view.neighbor(l).parent == Some(ctx.back_ports[l.index()])),
        );
    }
}

/// A frozen spanning tree with no actions — the paper's "after the
/// spanning tree protocol stabilizes" regime, for isolating `STNO`.
#[derive(Debug, Clone)]
pub struct OracleSpanningTree {
    parents: Vec<Option<Port>>,
    children: Vec<Vec<Port>>,
}

impl OracleSpanningTree {
    /// Freezes `tree` (children resolved to the parent's ports in `g`).
    ///
    /// # Panics
    ///
    /// Panics if `tree` is not a spanning tree of `g`.
    pub fn from_graph(g: &sno_graph::Graph, tree: &RootedTree) -> Self {
        let n = tree.node_count();
        let mut parents = Vec::with_capacity(n);
        let mut children = Vec::with_capacity(n);
        for i in 0..n {
            let p = NodeId::new(i);
            parents.push(tree.parent_port(p));
            children.push(
                tree.children(p)
                    .iter()
                    .map(|&c| g.port_to(p, c).expect("tree edge"))
                    .collect(),
            );
        }
        OracleSpanningTree { parents, children }
    }
}

impl Protocol for OracleSpanningTree {
    type State = ();
    type Action = std::convert::Infallible;

    fn enabled(&self, _view: &impl NodeView<()>, _out: &mut Vec<Self::Action>) {}

    fn apply_in_place(&self, _txn: &mut impl StateTxn<()>, action: &Self::Action) {
        match *action {}
    }

    fn initial_state(&self, _ctx: &NodeCtx) {}

    fn random_state(&self, _ctx: &NodeCtx, _rng: &mut dyn RngCore) {}

    // The inert substrate is trivially port-separable: no guard ever
    // holds, no state ever changes.

    fn port_separable(&self) -> bool {
        true
    }

    fn enabled_from_cache(
        &self,
        _view: &impl NodeView<()>,
        _cache: &mut sno_engine::PortCache<'_>,
        _out: &mut Vec<Self::Action>,
        _scratch: &mut sno_engine::Scratch,
    ) -> bool {
        true // inert: never any action
    }

    fn init_ports(&self, _view: &impl NodeView<()>, _cache: &mut sno_engine::PortCache<'_>) -> u32 {
        0
    }

    fn refresh_self(
        &self,
        _view: &impl NodeView<()>,
        _touched: u64,
        _cache: &mut sno_engine::PortCache<'_>,
    ) -> sno_engine::PortVerdict {
        sno_engine::PortVerdict::Unchanged
    }

    fn reevaluate_port(
        &self,
        _view: &impl NodeView<()>,
        _port: Port,
        _cache: &mut sno_engine::PortCache<'_>,
    ) -> sno_engine::PortVerdict {
        sno_engine::PortVerdict::Unchanged
    }
}

impl SpanningTree for OracleSpanningTree {
    fn parent_port(&self, view: &impl NodeView<()>) -> Option<Port> {
        self.parents[view.ctx().id.index()]
    }

    fn children_ports(&self, view: &impl NodeView<()>) -> Vec<Port> {
        self.children[view.ctx().id.index()].clone()
    }

    fn children_ports_into(&self, view: &impl NodeView<()>, out: &mut Vec<Port>) {
        out.extend_from_slice(&self.children[view.ctx().id.index()]);
    }

    fn frozen(&self) -> bool {
        true
    }

    fn static_parent_port(&self, ctx: &NodeCtx) -> Option<Port> {
        self.parents[ctx.id.index()]
    }
}

impl SpaceMeasured for OracleSpanningTree {
    fn state_bits(&self, _ctx: &NodeCtx) -> usize {
        0
    }
}

/// The Collin–Dolev first-DFS tree exposed through the [`SpanningTree`]
/// interface — the substrate for the conclusion's observation that `STNO`
/// over a DFS tree reproduces `DFTNO`'s names (experiment E9).
#[derive(Debug, Clone, Copy, Default)]
pub struct CdSpanningTree;

impl CdSpanningTree {
    fn cap(ctx: &NodeCtx) -> usize {
        CollinDolev::cap(ctx)
    }
}

impl Protocol for CdSpanningTree {
    type State = DfsPath;
    type Action = sno_token::cd::FixPath;

    fn enabled(&self, view: &impl NodeView<DfsPath>, out: &mut Vec<Self::Action>) {
        CollinDolev.enabled(view, out);
    }

    fn apply_in_place(&self, txn: &mut impl StateTxn<DfsPath>, action: &Self::Action) {
        CollinDolev.apply_in_place(txn, action)
    }

    fn initial_state(&self, ctx: &NodeCtx) -> DfsPath {
        CollinDolev.initial_state(ctx)
    }

    fn random_state(&self, ctx: &NodeCtx, rng: &mut dyn RngCore) -> DfsPath {
        CollinDolev.random_state(ctx, rng)
    }
}

impl SpanningTree for CdSpanningTree {
    fn parent_port(&self, view: &impl NodeView<DfsPath>) -> Option<Port> {
        let ctx = view.ctx();
        if ctx.is_root {
            return None;
        }
        let cap = Self::cap(ctx);
        let my = view.state();
        if my.is_top() {
            return None;
        }
        (0..ctx.degree)
            .map(Port::new)
            .find(|&l| *my == view.neighbor(l).extend(ctx.back_ports[l.index()], cap))
    }

    fn children_ports(&self, view: &impl NodeView<DfsPath>) -> Vec<Port> {
        let mut out = Vec::new();
        self.children_ports_into(view, &mut out);
        out
    }

    fn children_ports_into(&self, view: &impl NodeView<DfsPath>, out: &mut Vec<Port>) {
        let ctx = view.ctx();
        let cap = Self::cap(ctx);
        let my = view.state();
        if my.is_top() {
            return;
        }
        let parent = self.parent_port(view);
        if !ctx.is_root && parent.is_none() {
            return;
        }
        out.extend(
            (0..ctx.degree)
                .map(Port::new)
                .filter(|&l| Some(l) != parent && *view.neighbor(l) == my.extend(l, cap)),
        );
    }
}

impl SpaceMeasured for CdSpanningTree {
    fn state_bits(&self, ctx: &NodeCtx) -> usize {
        CollinDolev.state_bits(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sno_engine::daemon::CentralRoundRobin;
    use sno_engine::protocol::ConfigView;
    use sno_engine::{Network, Simulation};
    use sno_graph::{generators, traverse};

    #[test]
    fn bfs_children_match_golden_tree() {
        let g = generators::random_connected(14, 9, 6);
        let net = Network::new(g.clone(), NodeId::new(0));
        let mut rng = StdRng::seed_from_u64(1);
        let mut sim = Simulation::from_random(&net, BfsSpanningTree, &mut rng);
        sim.run_until_silent(&mut CentralRoundRobin::new(), 1_000_000);

        let golden = traverse::bfs(&g, NodeId::new(0));
        let tree = RootedTree::from_parents(&g, NodeId::new(0), &golden.parent).unwrap();
        for p in net.nodes() {
            let view = ConfigView::new(&net, p, sim.config());
            let kids = BfsSpanningTree.children_ports(&view);
            let golden_kids: Vec<Port> = tree
                .children(p)
                .iter()
                .map(|&c| g.port_to(p, c).unwrap())
                .collect();
            assert_eq!(kids, golden_kids, "children at {p}");
            assert_eq!(
                BfsSpanningTree.parent_port(&view),
                golden.parent_port[p.index()]
            );
        }
    }

    #[test]
    fn oracle_tree_reports_the_frozen_tree_and_never_acts() {
        let g = generators::paper_example_stno();
        let golden = traverse::bfs(&g, NodeId::new(0));
        let tree = RootedTree::from_parents(&g, NodeId::new(0), &golden.parent).unwrap();
        let oracle = OracleSpanningTree::from_graph(&g, &tree);
        let net = Network::new(g, NodeId::new(0));
        let sim = Simulation::from_initial(&net, oracle.clone());
        assert!(sim.enabled_nodes().is_empty(), "oracle is inert");
        for p in net.nodes() {
            let view = ConfigView::new(&net, p, sim.config());
            assert_eq!(oracle.parent_port(&view), tree.parent_port(p));
            assert_eq!(oracle.children_ports(&view).len(), tree.children(p).len());
        }
    }

    #[test]
    fn cd_tree_matches_golden_dfs_after_stabilization() {
        let g = generators::random_connected(12, 8, 3);
        let net = Network::new(g.clone(), NodeId::new(0));
        let mut rng = StdRng::seed_from_u64(4);
        let mut sim = Simulation::from_random(&net, CdSpanningTree, &mut rng);
        let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 1_000_000);
        assert!(run.converged);

        let dfs = traverse::first_dfs(&g, NodeId::new(0));
        for p in net.nodes() {
            let view = ConfigView::new(&net, p, sim.config());
            assert_eq!(
                CdSpanningTree.parent_port(&view),
                dfs.parent_port[p.index()],
                "parent at {p}"
            );
            let kids: Vec<NodeId> = CdSpanningTree
                .children_ports(&view)
                .iter()
                .map(|&l| g.neighbor(p, l))
                .collect();
            assert_eq!(kids, dfs.children[p.index()], "children at {p}");
        }
    }
}
