//! The silent self-stabilizing BFS spanning tree.
//!
//! Every non-root processor drives its pair `(dist, parent)` toward
//! `dist = 1 + min_q dist_q` (capped at `N`, the known bound) and
//! `parent =` the lowest port whose neighbor attains the minimum. The root
//! pins `(0, ⊥)`. The unique silent fixpoint is the lowest-port BFS tree
//! (golden model: [`sno_graph::traverse::bfs`]), reached in `O(diam)`
//! rounds from any configuration under any daemon — the standard
//! construction the paper cites as \[8, 12\].

use rand::Rng as _;
use rand::RngCore;
use sno_engine::protocol::neighbor_states;
use sno_engine::{
    Enumerable, LayerLayout, NodeCtx, NodeView, PortCache, PortVerdict, Protocol, SpaceMeasured,
    StateTxn,
};
use sno_graph::Port;

/// Per-processor variables of the BFS tree protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BfsState {
    /// Believed hop distance to the root (capped at `N`).
    pub dist: u32,
    /// Believed parent port (`None` at the root — or while corrupted).
    pub parent: Option<Port>,
}

/// The single action: overwrite `(dist, parent)` with the target value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recompute;

/// The BFS spanning tree protocol (see module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BfsSpanningTree;

impl BfsSpanningTree {
    /// The value the guard compares against.
    pub fn target(view: &impl NodeView<BfsState>) -> BfsState {
        let ctx = view.ctx();
        if ctx.is_root {
            return BfsState {
                dist: 0,
                parent: None,
            };
        }
        let cap = ctx.n_bound as u32;
        let mut best_dist = cap;
        let mut best_port = None;
        for (l, s) in neighbor_states(view) {
            let through = s.dist.saturating_add(1).min(cap);
            if through < best_dist {
                best_dist = through;
                best_port = Some(l);
            }
        }
        BfsState {
            dist: best_dist,
            parent: if best_dist < cap { best_port } else { None },
        }
    }

    // --- Port-cache helpers (cached min-aggregate pattern, following
    // `HopDistance`): one 32-bit port word caches the neighbor's `dist`,
    // the node word holds the maintained `(min dist, lowest argmin
    // port)` pair, so a neighbor change re-evaluates one port instead of
    // the whole neighborhood. ---

    /// Packs the maintained aggregate: low 32 bits the minimum neighbor
    /// distance, high bits the lowest port attaining it plus one (zero
    /// when the node has no ports).
    fn pack_min(min: u64, argmin: Option<usize>) -> u64 {
        min | ((argmin.map_or(0, |l| l as u64 + 1)) << 32)
    }

    /// Rescans every cached port word for the `(min, lowest argmin)`
    /// aggregate — cache (re)initialization and the amortized-rare case
    /// of the previous minimum growing.
    fn scan_min(cache: &PortCache<'_>) -> u64 {
        let mut min = u64::from(u32::MAX);
        let mut argmin = None;
        for l in 0..cache.port_count() {
            let d = cache.port(l);
            if d < min {
                min = d;
                argmin = Some(l);
            }
        }
        Self::pack_min(min, argmin)
    }

    /// The target recomputed from the cached aggregate — must agree with
    /// [`BfsSpanningTree::target`] whenever the cache is current.
    fn target_from_min(ctx: &NodeCtx, packed: u64) -> BfsState {
        if ctx.is_root {
            return BfsState {
                dist: 0,
                parent: None,
            };
        }
        let cap = ctx.n_bound as u32;
        let min = u32::try_from(packed & u64::from(u32::MAX)).unwrap_or(u32::MAX);
        let best = min.saturating_add(1).min(cap);
        // `best < cap` implies the minimum itself was below `cap - 1`,
        // so the lowest port attaining the minimal *through* value is
        // exactly the lowest port attaining the minimal distance.
        let parent = if best < cap {
            Some(Port::new((packed >> 32) as usize - 1))
        } else {
            None
        };
        BfsState { dist: best, parent }
    }

    fn count_from_cache(view: &impl NodeView<BfsState>, cache: &PortCache<'_>) -> u32 {
        u32::from(*view.state() != Self::target_from_min(view.ctx(), cache.node[0]))
    }
}

impl Protocol for BfsSpanningTree {
    type State = BfsState;
    type Action = Recompute;

    fn enabled(&self, view: &impl NodeView<BfsState>, out: &mut Vec<Recompute>) {
        if *view.state() != Self::target(view) {
            out.push(Recompute);
        }
    }

    fn apply_in_place(&self, txn: &mut impl StateTxn<BfsState>, _action: &Recompute) {
        let t = Self::target(txn);
        let dist_changed = txn.state().dist != t.dist;
        *txn.state_mut() = t;
        // Neighbor guards read only this node's `dist` (their targets);
        // the parent choice is read by nobody, so a parent-only repair
        // dirties nothing.
        if dist_changed {
            txn.touch_all_ports();
        } else {
            txn.mark_unobservable();
        }
        txn.commit();
    }

    // --- Port-separable interface (closes the ROADMAP "self-stabilizing
    // substrates are not port-separable yet" bullet for the BFS tree;
    // the Collin–Dolev path comparisons remain genuinely
    // neighborhood-global and keep the conservative default). ---

    fn port_separable(&self) -> bool {
        true
    }

    fn port_layout(&self) -> LayerLayout {
        LayerLayout::new(32, 1)
    }

    fn enabled_from_cache(
        &self,
        view: &impl NodeView<BfsState>,
        cache: &mut PortCache<'_>,
        out: &mut Vec<Recompute>,
        _scratch: &mut sno_engine::Scratch,
    ) -> bool {
        if *view.state() != Self::target_from_min(view.ctx(), cache.node[0]) {
            out.push(Recompute);
        }
        true
    }

    fn init_ports(&self, view: &impl NodeView<BfsState>, cache: &mut PortCache<'_>) -> u32 {
        for (l, s) in neighbor_states(view) {
            cache.set_port(l.index(), u64::from(s.dist));
        }
        cache.node[0] = Self::scan_min(cache);
        Self::count_from_cache(view, cache)
    }

    fn refresh_self(
        &self,
        view: &impl NodeView<BfsState>,
        _touched: u64,
        cache: &mut PortCache<'_>,
    ) -> PortVerdict {
        // Nothing cached depends on own state: O(1).
        PortVerdict::Count(Self::count_from_cache(view, cache))
    }

    fn reevaluate_port(
        &self,
        view: &impl NodeView<BfsState>,
        port: Port,
        cache: &mut PortCache<'_>,
    ) -> PortVerdict {
        let li = port.index();
        let new = u64::from(view.neighbor(port).dist);
        let old = cache.port(li);
        if new == old {
            return PortVerdict::Unchanged;
        }
        cache.set_port(li, new);
        let packed = cache.node[0];
        let min = packed & u64::from(u32::MAX);
        let argmin = (packed >> 32) as usize;
        if new < min || (new == min && li + 1 < argmin) {
            cache.node[0] = Self::pack_min(new, Some(li));
        } else if old == min && li + 1 == argmin {
            // The previous minimum's holder grew: rescan (amortized
            // rare).
            cache.node[0] = Self::scan_min(cache);
        }
        PortVerdict::Count(Self::count_from_cache(view, cache))
    }

    fn initial_state(&self, ctx: &NodeCtx) -> BfsState {
        BfsState {
            dist: ctx.n_bound as u32,
            parent: None,
        }
    }

    fn random_state(&self, ctx: &NodeCtx, rng: &mut dyn RngCore) -> BfsState {
        let parent = match rng.random_range(0..=ctx.degree) {
            0 => None,
            l => Some(Port::new(l - 1)),
        };
        BfsState {
            dist: rng.random_range(0..=ctx.n_bound as u32),
            parent,
        }
    }
}

impl Enumerable for BfsSpanningTree {
    fn enumerate_states(&self, ctx: &NodeCtx) -> Vec<BfsState> {
        let mut out = Vec::new();
        for dist in 0..=ctx.n_bound as u32 {
            out.push(BfsState { dist, parent: None });
            for l in 0..ctx.degree {
                out.push(BfsState {
                    dist,
                    parent: Some(Port::new(l)),
                });
            }
        }
        out
    }
}

impl SpaceMeasured for BfsSpanningTree {
    fn state_bits(&self, ctx: &NodeCtx) -> usize {
        // dist: log N bits; parent: log(Δ+1) bits.
        let log_n = (usize::BITS - (ctx.n_bound + 1).leading_zeros()) as usize;
        let log_d = (usize::BITS - (ctx.degree + 1).leading_zeros()) as usize;
        log_n + log_d
    }
}

/// `true` iff `config` is the fixpoint: golden BFS distances with the
/// lowest-port parent choice.
pub fn bfs_legit(net: &sno_engine::Network, config: &[BfsState]) -> bool {
    let golden = sno_graph::traverse::bfs(net.graph(), net.root());
    config
        .iter()
        .enumerate()
        .all(|(i, s)| s.dist as usize == golden.dist[i] && s.parent == golden.parent_port[i])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sno_engine::daemon::{
        CentralFixedPriority, CentralRoundRobin, DistributedRandom, Synchronous,
    };
    use sno_engine::modelcheck::ModelChecker;
    use sno_engine::{Network, Simulation};
    use sno_graph::{generators, NodeId};

    fn stabilize(net: &Network, seed: u64) -> Vec<BfsState> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = Simulation::from_random(net, BfsSpanningTree, &mut rng);
        let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 2_000_000);
        assert!(run.converged);
        sim.config().to_vec()
    }

    #[test]
    fn fixpoint_is_golden_bfs_on_all_topologies() {
        for (i, t) in generators::Topology::ALL.into_iter().enumerate() {
            let g = t.build(14, 5);
            let net = Network::new(g, NodeId::new(0));
            let config = stabilize(&net, i as u64);
            assert!(bfs_legit(&net, &config), "topology {t}");
        }
    }

    #[test]
    fn stabilizes_under_every_daemon() {
        let g = generators::random_connected(12, 9, 7);
        let net = Network::new(g, NodeId::new(0));
        let mut rng = StdRng::seed_from_u64(3);

        let mut sim = Simulation::from_random(&net, BfsSpanningTree, &mut rng);
        assert!(
            sim.run_until_silent(&mut Synchronous::new(), 100_000)
                .converged
        );
        assert!(bfs_legit(&net, sim.config()));

        let mut sim = Simulation::from_random(&net, BfsSpanningTree, &mut rng);
        assert!(
            sim.run_until_silent(&mut DistributedRandom::seeded(8), 1_000_000)
                .converged
        );
        assert!(bfs_legit(&net, sim.config()));

        // The unfair daemon: always serves the lowest-index enabled node.
        let mut sim = Simulation::from_random(&net, BfsSpanningTree, &mut rng);
        assert!(
            sim.run_until_silent(&mut CentralFixedPriority::new(), 1_000_000)
                .converged
        );
        assert!(bfs_legit(&net, sim.config()));
    }

    #[test]
    fn rounds_to_silence_scale_with_eccentricity() {
        // Synchronous rounds ≈ O(diam), not O(n): compare a star (ecc 1)
        // against a path (ecc n−1) of the same size.
        let star = Network::new(generators::star(32), NodeId::new(0));
        let mut sim = Simulation::from_initial(&star, BfsSpanningTree);
        let run = sim.run_until_silent(&mut Synchronous::new(), 10_000);
        assert!(run.steps <= 4, "star stabilizes in O(1) sync steps");

        let path = Network::new(generators::path(32), NodeId::new(0));
        let mut sim = Simulation::from_initial(&path, BfsSpanningTree);
        let run = sim.run_until_silent(&mut Synchronous::new(), 10_000);
        assert!(run.steps >= 30, "path needs Θ(n) sync steps");
    }

    #[test]
    fn exhaustive_model_check_on_path3_and_triangle() {
        for g in [generators::path(3), generators::ring(3)] {
            let net = Network::new(g, NodeId::new(0));
            let mc = ModelChecker::new(&net, &BfsSpanningTree, 10_000_000).unwrap();
            let legit = |c: &[BfsState]| bfs_legit(&net, c);
            let rep = mc.check_closure(legit).expect("closure");
            assert_eq!(rep.legitimate, 1);
            mc.check_convergence_any_schedule(legit)
                .expect("convergence under any schedule");
        }
    }

    #[test]
    fn loose_bound_still_stabilizes() {
        let g = generators::ring(6);
        let net = Network::with_bound(g, NodeId::new(0), 20);
        let config = stabilize(&net, 9);
        assert!(bfs_legit(&net, &config));
    }
}
