//! # sno-tree
//!
//! Self-stabilizing **spanning tree** substrates for `STNO` (Chapter 4 of
//! the paper). The paper assumes "an underlying protocol \[that\]
//! deterministically maintains a spanning tree of the graph" and cites
//! several constructions \[1, 2, 8, 12\]; any of them may be plugged in.
//! This crate ships:
//!
//! * [`bfs::BfsSpanningTree`] — the classic silent self-stabilizing BFS
//!   distance tree (`dist_r = 0`, `dist_p = 1 + min_q dist_q`, parent = the
//!   lowest port at minimum distance), stabilizing in `O(diam)` rounds
//!   under any daemon;
//! * [`provider::OracleSpanningTree`] — a frozen tree with no actions,
//!   modeling the paper's "after the spanning tree protocol stabilizes"
//!   regime for isolation experiments;
//! * [`provider::CdSpanningTree`] — the Collin–Dolev *DFS* tree re-exposed
//!   through the same interface, for the conclusion's observation that
//!   `STNO` over a DFS tree names nodes exactly like `DFTNO` (experiment
//!   E9).
//!
//! All three implement [`provider::SpanningTree`], the interface `STNO` is
//! written against: a protocol from whose states each node can locally
//! derive its parent port, its (port-ordered) children, and its role
//! (root / internal / leaf).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod provider;

pub use bfs::{bfs_legit, BfsSpanningTree, BfsState};
pub use provider::{CdSpanningTree, OracleSpanningTree, SpanningTree};
