//! E7–E8: the substrates' own guarantees, measured.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sno_engine::daemon::{CentralRoundRobin, Synchronous};
use sno_engine::{Network, Simulation};
use sno_graph::{generators, props, NodeId};
use sno_token::dftc::{dftc_legit, DfsTokenCirculation};
use sno_tree::{bfs_legit, BfsSpanningTree};

use crate::cells;
use crate::table::Table;

/// **E7** — the depth-first token circulation substrate: convergence from
/// arbitrary configurations and the `Θ(n)` round length the paper's
/// `O(n)` bound leans on.
pub fn e7_token_substrate() -> Table {
    let mut t = Table::new(
        "E7: self-stabilizing DFTC — convergence moves (avg of 3 seeds) and clean round length",
        &[
            "topology",
            "n",
            "m",
            "moves to legit",
            "round moves",
            "round/n",
        ],
    );
    for topo in [
        generators::Topology::Path,
        generators::Topology::Ring,
        generators::Topology::RandomTree,
        generators::Topology::RandomSparse,
    ] {
        for &n in &[8usize, 12, 16, 24] {
            let g = topo.build(n, 13);
            let n_actual = g.node_count();
            let m = g.edge_count();
            let net = Network::new(g, NodeId::new(0));
            let mut total = 0u64;
            for seed in 0..3u64 {
                let mut rng = StdRng::seed_from_u64(300 + seed);
                let mut sim = Simulation::from_random(&net, DfsTokenCirculation, &mut rng);
                let run = sim.run_until(&mut CentralRoundRobin::new(), 20_000_000, |c| {
                    dftc_legit(&net, c)
                });
                assert!(run.converged, "E7 {topo} n={n} seed={seed}");
                total += run.moves;
            }
            // Clean round length: moves between two root round-starts.
            let round = measure_round_moves(&net);
            t.row(cells!(
                topo,
                n_actual,
                m,
                format!("{:.0}", total as f64 / 3.0),
                round,
                format!("{:.2}", round as f64 / n_actual as f64)
            ));
        }
    }
    t
}

/// Moves of one clean token round (between consecutive returns to a
/// legitimate configuration with the root about to take the token).
fn measure_round_moves(net: &Network) -> u64 {
    let mut rng = StdRng::seed_from_u64(9);
    let mut sim = Simulation::from_random(net, DfsTokenCirculation, &mut rng);
    let mut daemon = CentralRoundRobin::new();
    let run = sim.run_until(&mut daemon, 20_000_000, |c| dftc_legit(net, c));
    assert!(run.converged);
    // Advance to the start of a round: root not working.
    let root = net.root();
    for _ in 0..1_000_000 {
        if !sim.state(root).tok.working {
            break;
        }
        sim.step(&mut daemon);
    }
    let before = sim.moves();
    // One full round: root works and finishes again.
    let mut seen_working = false;
    for _ in 0..1_000_000 {
        sim.step(&mut daemon);
        let w = sim.state(root).tok.working;
        if w {
            seen_working = true;
        }
        if seen_working && !w {
            break;
        }
    }
    sim.moves() - before
}

/// **E8** — the BFS spanning tree substrate: synchronous rounds to
/// silence track the root's eccentricity, not `n`.
pub fn e8_tree_substrate() -> Table {
    let mut t = Table::new(
        "E8: self-stabilizing BFS tree — synchronous rounds to silence vs eccentricity (avg of 3 seeds)",
        &["topology", "n", "ecc(root)", "rounds", "rounds/ecc"],
    );
    let mut measure = |name: &str, g: sno_graph::Graph| {
        let root = NodeId::new(0);
        let stats = props::stats(&g, root);
        let net = Network::new(g, root);
        let mut total = 0u64;
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(500 + seed);
            let mut sim = Simulation::from_random(&net, BfsSpanningTree, &mut rng);
            let run = sim.run_until_silent(&mut Synchronous::new(), 1_000_000);
            assert!(run.converged, "E8 {name} seed={seed}");
            assert!(bfs_legit(&net, sim.config()));
            total += run.steps;
        }
        let rounds = total as f64 / 3.0;
        let ecc = stats.root_ecc.max(1);
        t.row(cells!(
            name,
            stats.n,
            stats.root_ecc,
            format!("{rounds:.1}"),
            format!("{:.2}", rounds / ecc as f64)
        ));
    };
    measure("star", generators::star(64));
    measure("hypercube", generators::hypercube(6));
    measure("grid 8x8", generators::grid(8, 8));
    measure("ring", generators::ring(64));
    measure("path", generators::path(64));
    t
}

/// **E14 (ablation, DESIGN.md §6)** — what the self-stabilizing substrate
/// costs `DFTNO`: moves to orientation with (a) the golden oracle
/// substrate, (b) the real substrate started with its word layer already
/// stabilized ("after the token circulation stabilizes", the paper's
/// clause), and (c) the real substrate from a fully arbitrary
/// configuration. (b) − (a) is the overhead of the token wave; (c) − (b)
/// is the word-layer stabilization the paper's bound deliberately
/// excludes.
pub fn e14_substrate_ablation() -> Table {
    use sno_core::dftno::{dftno_golden, Dftno};
    use sno_engine::daemon::CentralRandom;
    use sno_token::{DfsPath, OracleToken};

    let mut t = Table::new(
        "E14 (ablation): DFTNO moves to orientation by substrate regime (avg of 3 seeds)",
        &[
            "n",
            "(a) oracle",
            "(b) DFTC, words stable",
            "(c) DFTC, all random",
        ],
    );
    for &n in &[6usize, 8, 10, 12] {
        let g = generators::random_connected(n, n, 7);
        let root = NodeId::new(0);
        let dfs = sno_graph::traverse::first_dfs(&g, root);
        let oracle = OracleToken::new(&g, root);
        let net = Network::new(g, root);

        let avg = |mut run: Box<dyn FnMut(u64) -> u64>| -> f64 {
            (0..3).map(|s| run(s) as f64).sum::<f64>() / 3.0
        };

        let a = {
            let proto = Dftno::new(oracle);
            let net = &net;
            avg(Box::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut sim = Simulation::from_random(net, proto.clone(), &mut rng);
                let run = sim.run_until(&mut CentralRandom::seeded(seed), 40_000_000, |c| {
                    dftno_golden(net, c)
                });
                assert!(run.converged);
                run.moves
            }))
        };

        let b = {
            let net = &net;
            let dfs = &dfs;
            avg(Box::new(move |seed| {
                let proto = Dftno::new(DfsTokenCirculation);
                let mut rng = StdRng::seed_from_u64(seed);
                // Words at their fixpoint, token wave clean, orientation
                // variables arbitrary.
                let config: Vec<_> = net
                    .nodes()
                    .map(|p| {
                        let mut s =
                            sno_engine::Protocol::random_state(&proto, net.ctx(p), &mut rng);
                        let word: Vec<u16> = dfs.root_path[p.index()]
                            .iter()
                            .map(|l| l.index() as u16)
                            .collect();
                        s.token.path = DfsPath::from_ports(&word);
                        s.token.tok = sno_token::tok::TokState::clean(net.ctx(p).degree);
                        s
                    })
                    .collect();
                let mut sim = Simulation::new(net, proto, config);
                let run = sim.run_until(&mut CentralRandom::seeded(seed), 40_000_000, |c| {
                    dftno_golden(net, c)
                });
                assert!(run.converged);
                run.moves
            }))
        };

        let c = {
            let net = &net;
            avg(Box::new(move |seed| {
                let proto = Dftno::new(DfsTokenCirculation);
                let mut rng = StdRng::seed_from_u64(seed);
                let mut sim = Simulation::from_random(net, proto, &mut rng);
                let run = sim.run_until(&mut CentralRandom::seeded(seed), 40_000_000, |cfg| {
                    dftno_golden(net, cfg)
                });
                assert!(run.converged);
                run.moves
            }))
        };

        t.row(cells!(
            n,
            format!("{a:.0}"),
            format!("{b:.0}"),
            format!("{c:.0}")
        ));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_round_length_is_linear() {
        let g = generators::random_connected(14, 10, 2);
        let net = Network::new(g, NodeId::new(0));
        let round = measure_round_moves(&net);
        assert!(round >= 14, "a round visits every node");
        assert!(round <= 4 * 14, "a round is O(n): {round}");
    }

    #[test]
    fn e8_rounds_scale_with_ecc_not_n() {
        let t = e8_tree_substrate();
        // star row: ecc 1, rounds small; path row: ecc 63, rounds ≈ ecc.
        let star: f64 = t.rows[0][3].parse().unwrap();
        let path: f64 = t.rows[4][3].parse().unwrap();
        assert!(star <= 5.0);
        assert!(path >= 60.0);
    }
}
