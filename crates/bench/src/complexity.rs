//! E4–E6: the paper's analytic complexity claims, measured.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sno_core::dftno::{dftno_golden, dftno_orientation_bits, Dftno};
use sno_core::stno::{stno_golden, stno_orientation_bits, Stno};
use sno_engine::daemon::{CentralRandom, Synchronous};
use sno_engine::{Network, Simulation, SpaceMeasured};
use sno_graph::{generators, traverse, NodeId, RootedTree};
use sno_token::{DfsTokenCirculation, OracleToken};
use sno_tree::{BfsSpanningTree, OracleSpanningTree};

use crate::cells;
use crate::table::Table;

/// One measured stabilization, averaged over seeds.
fn average<F: FnMut(u64) -> (u64, u64)>(seeds: u64, mut run: F) -> (f64, f64) {
    let mut moves = 0u64;
    let mut rounds = 0u64;
    for s in 0..seeds {
        let (m, r) = run(s);
        moves += m;
        rounds += r;
    }
    (moves as f64 / seeds as f64, rounds as f64 / seeds as f64)
}

/// **E4 / Theorem 3.2.3, §3.2.3** — `DFTNO` stabilizes in `O(n)` steps
/// after the token circulation stabilizes: moves-to-orientation from
/// arbitrary orientation variables over the golden substrate, across
/// sizes and topologies. The `moves/n` column should stay near a small
/// constant for sparse graphs (the `Edgelabel` repairs add an `O(m)`
/// term, visible on dense rows — see EXPERIMENTS.md).
pub fn e4_dftno_linear() -> Table {
    let mut t = Table::new(
        "E4 (§3.2.3): DFTNO moves to orientation after the token layer is stable (avg of 3 seeds)",
        &["topology", "n", "m", "moves", "moves/n", "rounds"],
    );
    type Builder = fn(usize) -> sno_graph::Graph;
    let sweeps: &[(&str, Builder)] = &[
        ("path", |n| generators::path(n)),
        ("ring", |n| generators::ring(n)),
        ("random-tree", |n| generators::random_tree(n, 77)),
        ("random-sparse", |n| generators::random_connected(n, 2 * n, 77)),
        ("random-dense", |n| {
            generators::random_connected(n, n * n / 4, 77)
        }),
    ];
    for (name, build) in sweeps {
        for &n in &[8usize, 16, 32, 64, 128] {
            let g = build(n);
            let m = g.edge_count();
            let root = NodeId::new(0);
            let oracle = OracleToken::new(&g, root);
            let net = Network::new(g, root);
            let proto = Dftno::new(oracle);
            let (moves, rounds) = average(3, |seed| {
                let mut rng = StdRng::seed_from_u64(1000 + seed);
                let mut sim = Simulation::from_random(&net, proto.clone(), &mut rng);
                let mut daemon = CentralRandom::seeded(seed);
                let run = sim.run_until(&mut daemon, 80_000_000, |c| dftno_golden(&net, c));
                assert!(run.converged, "E4 {name} n={n} seed={seed}");
                (run.moves, run.rounds)
            });
            t.row(cells!(
                name,
                n,
                m,
                format!("{moves:.0}"),
                format!("{:.2}", moves / n as f64),
                format!("{rounds:.0}")
            ));
        }
    }
    t
}

/// **E5 / Theorem 4.2.3, §4.2.3** — `STNO` stabilizes in `O(h)` steps
/// after the tree stabilizes: synchronous steps (= rounds) to silence
/// from arbitrary orientation variables over a frozen tree. Linear in the
/// height `h`, flat in `n` at fixed `h`.
pub fn e5_stno_height() -> Table {
    let mut t = Table::new(
        "E5 (§4.2.3): STNO synchronous rounds to silence over a frozen tree (avg of 3 seeds)",
        &["topology", "n", "h", "rounds", "rounds/h"],
    );
    let mut measure = |name: &str, g: sno_graph::Graph| {
        let root = NodeId::new(0);
        let bfs = traverse::bfs(&g, root);
        let tree = RootedTree::from_parents(&g, root, &bfs.parent).expect("tree");
        let h = tree.height().max(1);
        let n = g.node_count();
        let oracle = OracleSpanningTree::from_graph(&g, &tree);
        let net = Network::new(g, root);
        let proto = Stno::new(oracle);
        let (rounds, _) = average(3, |seed| {
            let mut rng = StdRng::seed_from_u64(2000 + seed);
            let mut sim = Simulation::from_random(&net, proto.clone(), &mut rng);
            let run = sim.run_until_silent(&mut Synchronous::new(), 1_000_000);
            assert!(run.converged, "E5 {name} seed={seed}");
            (run.steps, 0)
        });
        t.row(cells!(
            name,
            n,
            h,
            format!("{rounds:.1}"),
            format!("{:.2}", rounds / h as f64)
        ));
    };
    // Varying h at comparable n.
    measure("star (h=1)", generators::star(64));
    measure("4-ary tree", generators::balanced_tree(4, 3));
    measure("binary tree", generators::balanced_tree(2, 5));
    measure("caterpillar", generators::caterpillar(16, 3));
    measure("path (h=n−1)", generators::path(64));
    // Fixed h ≈ 8, growing n: rounds must stay flat.
    for legs in [1usize, 3, 7, 15] {
        measure("caterpillar h≈8", generators::caterpillar(8, legs));
    }
    t
}

/// **E6 / §3.2.3 + §4.2.3 + Ch. 5** — space per processor in bits:
/// both orientation layers are `O(Δ × log N)`; `STNO` pays an extra
/// `O(Δ × log N)` for its tree while `DFTNO`'s substrate of \[10\] needs
/// only `O(log N)` (our Collin–Dolev substitute costs more — the
/// documented deviation, shown in its own column).
pub fn e6_space() -> Table {
    let mut t = Table::new(
        "E6 (§3.2.3/§4.2.3): max bits per processor (n = 32, tight N)",
        &[
            "topology",
            "Δ",
            "log N",
            "DFTNO orient",
            "STNO orient",
            "token [10] model",
            "token (ours, CD)",
            "tree (BFS)",
        ],
    );
    for topo in generators::Topology::ALL {
        let g = topo.build(32, 5);
        let root = NodeId::new(0);
        let oracle = OracleToken::new(&g, root);
        let net = Network::new(g, root);
        let log_n = (usize::BITS - net.n_bound().leading_zeros()) as usize;
        let max_over = |f: &dyn Fn(&sno_engine::NodeCtx) -> usize| {
            net.nodes().map(|p| f(net.ctx(p))).max().unwrap_or(0)
        };
        t.row(cells!(
            topo,
            net.graph().max_degree(),
            log_n,
            max_over(&dftno_orientation_bits),
            max_over(&stno_orientation_bits),
            max_over(&|c: &sno_engine::NodeCtx| oracle.state_bits(c)),
            max_over(&|c: &sno_engine::NodeCtx| DfsTokenCirculation.state_bits(c)),
            max_over(&|c: &sno_engine::NodeCtx| BfsSpanningTree.state_bits(c))
        ));
    }
    t
}

/// Data row of the E4 sweep, exposed for the criterion benches.
pub fn dftno_converge_once(n: usize, seed: u64) -> u64 {
    let g = generators::random_connected(n, 2 * n, 77);
    let root = NodeId::new(0);
    let oracle = OracleToken::new(&g, root);
    let net = Network::new(g, root);
    let proto = Dftno::new(oracle);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sim = Simulation::from_random(&net, proto, &mut rng);
    let mut daemon = CentralRandom::seeded(seed);
    let run = sim.run_until(&mut daemon, 80_000_000, |c| dftno_golden(&net, c));
    assert!(run.converged);
    run.moves
}

/// Data row of the E5 sweep, exposed for the criterion benches.
pub fn stno_converge_once(g: sno_graph::Graph, seed: u64) -> u64 {
    let root = NodeId::new(0);
    let bfs = traverse::bfs(&g, root);
    let tree = RootedTree::from_parents(&g, root, &bfs.parent).expect("tree");
    let oracle = OracleSpanningTree::from_graph(&g, &tree);
    let net = Network::new(g, root);
    let proto = Stno::new(oracle);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sim = Simulation::from_random(&net, proto, &mut rng);
    let run = sim.run_until_silent(&mut Synchronous::new(), 1_000_000);
    assert!(run.converged);
    assert!(stno_golden(&net, &tree, sim.config()));
    run.steps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_scaling_is_linearish_on_sparse() {
        // A cheap shape check: path moves/n at n=64 within 4x of n=8.
        let ratio = |n: usize| {
            let g = generators::path(n);
            let root = NodeId::new(0);
            let oracle = OracleToken::new(&g, root);
            let net = Network::new(g, root);
            let mut rng = StdRng::seed_from_u64(1);
            let mut sim = Simulation::from_random(&net, Dftno::new(oracle), &mut rng);
            let mut d = CentralRandom::seeded(1);
            let run = sim.run_until(&mut d, 80_000_000, |c| dftno_golden(&net, c));
            assert!(run.converged);
            run.moves as f64 / n as f64
        };
        let r8 = ratio(8);
        let r64 = ratio(64);
        assert!(r64 < 4.0 * r8, "moves/n should stay near-constant: {r8} vs {r64}");
    }

    #[test]
    fn e5_flat_at_fixed_height() {
        let small = stno_converge_once(generators::caterpillar(8, 1), 3);
        let large = stno_converge_once(generators::caterpillar(8, 15), 3);
        // n grows 8x; rounds may wiggle by a constant, not by 8x.
        assert!(large <= small + 10, "rounds flat at fixed h: {small} vs {large}");
    }

    #[test]
    fn e6_renders() {
        let t = e6_space();
        assert_eq!(t.rows.len(), generators::Topology::ALL.len());
    }
}
