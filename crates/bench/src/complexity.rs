//! E4–E6: the paper's analytic complexity claims, measured.
//!
//! E4 and E5 are expressed as `sno-lab` scenario matrices — the bench
//! crate declares *what* to sweep and renders the aggregated cells; the
//! lab owns execution, parallelism, and statistics.

use sno_core::dftno::dftno_orientation_bits;
use sno_core::stno::stno_orientation_bits;
use sno_engine::{Network, SpaceMeasured};
use sno_graph::{generators, traverse, GeneratorSpec, NodeId};
use sno_lab::{
    run_campaign, CellSpec, DaemonSpec, FaultPlan, ProtocolSpec, ScenarioMatrix, TokenSubstrate,
    TreeSubstrate,
};
use sno_token::{DfsTokenCirculation, OracleToken};
use sno_tree::BfsSpanningTree;

use crate::cells;
use crate::table::Table;

/// Seed used to instantiate random topologies in E4/E5.
const GRAPH_SEED: u64 = 77;

/// **E4 / Theorem 3.2.3, §3.2.3** — `DFTNO` stabilizes in `O(n)` steps
/// after the token circulation stabilizes: moves-to-orientation from
/// arbitrary orientation variables over the golden substrate, across
/// sizes and topologies. The `moves/n` column should stay near a small
/// constant for sparse graphs (the `Edgelabel` repairs add an `O(m)`
/// term, visible on dense rows — see EXPERIMENTS.md).
pub fn e4_dftno_linear() -> Table {
    let mut t = Table::new(
        "E4 (§3.2.3): DFTNO moves to orientation after the token layer is stable (avg of 3 seeds)",
        &["topology", "n", "m", "moves", "moves/n", "rounds"],
    );
    let matrix = ScenarioMatrix::new("e4-dftno-linear")
        .topologies([
            GeneratorSpec::Path,
            GeneratorSpec::Ring,
            GeneratorSpec::RandomTree,
            GeneratorSpec::RandomSparse { extra_per_node: 2 },
            GeneratorSpec::RandomDense,
        ])
        .sizes([8, 16, 32, 64, 128])
        .protocols([ProtocolSpec::Dftno(TokenSubstrate::Oracle)])
        .daemons([DaemonSpec::CentralRandom])
        .seeds(1000, 3)
        .graph_seed(GRAPH_SEED)
        .max_steps(80_000_000);
    let report = run_campaign(&matrix);
    for cell in &report.cells {
        assert_eq!(
            cell.convergence_rate, 1.0,
            "E4 {} n={} must converge",
            cell.topology, cell.n
        );
        let moves = cell.moves.as_ref().expect("converged cell has stats");
        let rounds = cell.rounds.as_ref().expect("converged cell has stats");
        t.row(cells!(
            cell.topology,
            cell.nodes,
            cell.edges,
            format!("{:.0}", moves.mean),
            format!("{:.2}", moves.mean / cell.nodes as f64),
            format!("{:.0}", rounds.mean)
        ));
    }
    t
}

/// **E5 / Theorem 4.2.3, §4.2.3** — `STNO` stabilizes in `O(h)` steps
/// after the tree stabilizes: synchronous steps (= rounds) to silence
/// from arbitrary orientation variables over a frozen tree. Linear in the
/// height `h`, flat in `n` at fixed `h`.
pub fn e5_stno_height() -> Table {
    let mut t = Table::new(
        "E5 (§4.2.3): STNO synchronous rounds to silence over a frozen tree (avg of 3 seeds)",
        &["topology", "n", "h", "rounds", "rounds/h"],
    );
    // Rows vary (family, n) jointly, so each is its own single-cell sweep.
    let rows: Vec<(&str, GeneratorSpec, usize)> = vec![
        ("star (h=1)", GeneratorSpec::Star, 64),
        ("4-ary tree", GeneratorSpec::BalancedTree { arity: 4 }, 85),
        ("binary tree", GeneratorSpec::BalancedTree { arity: 2 }, 63),
        ("caterpillar", GeneratorSpec::Caterpillar { legs: 3 }, 64),
        ("path (h=n−1)", GeneratorSpec::Path, 64),
        // Fixed h ≈ 8, growing n: rounds must stay flat.
        (
            "caterpillar h≈8",
            GeneratorSpec::Caterpillar { legs: 1 },
            16,
        ),
        (
            "caterpillar h≈8",
            GeneratorSpec::Caterpillar { legs: 3 },
            32,
        ),
        (
            "caterpillar h≈8",
            GeneratorSpec::Caterpillar { legs: 7 },
            64,
        ),
        (
            "caterpillar h≈8",
            GeneratorSpec::Caterpillar { legs: 15 },
            128,
        ),
    ];
    for (name, spec, n) in rows {
        let matrix = ScenarioMatrix::new("e5-stno-height")
            .topologies([spec])
            .sizes([n])
            .protocols([ProtocolSpec::Stno(TreeSubstrate::Oracle)])
            .daemons([DaemonSpec::Synchronous])
            .seeds(2000, 3)
            .graph_seed(GRAPH_SEED)
            .max_steps(1_000_000);
        let report = run_campaign(&matrix);
        let cell = &report.cells[0];
        assert_eq!(cell.convergence_rate, 1.0, "E5 {name} must converge");
        let h = {
            let g = spec.build(n, GRAPH_SEED);
            traverse::bfs(&g, NodeId::new(0)).height().max(1)
        };
        let steps = cell.steps.as_ref().expect("converged cell has stats");
        t.row(cells!(
            name,
            cell.nodes,
            h,
            format!("{:.1}", steps.mean),
            format!("{:.2}", steps.mean / h as f64)
        ));
    }
    t
}

/// **E6 / §3.2.3 + §4.2.3 + Ch. 5** — space per processor in bits:
/// both orientation layers are `O(Δ × log N)`; `STNO` pays an extra
/// `O(Δ × log N)` for its tree while `DFTNO`'s substrate of \[10\] needs
/// only `O(log N)` (our Collin–Dolev substitute costs more — the
/// documented deviation, shown in its own column).
pub fn e6_space() -> Table {
    let mut t = Table::new(
        "E6 (§3.2.3/§4.2.3): max bits per processor (n = 32, tight N)",
        &[
            "topology",
            "Δ",
            "log N",
            "DFTNO orient",
            "STNO orient",
            "token [10] model",
            "token (ours, CD)",
            "tree (BFS)",
        ],
    );
    for topo in generators::Topology::ALL {
        let g = topo.build(32, 5);
        let root = NodeId::new(0);
        let oracle = OracleToken::new(&g, root);
        let net = Network::new(g, root);
        let log_n = (usize::BITS - net.n_bound().leading_zeros()) as usize;
        let max_over = |f: &dyn Fn(&sno_engine::NodeCtx) -> usize| {
            net.nodes().map(|p| f(net.ctx(p))).max().unwrap_or(0)
        };
        t.row(cells!(
            topo,
            net.graph().max_degree(),
            log_n,
            max_over(&dftno_orientation_bits),
            max_over(&stno_orientation_bits),
            max_over(&|c: &sno_engine::NodeCtx| oracle.state_bits(c)),
            max_over(&|c: &sno_engine::NodeCtx| DfsTokenCirculation.state_bits(c)),
            max_over(&|c: &sno_engine::NodeCtx| BfsSpanningTree.state_bits(c))
        ));
    }
    t
}

/// The E4 cell the criterion benches time: one `DFTNO` stabilization over
/// the golden substrate on a sparse random graph.
pub fn dftno_cell(n: usize) -> CellSpec {
    CellSpec {
        topology: GeneratorSpec::RandomSparse { extra_per_node: 2 },
        n,
        protocol: ProtocolSpec::Dftno(TokenSubstrate::Oracle),
        daemon: DaemonSpec::CentralRandom,
        fault: FaultPlan::None,
    }
}

/// The E5 cell the criterion benches time: one `STNO` stabilization over
/// a frozen tree of the given family.
pub fn stno_cell(topology: GeneratorSpec, n: usize) -> CellSpec {
    CellSpec {
        topology,
        n,
        protocol: ProtocolSpec::Stno(TreeSubstrate::Oracle),
        daemon: DaemonSpec::Synchronous,
        fault: FaultPlan::None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_lab::converge_once;

    #[test]
    fn e4_scaling_is_linearish_on_sparse() {
        // A cheap shape check: path moves/n at n=64 within 4x of n=8.
        let ratio = |n: usize| {
            let cell = CellSpec {
                topology: GeneratorSpec::Path,
                ..dftno_cell(n)
            };
            let run = converge_once(&cell, 1, 80_000_000);
            assert!(run.converged);
            run.moves as f64 / n as f64
        };
        let r8 = ratio(8);
        let r64 = ratio(64);
        assert!(
            r64 < 4.0 * r8,
            "moves/n should stay near-constant: {r8} vs {r64}"
        );
    }

    #[test]
    fn e5_flat_at_fixed_height() {
        let rounds = |legs: u8, n: usize| {
            let run = converge_once(
                &stno_cell(GeneratorSpec::Caterpillar { legs }, n),
                3,
                1_000_000,
            );
            assert!(run.converged);
            run.steps
        };
        let small = rounds(1, 16);
        let large = rounds(15, 128);
        // n grows 8x; rounds may wiggle by a constant, not by 8x.
        assert!(
            large <= small + 10,
            "rounds flat at fixed h: {small} vs {large}"
        );
    }

    #[test]
    fn e6_renders() {
        let t = e6_space();
        assert_eq!(t.rows.len(), generators::Topology::ALL.len());
    }
}
