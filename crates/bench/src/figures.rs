//! E1–E3: the paper's three worked figures, regenerated.

use sno_core::orientation::Orientation;
use sno_core::trace::{dftno_figure_trace, stno_figure_trace};
use sno_engine::Network;
use sno_graph::{generators, NodeId};

use crate::cells;
use crate::table::Table;

/// **E1 / Figure 2.2.1** — the chordal sense of direction: every edge of a
/// ring-with-chords labeled `δ(p,q)` at one end and `N − δ(p,q)` at the
/// other.
pub fn e1_chordal_sense_of_direction() -> Table {
    let n = 8usize;
    let g = generators::ring_with_chords(n, 3, 9);
    let net = Network::new(g, NodeId::new(0));
    let names: Vec<u32> = (0..n as u32).collect();
    let o = Orientation::from_names(&net, names);
    assert!(o.is_chordal_sense_of_direction(&net), "E1 invariant");

    let mut t = Table::new(
        "E1 (Fig 2.2.1): chordal labels on an 8-ring with 3 chords — δ one way, N−δ the other",
        &["edge", "δ(p,q)", "δ(q,p)", "sum mod N"],
    );
    for (u, v) in net.graph().edges() {
        let lu = net.graph().port_to(u, v).unwrap();
        let lv = net.graph().port_to(v, u).unwrap();
        let du = o.labels[u.index()][lu.index()];
        let dv = o.labels[v.index()][lv.index()];
        t.row(cells!(format!("{u}−{v}"), du, dv, (du + dv) % n as u32));
    }
    t
}

/// **E2 / Figure 3.1.1** — the `DFTNO` node-labeling trace on the paper's
/// 5-node example network.
pub fn e2_dftno_figure() -> Table {
    let (rows, etas) = dftno_figure_trace();
    let mut t = Table::new(
        "E2 (Fig 3.1.1): DFTNO naming trace — paper expects r=0, b=1, d=2, c=3, a=4",
        &["step", "event", "node", "η", "Max"],
    );
    for r in &rows {
        let eta = r.eta.map(|e| e.to_string()).unwrap_or_else(|| "—".into());
        t.row(cells!(r.step, r.event, r.node, eta, r.max));
    }
    assert_eq!(etas, vec![0, 4, 1, 3, 2], "E2 final names match the figure");
    t
}

/// **E3 / Figure 4.1.1** — the `STNO` weight/naming trace on the paper's
/// 5-node example tree.
pub fn e3_stno_figure() -> Table {
    let (rows, weights, etas) = stno_figure_trace();
    let mut t = Table::new(
        "E3 (Fig 4.1.1): STNO weights then names — paper expects w=5,3,1,1,1 and η=0,1,2,3,4",
        &["step", "phase", "node", "Weight", "η"],
    );
    for r in &rows {
        t.row(cells!(
            r.step,
            r.phase,
            format!("n{}", r.node),
            r.weight,
            r.eta
        ));
    }
    assert_eq!(weights, vec![5, 3, 1, 1, 1], "E3 weights match the figure");
    assert_eq!(etas, vec![0, 1, 2, 3, 4], "E3 names match the figure");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_renders_all_edges() {
        let t = e1_chordal_sense_of_direction();
        assert_eq!(t.rows.len(), 11); // 8 ring edges + 3 chords
        assert!(t.rows.iter().all(|r| r[3] == "0"), "inverse modulo N");
    }

    #[test]
    fn e2_has_one_round_of_events() {
        let t = e2_dftno_figure();
        assert_eq!(t.rows.len(), 2 * 5 - 1, "2n−1 events");
    }

    #[test]
    fn e3_contains_both_waves() {
        let t = e3_stno_figure();
        assert!(t.rows.iter().any(|r| r[1] == "Weight"));
        assert!(t.rows.iter().any(|r| r[1] == "Name"));
    }
}
