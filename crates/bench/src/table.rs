//! Minimal fixed-width ASCII table rendering for the report binary.

/// A printable table: a title, a header row, and data rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table caption, printed above the grid.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (stringified by the experiment).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a caption and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table as an aligned ASCII grid.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        out.push_str(&line(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

/// Shorthand: stringify heterogeneous cells.
#[macro_export]
macro_rules! cells {
    ($($x:expr),* $(,)?) => {
        &[$(format!("{}", $x)),*][..]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(cells!("1", 22));
        t.row(cells!("333", 4));
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("long-header"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len(), "rows align");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(cells!("only-one"));
    }
}
