//! Regenerates every figure and analytic claim of the paper as ASCII
//! tables — the executable counterpart of `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p sno-bench --bin report            # all experiments
//! cargo run --release -p sno-bench --bin report -- e4 e9   # a subset
//! cargo run --release -p sno-bench --bin report -- e15 --json
//! #   → prints the sno-lab campaign table and writes BENCH_campaign.json
//! ```

use sno_bench::{campaign, complexity, extensions, figures, substrates};

fn main() {
    let mut json_path: Option<String> = None;
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            if a == "--json" {
                json_path = Some("BENCH_campaign.json".to_string());
                false
            } else if let Some(p) = a.strip_prefix("--json=") {
                json_path = Some(p.to_string());
                false
            } else {
                true
            }
        })
        .collect();
    // Fail on an unwritable JSON path up front, not after the campaign
    // has spent minutes running. Open in append mode so an existing
    // artifact is not truncated by the probe.
    if let Some(path) = &json_path {
        let probe = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path);
        if let Err(e) = probe {
            eprintln!("error: cannot write campaign JSON to `{path}`: {e}");
            std::process::exit(2);
        }
    }
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |id: &str| all || args.iter().any(|a| a == id);

    println!("Self-Stabilizing Network Orientation — experiment report");
    println!("=========================================================\n");

    if want("e1") {
        println!("{}", figures::e1_chordal_sense_of_direction().render());
    }
    if want("e2") {
        println!("{}", figures::e2_dftno_figure().render());
    }
    if want("e3") {
        println!("{}", figures::e3_stno_figure().render());
    }
    if want("e4") {
        println!("{}", complexity::e4_dftno_linear().render());
    }
    if want("e5") {
        println!("{}", complexity::e5_stno_height().render());
    }
    if want("e6") {
        println!("{}", complexity::e6_space().render());
    }
    if want("e7") {
        println!("{}", substrates::e7_token_substrate().render());
    }
    if want("e8") {
        println!("{}", substrates::e8_tree_substrate().render());
    }
    if want("e9") {
        println!("{}", extensions::e9_dfs_tree_equivalence().render());
    }
    if want("e10") {
        println!("{}", extensions::e10_message_complexity().render());
    }
    if want("e11") {
        println!("{}", extensions::e11_fault_recovery().render());
        println!("{}", extensions::e11b_model_checking().render());
    }
    if want("e12") {
        println!("{}", extensions::e12_daemon_sensitivity().render());
    }
    if want("e13") {
        println!("{}", extensions::e13_convergecast().render());
    }
    if want("e14") {
        println!("{}", substrates::e14_substrate_ablation().render());
    }
    if want("e15") || json_path.is_some() {
        let report = campaign::e15_campaign();
        println!("{}", campaign::campaign_table(&report).render());
        if let Some(path) = &json_path {
            report.write_json(path).expect("write campaign JSON");
            println!("campaign JSON written to {path}");
        }
    }
    if all {
        println!(
            "full self-stabilizing stack sanity (DFTNO over DFTC): {}",
            if extensions::full_stack_sanity() {
                "ok"
            } else {
                "FAILED"
            }
        );
    }
}
