//! Measures the incremental enabled-set engine against the full-sweep
//! reference and writes `BENCH_engine.json`.
//!
//! ```sh
//! cargo run --release -p sno-bench --bin engine_bench             # full sweep of sizes
//! cargo run --release -p sno-bench --bin engine_bench -- --quick  # CI smoke (64, 512)
//! cargo run --release -p sno-bench --bin engine_bench -- --json=out.json
//! ```
//!
//! Exits non-zero if a performance gate fails (incremental slower than
//! the sweep on the n = 512 star, or below 5× on the large path).

use sno_bench::engine_bench::{
    engine_bench, engine_bench_json, engine_bench_table, gate_violations, FULL_SIZES, QUICK_SIZES,
};

fn main() {
    let mut json_path = "BENCH_engine.json".to_string();
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else if let Some(p) = arg.strip_prefix("--json=") {
            json_path = p.to_string();
        } else {
            eprintln!("usage: engine_bench [--quick] [--json=PATH]");
            std::process::exit(2);
        }
    }
    // Quick mode trims the size sweep, not the per-cell step count: the
    // CI gates compare wall-clock ratios, and short measurements on
    // shared runners would be too noisy to gate on.
    let (sizes, steps): (&[usize], u64) = if quick {
        (&QUICK_SIZES, 20_000)
    } else {
        (&FULL_SIZES, 20_000)
    };

    let rows = engine_bench(sizes, steps);
    println!("{}", engine_bench_table(&rows).render());

    let json = engine_bench_json(&rows) + "\n";
    std::fs::write(&json_path, json).expect("write BENCH_engine.json");
    println!("engine bench JSON written to {json_path}");

    let violations = gate_violations(&rows);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("PERFORMANCE GATE FAILED: {v}");
        }
        std::process::exit(1);
    }
    println!("performance gates passed");
}
