//! Measures the node-dirty and port-dirty engines against the full-sweep
//! reference and writes `BENCH_engine.json`.
//!
//! ```sh
//! cargo run --release -p sno-bench --bin engine_bench             # full sweep of sizes
//! cargo run --release -p sno-bench --bin engine_bench -- --quick  # CI smoke (64, 512)
//! cargo run --release -p sno-bench --bin engine_bench -- --json=out.json
//! cargo run --release -p sno-bench --bin engine_bench -- --baseline=BENCH_engine.json
//! cargo run --release -p sno-bench --bin engine_bench -- --sync-only --curve=curve.json
//! ```
//!
//! Exits non-zero if a performance gate fails: node-dirty slower than
//! the sweep on the n = 512 star or below 5× on the large path,
//! port-dirty below the ratcheted 40× on the n = 512 star, a nonzero
//! per-step clone/allocation count on the `star-apply` row (the binary
//! runs under the `testalloc` counting allocator so hub steps are
//! *measured* at zero state clones), a pooled sync-round row spawning a
//! single OS thread inside its timed windows (the persistent pool's
//! zero-spawn acceptance criterion — exact on any machine), the pooled
//! 8-shard sync rows below 3× (torus) / 6× (hubs) the node-serial
//! baseline on runners with ≥ 8 hardware threads, a non-monotonic
//! pooled scaling curve, or — with `--baseline` — a speedup ratio more
//! than 30% (single-point) / 15% (scaling curve) below the committed
//! document (ratios, not absolute steps/sec, so the gates are portable
//! across differently-powered runners) **or any per-step work counter
//! above the committed one** (the counter ratchet is exact: the
//! telemetry counters are deterministic, so there is no noise to
//! tolerate).
//!
//! `--sync-only` skips the steady-state sweep and the star-apply row,
//! running just the synchronous-round executor matrix — the fast path
//! the `scaling-curve` CI job drives at several runner sizes;
//! `--curve=PATH` writes the `sno-scaling-curve/v1` artifact.

use sno_bench::engine_bench::{
    check_baseline, check_counter_baseline, check_sync_baseline, engine_bench,
    engine_bench_json_with, engine_bench_table, gate_violations, scaling_curve_json,
    scaling_violations, star_apply_row, star_apply_violations, sync_gate_violations,
    sync_round_bench, sync_round_table, BaselineOutcome, FULL_SIZES, QUICK_SIZES,
};

/// The `star-apply` clone-count gate only means something if every heap
/// operation of the measured window is actually counted.
#[global_allocator]
static ALLOC: testalloc::CountingAlloc = testalloc::CountingAlloc::new();

fn main() {
    let mut json_path = "BENCH_engine.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut curve_path: Option<String> = None;
    let mut quick = false;
    let mut sync_only = false;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--sync-only" {
            sync_only = true;
        } else if let Some(p) = arg.strip_prefix("--json=") {
            json_path = p.to_string();
        } else if let Some(p) = arg.strip_prefix("--baseline=") {
            baseline_path = Some(p.to_string());
        } else if let Some(p) = arg.strip_prefix("--curve=") {
            curve_path = Some(p.to_string());
        } else {
            eprintln!(
                "usage: engine_bench [--quick] [--sync-only] [--json=PATH] \
                 [--baseline=PATH] [--curve=PATH]"
            );
            std::process::exit(2);
        }
    }
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let baseline = baseline_path.map(|path| {
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"))
    });

    // The synchronous-round executor matrix: dense DFTNO rounds from
    // random configurations, torus / random-tree / hubs at n = 4096,
    // node-serial baseline + sharded-serial + pooled 2/4/8 + scoped A/B
    // — every configuration verified trace-identical. Quick mode keeps
    // the full size: the baseline-relative gates compare the committed
    // n = 4096 ratios, and the sweep is short (3 restarts × 24 steps
    // per configuration).
    let sync_rows = sync_round_bench(4096, 3, 24);
    println!("{}", sync_round_table(&sync_rows).render());

    let mut violations = sync_gate_violations(&sync_rows, parallelism);
    violations.extend(scaling_violations(
        &sync_rows,
        parallelism,
        baseline.as_deref(),
    ));
    // Every skipped multi-core gate is named explicitly: "no violation"
    // must be distinguishable from "never ran" in the CI log.
    for gate in sno_bench::engine_bench::dormant_gates(parallelism) {
        println!("dormant ({parallelism} hardware threads): {gate}");
    }
    if let Some(path) = &curve_path {
        let curve = scaling_curve_json(&sync_rows, parallelism) + "\n";
        std::fs::write(path, curve).expect("write scaling curve");
        println!("scaling curve written to {path}");
    }
    if let Some(committed) = &baseline {
        match check_sync_baseline(&sync_rows, committed) {
            BaselineOutcome::Passed => {}
            BaselineOutcome::Incomparable(note) => println!("note: {note}"),
            BaselineOutcome::Regressed(v) => violations.push(v),
        }
    }

    if !sync_only {
        let (sizes, steps): (&[usize], u64) = if quick {
            // Quick mode trims the size sweep, not the per-cell step
            // count: the CI gates compare wall-clock ratios, and short
            // measurements on shared runners would be too noisy to gate
            // on.
            (&QUICK_SIZES, 20_000)
        } else {
            (&FULL_SIZES, 20_000)
        };
        let rows = engine_bench(sizes, steps);
        println!("{}", engine_bench_table(&rows).render());

        let star = star_apply_row(512, steps);
        assert!(star.counting, "the binary installs the counting allocator");
        println!(
            "star-apply n={}: {:.0} port-dirty steps/s, allocs/step full={:.2} node={:.2} port={:.2}",
            star.n,
            star.port_steps_per_sec(),
            star.mode_allocs[0] as f64 / star.steps as f64,
            star.mode_allocs[1] as f64 / star.steps as f64,
            star.port_allocs_per_step(),
        );

        let json = engine_bench_json_with(&rows, Some(&star), &sync_rows) + "\n";
        std::fs::write(&json_path, json).expect("write BENCH_engine.json");
        println!("engine bench JSON written to {json_path}");

        violations.extend(gate_violations(&rows));
        violations.extend(star_apply_violations(&star));
        if let Some(committed) = &baseline {
            match check_baseline(&rows, committed) {
                BaselineOutcome::Passed => {}
                BaselineOutcome::Incomparable(note) => println!("note: {note}"),
                BaselineOutcome::Regressed(v) => violations.push(v),
            }
            match check_counter_baseline(&rows, committed) {
                BaselineOutcome::Passed => {}
                BaselineOutcome::Incomparable(note) => println!("note: {note}"),
                BaselineOutcome::Regressed(v) => violations.push(v),
            }
        }
    }

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("PERFORMANCE GATE FAILED: {v}");
        }
        std::process::exit(1);
    }
    println!("performance gates passed");
}
