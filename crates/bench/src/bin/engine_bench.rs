//! Measures the node-dirty and port-dirty engines against the full-sweep
//! reference and writes `BENCH_engine.json`.
//!
//! ```sh
//! cargo run --release -p sno-bench --bin engine_bench             # full sweep of sizes
//! cargo run --release -p sno-bench --bin engine_bench -- --quick  # CI smoke (64, 512)
//! cargo run --release -p sno-bench --bin engine_bench -- --json=out.json
//! cargo run --release -p sno-bench --bin engine_bench -- --baseline=BENCH_engine.json
//! ```
//!
//! Exits non-zero if a performance gate fails: node-dirty slower than
//! the sweep on the n = 512 star or below 5× on the large path,
//! port-dirty below 10× on the n = 512 star, or — with `--baseline` —
//! the port-dirty speedup ratio more than 30% below the committed
//! document (ratios, not absolute steps/sec, so the gate is portable
//! across differently-powered runners).

use sno_bench::engine_bench::{
    check_baseline, engine_bench, engine_bench_json, engine_bench_table, gate_violations,
    BaselineOutcome, FULL_SIZES, QUICK_SIZES,
};

fn main() {
    let mut json_path = "BENCH_engine.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else if let Some(p) = arg.strip_prefix("--json=") {
            json_path = p.to_string();
        } else if let Some(p) = arg.strip_prefix("--baseline=") {
            baseline_path = Some(p.to_string());
        } else {
            eprintln!("usage: engine_bench [--quick] [--json=PATH] [--baseline=PATH]");
            std::process::exit(2);
        }
    }
    // Quick mode trims the size sweep, not the per-cell step count: the
    // CI gates compare wall-clock ratios, and short measurements on
    // shared runners would be too noisy to gate on.
    let (sizes, steps): (&[usize], u64) = if quick {
        (&QUICK_SIZES, 20_000)
    } else {
        (&FULL_SIZES, 20_000)
    };

    let rows = engine_bench(sizes, steps);
    println!("{}", engine_bench_table(&rows).render());

    let json = engine_bench_json(&rows) + "\n";
    std::fs::write(&json_path, json).expect("write BENCH_engine.json");
    println!("engine bench JSON written to {json_path}");

    let mut violations = gate_violations(&rows);
    if let Some(path) = baseline_path {
        let committed =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        match check_baseline(&rows, &committed) {
            BaselineOutcome::Passed => {}
            BaselineOutcome::Incomparable(note) => println!("note: {note}"),
            BaselineOutcome::Regressed(v) => violations.push(v),
        }
    }
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("PERFORMANCE GATE FAILED: {v}");
        }
        std::process::exit(1);
    }
    println!("performance gates passed");
}
