//! E15: the flagship `sno-lab` campaign — both protocols, every viable
//! substrate, several daemons and topologies, with fault-recovery cells.
//!
//! This is the experiment every future performance PR reports through:
//! `cargo run --release -p sno-bench --bin report -- e15` prints the
//! Markdown-style cell table, and `--json` additionally writes the full
//! `sno-lab/v1` document to `BENCH_campaign.json`.

use sno_graph::GeneratorSpec;
use sno_lab::{run_campaign, CampaignReport, DaemonSpec, FaultPlan, ProtocolSpec, ScenarioMatrix};

use crate::cells;
use crate::table::Table;

/// The standard campaign matrix: 3 topologies × 2 sizes × all 5 protocol
/// stacks × 2 daemons × 2 fault plans, 4 seeds per cell — 480 runs.
///
/// Daemons are the randomized-action families; the full daemon sweep
/// (including the deterministic-action schedules that exposed the
/// `Edgelabel` starvation before the repair-priority fix) lives in E12.
pub fn e15_matrix() -> ScenarioMatrix {
    ScenarioMatrix::new("e15-standard-campaign")
        .topologies([
            GeneratorSpec::Ring,
            GeneratorSpec::Star,
            GeneratorSpec::RandomSparse { extra_per_node: 2 },
        ])
        .sizes([12, 24])
        .protocols(ProtocolSpec::ALL)
        .daemons([DaemonSpec::CentralRandom, DaemonSpec::Distributed])
        .faults([FaultPlan::None, FaultPlan::AfterConvergence { hits: 3 }])
        .seeds(0, 4)
        .max_steps(30_000_000)
}

/// Runs the standard campaign and returns the full report.
pub fn e15_campaign() -> CampaignReport {
    run_campaign(&e15_matrix())
}

/// Renders a campaign report as the bench crate's ASCII table format.
pub fn campaign_table(report: &CampaignReport) -> Table {
    let mut t = Table::new(
        format!(
            "E15: scenario-fleet campaign `{}` — {} runs, {:.1}% converged",
            report.name,
            report.total_runs,
            100.0 * report.convergence_rate()
        ),
        &[
            "topology",
            "n",
            "protocol",
            "daemon",
            "fault",
            "conv",
            "moves p50",
            "moves p95",
            "steps p50",
            "rounds p50",
            "recov p50",
        ],
    );
    for c in &report.cells {
        let p50 = |s: &Option<sno_lab::Summary>| {
            s.as_ref()
                .map(|s| s.p50.to_string())
                .unwrap_or_else(|| "—".into())
        };
        let p95 = |s: &Option<sno_lab::Summary>| {
            s.as_ref()
                .map(|s| s.p95.to_string())
                .unwrap_or_else(|| "—".into())
        };
        t.row(cells!(
            c.topology,
            c.nodes,
            c.protocol,
            c.daemon,
            c.fault,
            format!("{}/{}", c.converged, c.runs),
            p50(&c.moves),
            p95(&c.moves),
            p50(&c.steps),
            p50(&c.rounds),
            p50(&c.recovery_moves)
        ));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_lab::run_campaign_with_threads;

    /// A scaled-down E15 so the unit test stays fast.
    fn small_matrix() -> ScenarioMatrix {
        e15_matrix()
            .sizes([8])
            .topologies([GeneratorSpec::Ring])
            .faults([FaultPlan::None])
            .seeds(0, 2)
    }

    #[test]
    fn small_campaign_converges_and_renders() {
        let report = run_campaign_with_threads(&small_matrix(), 4);
        assert_eq!(
            report.total_runs, report.total_converged,
            "all stacks converge"
        );
        let table = campaign_table(&report);
        assert_eq!(table.rows.len(), report.cells.len());
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"sno-lab/v1\""));
    }

    #[test]
    fn e15_matrix_is_at_campaign_scale() {
        let m = e15_matrix();
        m.validate().unwrap();
        assert!(
            m.run_count() >= 200,
            "flagship campaign runs at fleet scale"
        );
    }
}
