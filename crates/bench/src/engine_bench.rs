//! The engine microbenchmark: steps/sec of the incremental engines
//! (node-dirty and port-dirty) vs the full-sweep reference, on a
//! sparse-enabled workload.
//!
//! The workload is the regime the paper's move-complexity analysis lives
//! in: `DFTNO` over the golden token substrate *after* stabilization, so
//! the only activity is a single token walking an otherwise-silent
//! network. A full-sweep engine still pays two `O(n)` guard sweeps per
//! step there; the node-dirty engine pays for the executed node's
//! neighborhood — which on a star is still `O(n)` (the hub's guard and
//! its `n − 1` dirtied leaves); the port-dirty engine pays only for the
//! dirty *ports*, making hub steps `o(n)`. Measured on path / star /
//! random-tree / torus across sizes, emitted as `BENCH_engine.json`
//! (`sno-engine-bench/v6` — v5 added per-mode deterministic work
//! counters from the telemetry `Meter`; v6 re-anchors the sync-round
//! speedups to a node-dirty serial baseline and adds the executor /
//! threads / thread-spawns columns of the persistent worker pool), and
//! gated in CI:
//!
//! * node-dirty must never lose to the sweep on the `n = 512` star and
//!   must beat it ≥ 5× on the large path (the PR-2 gates);
//! * port-dirty must beat the sweep ≥ 40× on the `n = 512` star
//!   ([`STAR_PORT_GATE`], ratcheted from the pre-`StateTxn` 10× — the
//!   in-place commit path removed both the `O(Δ)` apply clone and the
//!   `O(Δ)` selection-time guard re-sweep) — and, when a committed
//!   baseline is supplied, its speedup ratio must stay within 30% of
//!   the committed one (ratios are hardware-portable; absolute
//!   steps/sec are not);
//! * the per-mode work counters on the `n = 512` star are ratcheted
//!   **exactly** against the committed baseline ([`check_counter_baseline`]):
//!   counters are deterministic, so unlike wall-clock ratios there is
//!   no noise to tolerate — any increase in guard re-evaluations, port
//!   evaluations, or cache invalidations per step is a real algorithmic
//!   regression and fails CI outright;
//! * the `star-apply` row additionally counts heap operations per mode
//!   through the `testalloc` shim and gates port-dirty hub steps at
//!   **zero** state clones ([`star_apply_violations`]);
//! * the `sync_rounds` section ([`sync_round_bench`]) measures the
//!   opposite regime — dense synchronous rounds from random
//!   configurations — across the [`SYNC_CONFIGS`] executor matrix
//!   (node-dirty serial baseline, sharded-serial, the pooled executor
//!   at 2/4/8 shards, and the legacy scoped spawn-per-phase executor
//!   as an A/B row) on torus / random-tree / hubs, verifies every
//!   configuration trace-identical, gates the sharded-serial row at
//!   zero heap operations (the delta-staging acceptance criterion),
//!   every pooled row at **zero thread spawns** inside the timed
//!   windows (the persistent pool's acceptance criterion), and, on
//!   machines with ≥ 8 hardware threads, the 8-shard pooled rows at
//!   ≥ [`SYNC_SPEEDUP_GATE`]× (torus) and ≥ [`HUBS_SYNC_GATE`]×
//!   (hubs — the skewed-degree family the sharded port cache exists
//!   for) the node-serial baseline ([`sync_gate_violations`], plus the
//!   baseline-relative [`check_sync_baseline`] and the
//!   [`scaling_violations`] monotonicity curve).

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sno_core::dftno::Dftno;
use sno_engine::daemon::{CentralRoundRobin, Synchronous};
use sno_engine::{Counter, CounterMeter, EngineMode, Network, Simulation, SyncExecutor};
use sno_graph::{GeneratorSpec, NodeId};
use sno_token::OracleToken;

use crate::cells;
use crate::table::Table;

/// Seed for the seeded topology families.
const GRAPH_SEED: u64 = 42;

/// The topology families the bench sweeps.
pub const TOPOLOGIES: [(GeneratorSpec, &str); 4] = [
    (GeneratorSpec::Path, "path"),
    (GeneratorSpec::Star, "star"),
    (GeneratorSpec::RandomTree, "random-tree"),
    (GeneratorSpec::Torus, "torus"),
];

/// One measured cell of the engine bench.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineBenchRow {
    /// Topology family name.
    pub topology: &'static str,
    /// Node count of the instantiated graph.
    pub n: usize,
    /// Steps timed per mode.
    pub steps: u64,
    /// Wall time of the full-sweep reference engine.
    pub full_sweep_ns: u128,
    /// Wall time of the node-dirty incremental engine (PR 2's engine)
    /// over the identical trace.
    pub node_dirty_ns: u128,
    /// Wall time of the port-dirty engine over the identical trace.
    pub port_dirty_ns: u128,
    /// Whole-node guard evaluations of the full-sweep run over the
    /// timed window (from the deterministic telemetry counters; setup
    /// work excluded — these describe steady-state per-step cost).
    pub full_guard_evals: u64,
    /// Whole-node guard evaluations of the node-dirty run.
    pub node_guard_evals: u64,
    /// Whole-node guard evaluations of the port-dirty run — zero in
    /// steady state: its step loop re-evaluates *ports*, not nodes.
    pub port_guard_evals: u64,
    /// Per-port guard evaluations of the port-dirty run.
    pub port_port_evals: u64,
    /// Port-cache invalidations of the port-dirty run.
    pub port_invalidations: u64,
}

impl EngineBenchRow {
    /// Steps per second of the full-sweep reference.
    pub fn full_steps_per_sec(&self) -> f64 {
        self.steps as f64 / (self.full_sweep_ns as f64 / 1e9)
    }

    /// Steps per second of the node-dirty engine.
    pub fn node_steps_per_sec(&self) -> f64 {
        self.steps as f64 / (self.node_dirty_ns as f64 / 1e9)
    }

    /// Steps per second of the port-dirty engine.
    pub fn port_steps_per_sec(&self) -> f64 {
        self.steps as f64 / (self.port_dirty_ns as f64 / 1e9)
    }

    /// `node-dirty / full-sweep` throughput ratio.
    pub fn node_speedup(&self) -> f64 {
        self.full_sweep_ns as f64 / self.node_dirty_ns.max(1) as f64
    }

    /// `port-dirty / full-sweep` throughput ratio.
    pub fn port_speedup(&self) -> f64 {
        self.full_sweep_ns as f64 / self.port_dirty_ns.max(1) as f64
    }

    /// A counter scaled to per-step cost (the ratchet gate compares
    /// per-step values so baselines survive a change of `steps`).
    pub fn per_step(&self, counter: u64) -> f64 {
        counter as f64 / self.steps.max(1) as f64
    }
}

/// Measures one cell: settle the token circulation, then time `steps`
/// daemon selections in all three engine modes from identical states and
/// verify the runs were trace-identical.
fn bench_cell(spec: GeneratorSpec, name: &'static str, n: usize, steps: u64) -> EngineBenchRow {
    let g = spec.build(n, GRAPH_SEED);
    let n = g.node_count();
    let root = NodeId::new(0);
    let oracle = OracleToken::new(&g, root);
    let net = Network::new(g, root);
    let mut sim = Simulation::from_initial(&net, Dftno::new(oracle));
    let mut daemon = CentralRoundRobin::new();
    // Settle: a few complete token circulations (one is `2n − 1` daemon
    // selections, plus the label repairs they trigger) assign the names
    // and fix the labels, after which only the token's holder is enabled —
    // the sparse-enabled steady state.
    let circulation = 2 * n as u64 - 1;
    sim.run_until(&mut daemon, 6 * circulation, |_| false);
    assert!(
        sim.enabled_nodes().len() <= 2,
        "{name} n={n}: steady state must be sparse-enabled"
    );

    let timed = |mode: EngineMode| {
        let mut run_sim = sim.clone();
        run_sim.set_mode(mode);
        let mut run_daemon = daemon.clone();
        let t0 = Instant::now();
        let r = run_sim.run_until(&mut run_daemon, steps, |_| false);
        let ns = t0.elapsed().as_nanos();
        assert_eq!(r.steps, steps, "{name} n={n}: the token never goes silent");
        (r, run_sim, ns)
    };
    let (r_full, full, full_sweep_ns) = timed(EngineMode::FullSweep);
    let (r_node, node, node_dirty_ns) = timed(EngineMode::NodeDirty);
    let (r_port, port, port_dirty_ns) = timed(EngineMode::PortDirty);
    assert!(
        port.is_port_dirty_active(),
        "{name} n={n}: DFTNO/oracle must be port-separable"
    );

    // The three timed runs double as a differential check at scale.
    assert_eq!(r_full, r_node, "{name} n={n}: identical counters");
    assert_eq!(r_full, r_port, "{name} n={n}: identical counters");
    assert_eq!(
        full.config(),
        node.config(),
        "{name} n={n}: identical configs"
    );
    assert_eq!(
        full.config(),
        port.config(),
        "{name} n={n}: identical configs"
    );

    // Untimed metered replay per mode: the deterministic work counters
    // behind the same window the wall clocks measured. The meter is
    // zeroed after construction so one-time setup (cache builds, mode
    // switch) does not pollute the steady-state per-step figures —
    // same convention as the lab's campaign meters.
    let metered = |mode: EngineMode| -> CounterMeter {
        let mut m_sim = Simulation::with_meter(
            &net,
            sim.protocol().clone(),
            sim.config().to_vec(),
            CounterMeter::new(),
        );
        m_sim.set_mode(mode);
        *m_sim.meter_mut() = CounterMeter::new();
        let mut m_daemon = daemon.clone();
        let r = m_sim.run_until(&mut m_daemon, steps, |_| false);
        // `rounds` is omitted: a freshly-constructed simulation starts a
        // new round tracker while the timed clones inherited the settle
        // run's mid-round state, so only the trajectory is compared.
        assert_eq!(
            (r.steps, r.moves),
            (r_full.steps, r_full.moves),
            "{name} n={n}: the metered replay must retrace the timed run"
        );
        assert_eq!(
            m_sim.config(),
            full.config(),
            "{name} n={n}: identical configs"
        );
        m_sim.meter().clone()
    };
    let m_full = metered(EngineMode::FullSweep);
    let m_node = metered(EngineMode::NodeDirty);
    let m_port = metered(EngineMode::PortDirty);

    EngineBenchRow {
        topology: name,
        n,
        steps,
        full_sweep_ns,
        node_dirty_ns,
        port_dirty_ns,
        full_guard_evals: m_full.get(Counter::GuardEvals),
        node_guard_evals: m_node.get(Counter::GuardEvals),
        port_guard_evals: m_port.get(Counter::GuardEvals),
        port_port_evals: m_port.get(Counter::PortEvals),
        port_invalidations: m_port.get(Counter::PortInvalidations),
    }
}

/// Runs the sweep: every topology family × every size, `steps` timed
/// selections each.
pub fn engine_bench(sizes: &[usize], steps: u64) -> Vec<EngineBenchRow> {
    let mut rows = Vec::new();
    for (spec, name) in TOPOLOGIES {
        for &n in sizes {
            rows.push(bench_cell(spec, name, n, steps));
        }
    }
    rows
}

/// The `star-apply` measurement: steps/sec of the gated star workload
/// **plus per-step heap-activity (≙ state-clone) counts** per engine
/// mode, read through the `testalloc` counting-allocator shim.
///
/// A `DftnoState` clone allocates its `O(Δ)` `π` vector, so with the
/// in-place `StateTxn` commit path the per-step count must be exactly
/// zero — the bench gate behind the api redesign. Counts are only
/// meaningful when the process runs under `testalloc::CountingAlloc`
/// (the `engine_bench` binary installs it); `counting` records whether
/// it was live.
#[derive(Debug, Clone, PartialEq)]
pub struct StarApplyRow {
    /// Node count of the star.
    pub n: usize,
    /// Steps timed per mode.
    pub steps: u64,
    /// Wall time per mode (full sweep, node-dirty, port-dirty).
    pub mode_ns: [u128; 3],
    /// Heap activity (allocations + reallocations) per mode over the
    /// timed window.
    pub mode_allocs: [u64; 3],
    /// Whether a counting allocator was actually installed (false ⇒ the
    /// counts are vacuously zero and must not be gated on).
    pub counting: bool,
}

impl StarApplyRow {
    /// Port-dirty steps per second.
    pub fn port_steps_per_sec(&self) -> f64 {
        self.steps as f64 / (self.mode_ns[2] as f64 / 1e9)
    }

    /// Heap operations (≙ clones) per port-dirty step.
    pub fn port_allocs_per_step(&self) -> f64 {
        self.mode_allocs[2] as f64 / self.steps as f64
    }
}

/// Probes whether a counting global allocator is live: a fresh heap
/// allocation must move the shim's counter.
fn counting_alloc_live() -> bool {
    let before = testalloc::allocation_count();
    let v: Vec<u64> = Vec::with_capacity(64);
    std::hint::black_box(&v);
    testalloc::allocation_count() > before
}

/// Measures the `star-apply` row on the gated `n = 512` star (DFTNO over
/// the oracle walker, steady state, central round robin).
pub fn star_apply_row(n: usize, steps: u64) -> StarApplyRow {
    let g = GeneratorSpec::Star.build(n, GRAPH_SEED);
    let n = g.node_count();
    let root = NodeId::new(0);
    let oracle = OracleToken::new(&g, root);
    let net = Network::new(g, root);
    let mut sim = Simulation::from_initial(&net, Dftno::new(oracle));
    let mut daemon = CentralRoundRobin::new();
    let circulation = 2 * n as u64 - 1;
    sim.run_until(&mut daemon, 6 * circulation, |_| false);

    let counting = counting_alloc_live();
    let mut mode_ns = [0u128; 3];
    let mut mode_allocs = [0u64; 3];
    for (k, mode) in [
        EngineMode::FullSweep,
        EngineMode::NodeDirty,
        EngineMode::PortDirty,
    ]
    .into_iter()
    .enumerate()
    {
        let mut run_sim = sim.clone();
        run_sim.set_mode(mode);
        let mut run_daemon = daemon.clone();
        // Warm the mode's own scratch before opening the counter window.
        run_sim.run_until(&mut run_daemon, 1_000, |_| false);
        let allocs_before = testalloc::heap_activity();
        let t0 = Instant::now();
        let r = run_sim.run_until(&mut run_daemon, steps, |_| false);
        mode_ns[k] = t0.elapsed().as_nanos();
        mode_allocs[k] = testalloc::heap_activity() - allocs_before;
        assert_eq!(r.steps, steps, "star-apply: the token never goes silent");
    }
    StarApplyRow {
        n,
        steps,
        mode_ns,
        mode_allocs,
        counting,
    }
}

/// The clone-count gate of the `star-apply` row: under the port-dirty
/// engine a hub step must perform **zero** heap operations — and
/// therefore zero state clones. Empty when the gate holds (or when no
/// counting allocator is installed, in which case there is nothing to
/// measure).
pub fn star_apply_violations(row: &StarApplyRow) -> Vec<String> {
    let mut out = Vec::new();
    if row.counting && row.mode_allocs[2] > 0 {
        out.push(format!(
            "star-apply n={}: {} heap operations over {} port-dirty steps \
             (hub steps must perform zero state clones)",
            row.n, row.mode_allocs[2], row.steps
        ));
    }
    out
}

/// The topology families of the synchronous-round bench: the
/// degree-regular torus (the gated cell), a random tree, and the
/// `hubs` skewed-degree family the star gate only proxies.
pub const SYNC_TOPOLOGIES: [(GeneratorSpec, &str); 3] = [
    (GeneratorSpec::Torus, "torus"),
    (GeneratorSpec::RandomTree, "random-tree"),
    (GeneratorSpec::Hubs { hubs: 3 }, "hubs:3"),
];

/// One executor configuration of the synchronous-round sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncConfig {
    /// Executor label: `node-serial` (the node-dirty engine — the best
    /// serial engine before the sharded executor existed, and the
    /// baseline every speedup in the document divides by), `serial`
    /// (`SyncSharded` at one shard: the sharded *algorithm* without
    /// parallelism — its win over node-serial is the composed port
    /// cache), `pooled` (the persistent worker pool), or `scoped` (the
    /// legacy spawn-per-phase executor, kept as the A/B row that prices
    /// what the pool saves).
    pub executor: &'static str,
    /// Shard count (1 = the serial step path).
    pub shards: usize,
    /// Engine worker threads.
    pub threads: usize,
}

/// The executor × shard matrix the synchronous-round bench sweeps per
/// topology family.
pub const SYNC_CONFIGS: [SyncConfig; 6] = [
    SyncConfig {
        executor: "node-serial",
        shards: 1,
        threads: 1,
    },
    SyncConfig {
        executor: "serial",
        shards: 1,
        threads: 1,
    },
    SyncConfig {
        executor: "pooled",
        shards: 2,
        threads: 2,
    },
    SyncConfig {
        executor: "pooled",
        shards: 4,
        threads: 4,
    },
    SyncConfig {
        executor: "pooled",
        shards: 8,
        threads: 8,
    },
    SyncConfig {
        executor: "scoped",
        shards: 8,
        threads: 8,
    },
];

/// One measured cell of the synchronous-round bench: DFTNO over the
/// oracle walker, re-started from random configurations, driven by the
/// synchronous daemon under the given [`SyncConfig`]. The timed window
/// covers only the steps (re-seeding allocates by design); the
/// sharded-serial torus row is gated at zero heap operations (the
/// delta-staging acceptance criterion) and every pooled row at zero
/// thread spawns (the persistent pool's acceptance criterion) —
/// measured rather than assumed.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncRoundRow {
    /// Topology family name.
    pub topology: &'static str,
    /// Node count of the instantiated graph.
    pub n: usize,
    /// Shard count (1 for the serial rows).
    pub shards: usize,
    /// Executor label (see [`SyncConfig::executor`]).
    pub executor: &'static str,
    /// Engine worker threads.
    pub threads: usize,
    /// OS threads spawned inside the timed windows (from the fleet's
    /// process-global spawn counter — exactly zero for a warmed pool).
    pub thread_spawns: u64,
    /// Synchronous daemon selections timed.
    pub steps: u64,
    /// Complete rounds those steps closed.
    pub rounds: u64,
    /// Individual action executions (writers summed over the steps).
    pub moves: u64,
    /// Wall time of the timed step windows.
    pub wall_ns: u128,
    /// Heap operations inside the timed windows (meaningful only when
    /// `counting`).
    pub allocs: u64,
    /// Copy-on-write preservations the delta-staged commits performed.
    pub stage_clones: u64,
    /// Whether a counting allocator was live.
    pub counting: bool,
}

impl SyncRoundRow {
    /// Synchronous steps per second.
    pub fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }

    /// Complete rounds per second.
    pub fn rounds_per_sec(&self) -> f64 {
        self.rounds as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }

    /// Individual moves (writer executions) per second.
    pub fn moves_per_sec(&self) -> f64 {
        self.moves as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }
}

/// Measures the synchronous-round sweep at size `n`: every
/// [`SYNC_TOPOLOGIES`] family × every [`SYNC_CONFIGS`] entry,
/// `restarts` random re-seeds × `steps_per_restart` timed synchronous
/// steps each (plus one untimed warm-up restart per configuration so
/// pools — worker threads included — reach their high-water marks
/// before counting). Each family's configurations are verified
/// trace-identical — counters and final configurations must match the
/// node-serial baseline exactly, making the bench a determinism check
/// at scale on top of a measurement.
pub fn sync_round_bench(n: usize, restarts: u64, steps_per_restart: u64) -> Vec<SyncRoundRow> {
    let mut rows = Vec::new();
    for (spec, name) in SYNC_TOPOLOGIES {
        let g = spec.build(n, GRAPH_SEED);
        let n_actual = g.node_count();
        let root = NodeId::new(0);
        let oracle = OracleToken::new(&g, root);
        let net = Network::new(g, root);
        // Per-restart counters + final configuration of the baseline
        // run, diffed against every other configuration.
        let mut reference = None;
        for cfg in SYNC_CONFIGS {
            let mut sim = Simulation::from_initial(&net, Dftno::new(oracle.clone()));
            if cfg.executor == "node-serial" {
                sim.set_mode(EngineMode::NodeDirty);
            } else {
                sim.set_mode(EngineMode::SyncSharded);
                sim.configure_sync_sharding(cfg.shards, cfg.threads);
                sim.set_sync_executor(if cfg.executor == "scoped" {
                    SyncExecutor::Scoped
                } else {
                    SyncExecutor::Pooled
                });
            }
            let mut daemon = Synchronous::new();
            // Warm-up restart (untimed): stash, records, lists — and the
            // pool's worker threads, so the timed spawn delta isolates
            // per-step spawning.
            let mut rng = StdRng::seed_from_u64(0);
            sim.reinit_random(&mut rng);
            sim.run_until(&mut daemon, steps_per_restart, |_| false);

            let clones_before = sim.stage_clone_count();
            let spawns_before = sno_fleet::thread_spawns();
            let mut wall_ns = 0u128;
            let mut allocs = 0u64;
            // Accumulated across restarts (`reinit_random` zeroes the
            // simulation counters per re-seed): the row's rates divide
            // by the wall time of *all* timed windows, so its counters
            // must span them too.
            let mut moves = 0u64;
            let mut rounds = 0u64;
            let mut trace = Vec::with_capacity(restarts as usize);
            for seed in 0..restarts {
                let mut rng = StdRng::seed_from_u64(seed);
                sim.reinit_random(&mut rng);
                let a0 = testalloc::heap_activity();
                let t0 = Instant::now();
                let r = sim.run_until(&mut daemon, steps_per_restart, |_| false);
                wall_ns += t0.elapsed().as_nanos();
                allocs += testalloc::heap_activity() - a0;
                assert_eq!(
                    r.steps, steps_per_restart,
                    "{name} n={n_actual}: the token never goes silent"
                );
                moves += r.moves;
                rounds += r.rounds;
                trace.push((r, sim.config().to_vec()));
            }
            let thread_spawns = sno_fleet::thread_spawns() - spawns_before;
            match &reference {
                None => reference = Some(trace),
                Some(r) => {
                    assert_eq!(
                        &trace, r,
                        "{name} n={n_actual} executor={} shards={}: every restart's \
                         counters and final configuration must match the baseline run",
                        cfg.executor, cfg.shards
                    );
                }
            }
            rows.push(SyncRoundRow {
                topology: name,
                n: n_actual,
                shards: cfg.shards,
                executor: cfg.executor,
                threads: cfg.threads,
                thread_spawns,
                steps: restarts * steps_per_restart,
                rounds,
                moves,
                wall_ns,
                allocs,
                stage_clones: sim.stage_clone_count() - clones_before,
                counting: counting_alloc_live(),
            });
        }
    }
    rows
}

/// Renders the synchronous-round rows as an ASCII table.
pub fn sync_round_table(rows: &[SyncRoundRow]) -> Table {
    let mut t = Table::new(
        "Synchronous-round throughput vs executor and shard count \
         (DFTNO/oracle from random configurations, synchronous daemon; \
         speedups relative to the node-serial baseline row)",
        &[
            "topology",
            "n",
            "executor",
            "shards",
            "threads",
            "steps",
            "steps/s",
            "rounds/s",
            "moves/s",
            "speedup",
            "allocs",
            "spawns",
            "stage clones",
        ],
    );
    for r in rows {
        t.row(cells!(
            r.topology,
            r.n,
            r.executor,
            r.shards,
            r.threads,
            r.steps,
            format!("{:.0}", r.steps_per_sec()),
            format!("{:.0}", r.rounds_per_sec()),
            format!("{:.0}", r.moves_per_sec()),
            format!(
                "{:.2}x",
                sync_speedup(rows, r.topology, r.n, r.executor, r.shards).unwrap_or(1.0)
            ),
            r.allocs,
            r.thread_spawns,
            r.stage_clones
        ));
    }
    t
}

/// The step-throughput ratio of a row over its family's `node-serial`
/// baseline row — the best serial engine, so every ratio in the
/// document answers "how much faster than just running the node-dirty
/// engine is this configuration, end to end".
pub fn sync_speedup(
    rows: &[SyncRoundRow],
    topology: &str,
    n: usize,
    executor: &str,
    shards: usize,
) -> Option<f64> {
    let base = rows
        .iter()
        .find(|r| r.topology == topology && r.n == n && r.executor == "node-serial")?;
    let row = rows.iter().find(|r| {
        r.topology == topology && r.n == n && r.executor == executor && r.shards == shards
    })?;
    Some(row.steps_per_sec() / base.steps_per_sec().max(f64::MIN_POSITIVE))
}

/// The parallel sync-round gate on the degree-regular torus: ≥ this
/// speedup for the pooled 8-shard row over the node-serial baseline —
/// enforced only on machines with at least 8 hardware threads (the
/// ratio is meaningless on fewer; the baseline-relative gate still
/// applies there).
pub const SYNC_SPEEDUP_GATE: f64 = 3.0;

/// The ratcheted hub gate: on `hubs:3` the pooled 8-shard row must beat
/// the node-serial baseline ≥ 6× — the persistent pool removes the
/// spawn tax and the sharded port cache removes the `O(Δ)` hub
/// re-evaluations, so the composition must clear twice the old 3× bar.
pub const HUBS_SYNC_GATE: f64 = 6.0;

/// The synchronous-round CI gates:
///
/// * the sharded-serial (`executor == "serial"`) torus row must perform
///   **zero** heap operations per timed window (delta staging's
///   zero-clone acceptance criterion, measured under the binary's
///   counting allocator);
/// * every pooled row must spawn **zero** OS threads inside its timed
///   windows — exact and machine-independent: the pool's workers are
///   started before the window, so any spawn is the per-phase spawn tax
///   the pool exists to remove;
/// * with ≥ 8 hardware threads available, the pooled 8-shard rows must
///   beat the node-serial baseline ≥ [`SYNC_SPEEDUP_GATE`]× on the
///   torus and ≥ [`HUBS_SYNC_GATE`]× on `hubs:3` (skipped — not
///   failed — on smaller machines, where the baseline-relative check
///   in [`check_sync_baseline`] still holds the ratio).
pub fn sync_gate_violations(rows: &[SyncRoundRow], parallelism: usize) -> Vec<String> {
    let mut out = Vec::new();
    let Some(serial) = rows
        .iter()
        .filter(|r| r.topology == "torus" && r.executor == "serial")
        .max_by_key(|r| r.n)
    else {
        out.push("sync gate requires a sharded-serial torus row".into());
        return out;
    };
    if serial.counting && serial.allocs > 0 {
        out.push(format!(
            "sync-round torus n={} executor=serial: {} heap operations over {} steps \
             (delta-staged synchronous rounds must perform zero state clones)",
            serial.n, serial.allocs, serial.steps
        ));
    }
    for r in rows.iter().filter(|r| r.executor == "pooled") {
        if r.thread_spawns > 0 {
            out.push(format!(
                "sync-round {} n={} shards={} executor=pooled: {} OS threads spawned \
                 inside the timed windows (a warmed worker pool must spawn zero — \
                 this is the per-phase spawn tax the pool exists to remove)",
                r.topology, r.n, r.shards, r.thread_spawns
            ));
        }
    }
    for (topology, gate) in [("torus", SYNC_SPEEDUP_GATE), ("hubs:3", HUBS_SYNC_GATE)] {
        match sync_speedup(rows, topology, serial.n, "pooled", 8) {
            Some(speedup) if parallelism >= 8 && speedup < gate => {
                out.push(format!(
                    "sync-round {topology} n={}: {speedup:.2}x for the pooled 8-shard \
                     row over node-serial, below the {gate}x gate (machine has \
                     {parallelism} hardware threads)",
                    serial.n
                ));
            }
            Some(_) => {}
            None => out.push(format!(
                "sync gate requires a pooled 8-shard {topology} n={} row",
                serial.n
            )),
        }
    }
    out
}

/// The scaling-curve gates of the `scaling-curve` CI job (enforced only
/// with ≥ 8 hardware threads, like the absolute speedup gates):
///
/// * **monotonicity** — per topology, the pooled speedup must not
///   *drop* as shards double (serial → 2 → 4 → 8), with a 5% noise
///   allowance; a falling curve means added threads are making rounds
///   slower, the classic symptom of a barrier or false-sharing
///   regression that absolute gates on a single point would miss;
/// * **baseline regression** — with a committed `BENCH_engine.json`,
///   every pooled row's speedup must stay within 15% of the committed
///   one (tighter than the 30% single-point gate: the curve job runs on
///   the dedicated runner class, so its ratios are less noisy).
pub fn scaling_violations(
    rows: &[SyncRoundRow],
    parallelism: usize,
    baseline_json: Option<&str>,
) -> Vec<String> {
    let mut out = Vec::new();
    if parallelism < 8 {
        return out;
    }
    for (_, name) in SYNC_TOPOLOGIES {
        let Some(base) = rows
            .iter()
            .find(|r| r.topology == name && r.executor == "node-serial")
        else {
            continue;
        };
        let n = base.n;
        let mut curve: Vec<(usize, f64)> = Vec::new();
        if let Some(s) = sync_speedup(rows, name, n, "serial", 1) {
            curve.push((1, s));
        }
        for shards in [2, 4, 8] {
            if let Some(s) = sync_speedup(rows, name, n, "pooled", shards) {
                curve.push((shards, s));
            }
        }
        for w in curve.windows(2) {
            let ((s0, v0), (s1, v1)) = (w[0], w[1]);
            if s1 <= parallelism && v1 < 0.95 * v0 {
                out.push(format!(
                    "scaling curve on {name} n={n}: speedup fell from {v0:.2}x at \
                     {s0} shard(s) to {v1:.2}x at {s1} shards — adding threads must \
                     not make synchronous rounds slower (5% noise allowance)"
                ));
            }
        }
        if let Some(doc) = baseline_json {
            for &(shards, measured) in curve.iter().filter(|(s, _)| *s > 1) {
                let anchor = format!(
                    "\"topology\":\"{name}\",\"n\":{n},\"shards\":{shards},\"executor\":\"pooled\","
                );
                let Some(committed) = anchored_field(doc, &anchor, "speedup") else {
                    continue;
                };
                if committed > 0.0 && measured < 0.85 * committed {
                    out.push(format!(
                        "scaling curve on {name} n={n} shards={shards}: pooled speedup \
                         regressed more than 15% vs the committed baseline: \
                         {measured:.2}x < 0.85 x {committed:.2}x"
                    ));
                }
            }
        }
    }
    out
}

/// Names every multi-core gate that is **dormant** (skipped, not
/// passed) at the given hardware parallelism, so the binary can print
/// an explicit `dormant (N hardware threads)` marker per gate instead
/// of silently folding "skipped" into "no violation". Empty on machines
/// where every gate is live.
pub fn dormant_gates(parallelism: usize) -> Vec<String> {
    if parallelism >= 8 {
        return Vec::new();
    }
    vec![
        format!("sync-round absolute speedup gate ({SYNC_SPEEDUP_GATE}x torus, pooled 8-shard)"),
        format!("sync-round absolute speedup gate ({HUBS_SYNC_GATE}x hubs:3, pooled 8-shard)"),
        "scaling-curve monotonicity gate (serial -> 2 -> 4 -> 8 shards)".to_string(),
        "scaling-curve committed-baseline regression gate (15% band)".to_string(),
    ]
}

/// Renders the `sno-scaling-curve/v1` artifact the `scaling-curve` CI
/// job uploads: one record per sync-round row, with the node-serial
/// relative speedup and the timed-window thread-spawn count.
pub fn scaling_curve_json(rows: &[SyncRoundRow], parallelism: usize) -> String {
    let mut out =
        format!("{{\"schema\":\"sno-scaling-curve/v1\",\"parallelism\":{parallelism},\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"topology\":\"{}\",\"n\":{},\"shards\":{},\"executor\":\"{}\",\
             \"threads\":{},\"steps_per_sec\":{:.0},\"speedup\":{:.2},\
             \"thread_spawns\":{}}}",
            r.topology,
            r.n,
            r.shards,
            r.executor,
            r.threads,
            r.steps_per_sec(),
            sync_speedup(rows, r.topology, r.n, r.executor, r.shards).unwrap_or(1.0),
            r.thread_spawns
        );
    }
    out.push_str("]}");
    out
}

/// Extracts `"key":<number>` from the JSON object slice that starts at
/// `anchor` — the shared field reader of the baseline gates (the
/// offline build has no JSON parser dependency; the emitters above
/// write fields in a fixed order, so a literal anchor pins the row).
fn anchored_field(json: &str, anchor: &str, key: &str) -> Option<f64> {
    let row = &json[json.find(anchor)?..];
    let row = &row[..row.find('}').unwrap_or(row.len())];
    let field = format!("\"{key}\":");
    let rest = &row[row.find(&field)? + field.len()..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The baseline-relative synchronous-round gate: the pooled 8-shard
/// torus speedup ratio (over node-serial) must stay within 30% of the
/// committed `BENCH_engine.json` — like the star gate, ratios (not
/// absolute steps/sec) are compared so the gate is portable across
/// differently-powered runners.
pub fn check_sync_baseline(rows: &[SyncRoundRow], baseline_json: &str) -> BaselineOutcome {
    let Some(serial) = rows
        .iter()
        .filter(|r| r.topology == "torus" && r.shards == 1)
        .max_by_key(|r| r.n)
    else {
        return BaselineOutcome::Regressed("sync baseline gate requires a torus row".into());
    };
    let Some(measured) = sync_speedup(rows, "torus", serial.n, "pooled", 8) else {
        return BaselineOutcome::Regressed(
            "sync baseline gate requires a pooled 8-shard torus row".into(),
        );
    };
    let anchor = format!(
        "\"topology\":\"torus\",\"n\":{},\"shards\":8,\"executor\":\"pooled\",",
        serial.n
    );
    let committed = anchored_field(baseline_json, &anchor, "speedup");
    match committed {
        Some(committed) if committed > 0.0 => {
            if measured < 0.7 * committed {
                BaselineOutcome::Regressed(format!(
                    "sync-round speedup on torus n={} regressed more than 30% vs the \
                     committed baseline: {measured:.2}x < 0.7 x {committed:.2}x",
                    serial.n
                ))
            } else {
                BaselineOutcome::Passed
            }
        }
        _ => BaselineOutcome::Incomparable(format!(
            "baseline document has no comparable sync-round torus n={} shards=8 \
             executor=pooled speedup field (pre-v6 baseline?)",
            serial.n
        )),
    }
}

/// The default size sweep.
pub const FULL_SIZES: [usize; 5] = [64, 128, 256, 512, 1024];
/// The CI smoke sweep: small enough to be quick, still covering the
/// gated `n = 512` cases.
pub const QUICK_SIZES: [usize; 2] = [64, 512];

/// Renders the rows as the bench crate's ASCII table format.
pub fn engine_bench_table(rows: &[EngineBenchRow]) -> Table {
    let mut t = Table::new(
        "Engine throughput: node-dirty and port-dirty engines vs full-sweep reference \
         (DFTNO/oracle steady state, central round robin; ge = whole-node guard evals, \
         pe = per-port evals — deterministic counters over the timed window)",
        &[
            "topology",
            "n",
            "steps",
            "full sweep steps/s",
            "node-dirty steps/s",
            "port-dirty steps/s",
            "node x",
            "port x",
            "full ge/step",
            "node ge/step",
            "port pe/step",
            "port inval/step",
        ],
    );
    for r in rows {
        t.row(cells!(
            r.topology,
            r.n,
            r.steps,
            format!("{:.0}", r.full_steps_per_sec()),
            format!("{:.0}", r.node_steps_per_sec()),
            format!("{:.0}", r.port_steps_per_sec()),
            format!("{:.1}x", r.node_speedup()),
            format!("{:.1}x", r.port_speedup()),
            format!("{:.1}", r.per_step(r.full_guard_evals)),
            format!("{:.1}", r.per_step(r.node_guard_evals)),
            format!("{:.2}", r.per_step(r.port_port_evals)),
            format!("{:.2}", r.per_step(r.port_invalidations))
        ));
    }
    t
}

/// Renders the `sno-engine-bench/v6` JSON document (v3 added the
/// optional `star_apply` clone-count section, v4 the `sync_rounds`
/// shard-scaling section, v5 the per-mode deterministic work counters
/// appended to each row, v6 the sync-round executor matrix — executor /
/// threads / thread-spawns columns, speedups re-anchored to the
/// node-serial baseline; the leading `rows` fields are unchanged from
/// v2, so the baseline ratio gates read all of them).
pub fn engine_bench_json_with(
    rows: &[EngineBenchRow],
    star_apply: Option<&StarApplyRow>,
    sync_rows: &[SyncRoundRow],
) -> String {
    let mut out = String::from("{\"schema\":\"sno-engine-bench/v6\",\"workload\":");
    out.push_str("\"dftno/oracle-token steady state, central-round-robin\",\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"topology\":\"{}\",\"n\":{},\"steps\":{},\"full_sweep_ns\":{},\
             \"node_dirty_ns\":{},\"port_dirty_ns\":{},\"full_steps_per_sec\":{:.0},\
             \"node_steps_per_sec\":{:.0},\"port_steps_per_sec\":{:.0},\
             \"node_speedup\":{:.2},\"port_speedup\":{:.2},\
             \"full_guard_evals\":{},\"node_guard_evals\":{},\"port_guard_evals\":{},\
             \"port_port_evals\":{},\"port_invalidations\":{}}}",
            r.topology,
            r.n,
            r.steps,
            r.full_sweep_ns,
            r.node_dirty_ns,
            r.port_dirty_ns,
            r.full_steps_per_sec(),
            r.node_steps_per_sec(),
            r.port_steps_per_sec(),
            r.node_speedup(),
            r.port_speedup(),
            r.full_guard_evals,
            r.node_guard_evals,
            r.port_guard_evals,
            r.port_port_evals,
            r.port_invalidations
        );
    }
    out.push(']');
    if let Some(sa) = star_apply {
        let _ = write!(
            out,
            ",\"star_apply\":{{\"n\":{},\"steps\":{},\"counting\":{},\
             \"full_sweep_ns\":{},\"node_dirty_ns\":{},\"port_dirty_ns\":{},\
             \"full_sweep_allocs\":{},\"node_dirty_allocs\":{},\"port_dirty_allocs\":{},\
             \"port_allocs_per_step\":{:.4}}}",
            sa.n,
            sa.steps,
            sa.counting,
            sa.mode_ns[0],
            sa.mode_ns[1],
            sa.mode_ns[2],
            sa.mode_allocs[0],
            sa.mode_allocs[1],
            sa.mode_allocs[2],
            sa.port_allocs_per_step()
        );
    }
    if !sync_rows.is_empty() {
        out.push_str(",\"sync_rounds\":[");
        for (i, r) in sync_rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"topology\":\"{}\",\"n\":{},\"shards\":{},\"executor\":\"{}\",\
                 \"threads\":{},\"steps\":{},\
                 \"rounds\":{},\"moves\":{},\"wall_ns\":{},\"steps_per_sec\":{:.0},\
                 \"rounds_per_sec\":{:.0},\"moves_per_sec\":{:.0},\"speedup\":{:.2},\
                 \"allocs\":{},\"thread_spawns\":{},\"stage_clones\":{},\"counting\":{}}}",
                r.topology,
                r.n,
                r.shards,
                r.executor,
                r.threads,
                r.steps,
                r.rounds,
                r.moves,
                r.wall_ns,
                r.steps_per_sec(),
                r.rounds_per_sec(),
                r.moves_per_sec(),
                sync_speedup(sync_rows, r.topology, r.n, r.executor, r.shards).unwrap_or(1.0),
                r.allocs,
                r.thread_spawns,
                r.stage_clones,
                r.counting
            );
        }
        out.push(']');
    }
    out.push('}');
    out
}

/// [`engine_bench_json_with`] without the optional sections.
pub fn engine_bench_json(rows: &[EngineBenchRow]) -> String {
    engine_bench_json_with(rows, None, &[])
}

/// The smallest gated row of a family (`n >= 512`), if present.
fn gated_row<'r>(rows: &'r [EngineBenchRow], topology: &str) -> Option<&'r EngineBenchRow> {
    rows.iter()
        .filter(|r| r.topology == topology && r.n >= 512)
        .min_by_key(|r| r.n)
}

/// The ratcheted star gate: the PR-3 engine held ≥ 10× on the `n = 512`
/// star; with the in-place `StateTxn` commit path (no `O(Δ)` apply
/// clone, no `O(Δ)` selection-time guard re-sweep) the same cell
/// measures ≈ 150–250×, so the gate ratchets to 40× — comfortably above
/// the old architecture's ceiling, comfortably below the new one's
/// noise floor.
pub const STAR_PORT_GATE: f64 = 40.0;

/// The CI gates. The PR-2 gates keep holding the node-dirty engine to
/// its bar (never lose on the star, ≥ 5× on the largest path); the
/// port-dirty engine must win ≥ [`STAR_PORT_GATE`]× on the `n = 512`
/// star — the hub worst case the port-separable interface exists for.
/// Returns a list of violations, empty when the gates hold.
pub fn gate_violations(rows: &[EngineBenchRow]) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(star) = gated_row(rows, "star") {
        if star.node_speedup() < 1.0 {
            out.push(format!(
                "node-dirty engine slower than full sweep on star n={}: {:.2}x",
                star.n,
                star.node_speedup()
            ));
        }
        if star.port_speedup() < STAR_PORT_GATE {
            out.push(format!(
                "port-dirty engine below {STAR_PORT_GATE}x on star n={}: {:.2}x",
                star.n,
                star.port_speedup()
            ));
        }
    } else {
        out.push("gate requires a star row with n >= 512".into());
    }
    if let Some(path) = rows
        .iter()
        .filter(|r| r.topology == "path" && r.n >= 512)
        .max_by_key(|r| r.n)
    {
        if path.node_speedup() < 5.0 {
            out.push(format!(
                "node-dirty engine below 5x on path n={}: {:.2}x",
                path.n,
                path.node_speedup()
            ));
        }
    } else {
        out.push("gate requires a path row with n >= 512".into());
    }
    out
}

/// Extracts `"key":<number>` from the JSON object slice that contains
/// `"topology":"<topology>","n":<n>,` — a minimal field reader for the
/// committed `BENCH_engine.json` (the offline build has no JSON parser
/// dependency, and the emitter above writes the fields in a fixed
/// order).
fn baseline_field(json: &str, topology: &str, n: usize, key: &str) -> Option<f64> {
    anchored_field(
        json,
        &format!("\"topology\":\"{topology}\",\"n\":{n},"),
        key,
    )
}

/// Outcome of the committed-baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineOutcome {
    /// Within tolerance of the committed document.
    Passed,
    /// The baseline cannot be compared (pre-v2 schema, missing row);
    /// reported as a note, not a failure.
    Incomparable(String),
    /// A genuine regression against the committed document.
    Regressed(String),
}

/// The regression gate against a committed `BENCH_engine.json`: the
/// port-dirty **speedup ratio** on the gated `n = 512` star must not
/// fall below 70% of the committed ratio.
///
/// The ratio — not absolute steps/sec — is compared deliberately: both
/// its numerator and denominator are measured on the *same* machine in
/// the same run, so the gate is portable across developer hardware and
/// shared CI runners, while still catching the failure it exists for (a
/// change that erodes the port-dirty engine's advantage over the sweep
/// relative to what was committed).
pub fn check_baseline(rows: &[EngineBenchRow], baseline_json: &str) -> BaselineOutcome {
    let Some(star) = gated_row(rows, "star") else {
        return BaselineOutcome::Regressed(
            "baseline gate requires a star row with n >= 512".into(),
        );
    };
    match baseline_field(baseline_json, "star", star.n, "port_speedup") {
        Some(committed) if committed > 0.0 => {
            let measured = star.port_speedup();
            if measured < 0.7 * committed {
                BaselineOutcome::Regressed(format!(
                    "port-dirty speedup on star n={} regressed more than 30% vs the \
                     committed baseline: {measured:.2}x < 0.7 x {committed:.2}x",
                    star.n
                ))
            } else {
                BaselineOutcome::Passed
            }
        }
        _ => BaselineOutcome::Incomparable(format!(
            "baseline document has no comparable star n={} port_speedup field \
             (pre-v2 baseline?)",
            star.n
        )),
    }
}

/// The **exact** counter ratchet against a committed `BENCH_engine.json`:
/// on the gated `n = 512` star, no per-step work counter may exceed the
/// committed value. Period — no 30% slop.
///
/// The wall-clock gates above need tolerance because time is noisy; the
/// telemetry counters are deterministic functions of the workload, so an
/// increase is by construction an algorithmic change, not runner jitter.
/// Per-*step* values are compared (not totals) so the gate survives a
/// change of the step budget; improvements (decreases) re-arm the
/// ratchet the next time the baseline document is regenerated.
pub fn check_counter_baseline(rows: &[EngineBenchRow], baseline_json: &str) -> BaselineOutcome {
    let Some(star) = gated_row(rows, "star") else {
        return BaselineOutcome::Regressed(
            "counter ratchet requires a star row with n >= 512".into(),
        );
    };
    let Some(committed_steps) =
        baseline_field(baseline_json, "star", star.n, "steps").filter(|s| *s > 0.0)
    else {
        return BaselineOutcome::Incomparable(format!(
            "baseline document has no star n={} row; counter ratchet skipped",
            star.n
        ));
    };
    let fields: [(&str, u64); 5] = [
        ("full_guard_evals", star.full_guard_evals),
        ("node_guard_evals", star.node_guard_evals),
        ("port_guard_evals", star.port_guard_evals),
        ("port_port_evals", star.port_port_evals),
        ("port_invalidations", star.port_invalidations),
    ];
    let mut compared = 0;
    for (key, measured) in fields {
        let Some(committed) = baseline_field(baseline_json, "star", star.n, key) else {
            continue;
        };
        compared += 1;
        let measured_per_step = star.per_step(measured);
        let committed_per_step = committed / committed_steps;
        if measured_per_step > committed_per_step {
            return BaselineOutcome::Regressed(format!(
                "star n={} {key} per step regressed vs the committed baseline: \
                 {measured_per_step:.4} > {committed_per_step:.4} — counters are \
                 deterministic, so this is a real work increase, not noise",
                star.n
            ));
        }
    }
    if compared == 0 {
        return BaselineOutcome::Incomparable(format!(
            "baseline star n={} row has no counter fields (pre-v5 baseline?); \
             counter ratchet skipped",
            star.n
        ));
    }
    BaselineOutcome::Passed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dormant_gates_name_every_skipped_multi_core_gate() {
        let dormant = dormant_gates(4);
        assert_eq!(dormant.len(), 4);
        assert!(dormant.iter().any(|g| g.contains("torus")));
        assert!(dormant.iter().any(|g| g.contains("hubs:3")));
        assert!(dormant.iter().any(|g| g.contains("monotonicity")));
        assert!(dormant.iter().any(|g| g.contains("baseline")));
        assert!(dormant_gates(8).is_empty());
        assert!(dormant_gates(64).is_empty());
    }

    #[test]
    fn bench_cells_are_trace_identical_and_render() {
        // Tiny sizes: the point here is the cross-mode assertions inside
        // `bench_cell` and the emitters, not the timings.
        let rows = engine_bench(&[16], 500);
        assert_eq!(rows.len(), TOPOLOGIES.len());
        for r in &rows {
            // The metered replay must have seen real steady-state work:
            // the sweep re-evaluates every guard every step, the port
            // engine's step loop evaluates ports (whole-node evals stay
            // at the one-time setup we excluded — i.e. zero here).
            assert!(
                r.full_guard_evals >= r.steps * r.n as u64,
                "{}: sweep must pay O(n) guard evals per step",
                r.topology
            );
            assert!(
                r.port_port_evals > 0,
                "{}: port engine evaluates ports",
                r.topology
            );
            assert_eq!(
                r.port_guard_evals, 0,
                "{}: the port engine's steady-state step loop performs no \
                 whole-node evaluations",
                r.topology
            );
            assert!(
                r.full_guard_evals > r.node_guard_evals,
                "{}: node-dirty must re-evaluate fewer guards than the sweep",
                r.topology
            );
        }
        let json = engine_bench_json(&rows);
        assert!(json.contains("\"schema\":\"sno-engine-bench/v6\""));
        assert!(json.contains("\"topology\":\"torus\""));
        assert!(json.contains("\"port_dirty_ns\""));
        assert!(json.contains("\"full_guard_evals\""));
        assert!(json.contains("\"port_invalidations\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let table = engine_bench_table(&rows);
        assert_eq!(table.rows.len(), rows.len());
    }

    #[test]
    fn sync_round_bench_measures_deterministically_and_renders() {
        // Tiny size: the value here is the cross-configuration trace
        // assertions inside `sync_round_bench` plus the emitters and
        // gates, not the timings.
        let rows = sync_round_bench(48, 2, 12);
        assert_eq!(rows.len(), SYNC_TOPOLOGIES.len() * SYNC_CONFIGS.len());
        for r in &rows {
            assert_eq!(r.steps, 24);
            assert!(r.rounds > 0, "{r:?}");
            if r.executor == "pooled" {
                // The warmed pool's invariant holds on any machine.
                assert_eq!(r.thread_spawns, 0, "{r:?}");
            }
        }
        let json = engine_bench_json_with(&[], None, &rows);
        assert!(json.contains("\"sync_rounds\":["));
        assert!(json.contains("\"topology\":\"hubs:3\""));
        assert!(json.contains("\"executor\":\"node-serial\""));
        assert!(json.contains("\"executor\":\"pooled\""));
        assert!(json.contains("\"executor\":\"scoped\""));
        assert!(json.contains("\"thread_spawns\""));
        assert!(json.contains("\"stage_clones\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let table = sync_round_table(&rows);
        assert_eq!(table.rows.len(), rows.len());
        // No counting allocator in the test binary: the alloc gate is
        // vacuous, the speedup/curve gates are skipped below 8 threads,
        // and the spawn gate just held above.
        assert!(sync_gate_violations(&rows, 1).is_empty());
        assert!(scaling_violations(&rows, 1, None).is_empty());
        let curve = scaling_curve_json(&rows, 1);
        assert!(curve.contains("\"schema\":\"sno-scaling-curve/v1\""));
        assert!(curve.contains("\"executor\":\"pooled\""));
        assert_eq!(curve.matches('{').count(), curve.matches('}').count());
    }

    fn sync_row(
        topology: &'static str,
        executor: &'static str,
        shards: usize,
        wall_ns: u128,
        allocs: u64,
        thread_spawns: u64,
    ) -> SyncRoundRow {
        SyncRoundRow {
            topology,
            n: 4096,
            shards,
            executor,
            threads: shards,
            thread_spawns,
            steps: 100,
            rounds: 90,
            moves: 5_000,
            wall_ns,
            allocs,
            stage_clones: 0,
            counting: true,
        }
    }

    #[test]
    fn sync_gates_fire_on_allocs_spawns_and_slow_speedups() {
        // Node-serial at 120k ns; torus pooled-8 at 24k ns = 5x (≥ 3x
        // gate); hubs pooled-8 at 15k ns = 8x (≥ 6x gate).
        let good = vec![
            sync_row("torus", "node-serial", 1, 120_000, 300, 0),
            sync_row("torus", "serial", 1, 100_000, 0, 0),
            sync_row("torus", "pooled", 8, 24_000, 500, 0),
            sync_row("hubs:3", "node-serial", 1, 120_000, 300, 0),
            sync_row("hubs:3", "pooled", 8, 15_000, 500, 0),
        ];
        assert!(sync_gate_violations(&good, 8).is_empty());
        // Parallel-path allocations are expected; sharded-serial ones
        // are not.
        let mut leaky = good.clone();
        leaky[1].allocs = 7;
        let v = sync_gate_violations(&leaky, 8);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("zero state clones"), "{v:?}");
        // A pooled row that spawned threads inside its timed windows:
        // the spawn tax is back, and the gate is machine-independent.
        let mut spawning = good.clone();
        spawning[2].thread_spawns = 48;
        let v = sync_gate_violations(&spawning, 1);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("spawn zero"), "{v:?}");
        // Torus 2x (< 3x) and hubs 4x (< 6x): both fire on a big
        // machine…
        let mut slow = good.clone();
        slow[2].wall_ns = 60_000;
        slow[4].wall_ns = 30_000;
        assert_eq!(sync_gate_violations(&slow, 8).len(), 2);
        // …but are skipped on a small one.
        assert!(sync_gate_violations(&slow, 2).is_empty());
    }

    #[test]
    fn sync_baseline_gate_compares_speedup_ratios() {
        // measured pooled-8 speedup over node-serial = 2x.
        let rows = vec![
            sync_row("torus", "node-serial", 1, 80_000, 0, 0),
            sync_row("torus", "serial", 1, 70_000, 0, 0),
            sync_row("torus", "pooled", 8, 40_000, 0, 0),
        ];
        let fast = r#"{"sync_rounds":[{"topology":"torus","n":4096,"shards":8,"executor":"pooled","speedup":4.00}]}"#;
        assert!(matches!(
            check_sync_baseline(&rows, fast),
            BaselineOutcome::Regressed(_)
        ));
        let close = r#"{"sync_rounds":[{"topology":"torus","n":4096,"shards":8,"executor":"pooled","speedup":2.50}]}"#;
        assert_eq!(check_sync_baseline(&rows, close), BaselineOutcome::Passed);
        // Pre-v6 documents keyed rows by shards alone: incomparable, not
        // a failure.
        let v5 = r#"{"sync_rounds":[{"topology":"torus","n":4096,"shards":8,"speedup":2.50}]}"#;
        assert!(matches!(
            check_sync_baseline(&rows, v5),
            BaselineOutcome::Incomparable(_)
        ));
        let v3 = r#"{"schema":"sno-engine-bench/v3","rows":[]}"#;
        assert!(matches!(
            check_sync_baseline(&rows, v3),
            BaselineOutcome::Incomparable(_)
        ));
    }

    #[test]
    fn scaling_curve_gates_fire_on_dips_and_baseline_regressions() {
        // A healthy curve: 1.2x (serial) → 2x → 3.5x → 6x.
        let curve = |w2: u128, w4: u128, w8: u128| {
            vec![
                sync_row("torus", "node-serial", 1, 120_000, 0, 0),
                sync_row("torus", "serial", 1, 100_000, 0, 0),
                sync_row("torus", "pooled", 2, w2, 0, 0),
                sync_row("torus", "pooled", 4, w4, 0, 0),
                sync_row("torus", "pooled", 8, w8, 0, 0),
            ]
        };
        let good = curve(60_000, 34_000, 20_000);
        assert!(scaling_violations(&good, 8, None).is_empty());
        // 4-shard slower than 2-shard beyond the 5% allowance: fires…
        let dipped = curve(40_000, 60_000, 20_000);
        let v = scaling_violations(&dipped, 8, None);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("fell from"), "{v:?}");
        // …except on a machine too small to expect scaling at all.
        assert!(scaling_violations(&dipped, 4, None).is_empty());
        // Committed baseline says 8 shards reached 8x; measuring 6x is
        // a 25% regression, beyond the 15% curve tolerance.
        let committed = r#"{"sync_rounds":[
            {"topology":"torus","n":4096,"shards":2,"executor":"pooled","speedup":2.00},
            {"topology":"torus","n":4096,"shards":4,"executor":"pooled","speedup":3.50},
            {"topology":"torus","n":4096,"shards":8,"executor":"pooled","speedup":8.00}]}"#;
        let v = scaling_violations(&good, 8, Some(committed));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("regressed more than 15%"), "{v:?}");
    }

    #[test]
    fn star_apply_row_measures_and_renders() {
        let row = star_apply_row(32, 400);
        assert_eq!(row.steps, 400);
        // The test binary installs no counting allocator: counts are
        // vacuous and must be flagged as such (and never gated on).
        if !row.counting {
            assert!(star_apply_violations(&row).is_empty());
        }
        let json = engine_bench_json_with(&[], Some(&row), &[]);
        assert!(json.contains("\"star_apply\":{"));
        assert!(json.contains("\"port_allocs_per_step\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn star_apply_gate_fires_on_nonzero_clone_counts() {
        let row = StarApplyRow {
            n: 512,
            steps: 100,
            mode_ns: [3, 2, 1],
            mode_allocs: [500, 100, 7],
            counting: true,
        };
        let v = star_apply_violations(&row);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("zero state clones"), "{v:?}");
        let clean = StarApplyRow {
            mode_allocs: [500, 100, 0],
            ..row
        };
        assert!(star_apply_violations(&clean).is_empty());
    }

    fn row(topology: &'static str, n: usize, full: u128, node: u128, port: u128) -> EngineBenchRow {
        EngineBenchRow {
            topology,
            n,
            steps: 100,
            full_sweep_ns: full,
            node_dirty_ns: node,
            port_dirty_ns: port,
            full_guard_evals: 102_500,
            node_guard_evals: 51_300,
            port_guard_evals: 0,
            port_port_evals: 400,
            port_invalidations: 200,
        }
    }

    #[test]
    fn gates_detect_missing_rows_and_regressions() {
        assert!(!gate_violations(&[]).is_empty());
        let good = vec![
            row("star", 512, 50_000, 10_000, 1_000),
            row("path", 512, 100_000, 10_000, 1_000),
        ];
        assert!(gate_violations(&good).is_empty());
        let mut slow = good.clone();
        slow[0].node_dirty_ns = 60_000; // star: node-dirty lost to the sweep
        slow[0].port_dirty_ns = 3_000; // star: port-dirty below the 40x ratchet
        slow[1].node_dirty_ns = 90_000; // path: below 5x
        let v = gate_violations(&slow);
        assert_eq!(v.len(), 3, "{v:?}");
    }

    #[test]
    fn baseline_gate_compares_speedup_ratios() {
        // measured port speedup = 20_000 / 1_000 = 20x.
        let rows = vec![row("star", 512, 20_000, 10_000, 1_000)];
        // 20 < 0.7 × 40: regression.
        let committed_fast = r#"{"schema":"sno-engine-bench/v2","rows":[
            {"topology":"star","n":512,"steps":100,"port_speedup":40.00}]}"#;
        assert!(matches!(
            check_baseline(&rows, committed_fast),
            BaselineOutcome::Regressed(_)
        ));
        // 20 ≥ 0.7 × 25: within tolerance.
        let committed_close = r#"{"topology":"star","n":512,"port_speedup":25.00,"#;
        assert_eq!(
            check_baseline(&rows, committed_close),
            BaselineOutcome::Passed
        );
    }

    #[test]
    fn counter_ratchet_is_exact_and_per_step() {
        let rows = vec![row("star", 512, 20_000, 10_000, 1_000)];
        // Identical per-step counters (same steps): passes.
        let same = r#"{"schema":"sno-engine-bench/v5","rows":[
            {"topology":"star","n":512,"steps":100,"port_speedup":40.00,
             "full_guard_evals":102500,"node_guard_evals":51300,
             "port_guard_evals":0,"port_port_evals":400,"port_invalidations":200}]}"#;
        assert_eq!(check_counter_baseline(&rows, same), BaselineOutcome::Passed);
        // A different step budget with the same per-step cost: still passes.
        let rescaled = r#"{"rows":[
            {"topology":"star","n":512,"steps":200,"port_speedup":40.00,
             "full_guard_evals":205000,"node_guard_evals":102600,
             "port_guard_evals":0,"port_port_evals":800,"port_invalidations":400}]}"#;
        assert_eq!(
            check_counter_baseline(&rows, rescaled),
            BaselineOutcome::Passed
        );
        // One extra port eval per step in the measurement: no slop, fails.
        let tighter = r#"{"rows":[
            {"topology":"star","n":512,"steps":100,
             "full_guard_evals":102500,"node_guard_evals":51300,
             "port_guard_evals":0,"port_port_evals":399,"port_invalidations":200}]}"#;
        assert!(matches!(
            check_counter_baseline(&rows, tighter),
            BaselineOutcome::Regressed(_)
        ));
        // Improvements pass (the ratchet re-arms on regeneration).
        let looser = r#"{"rows":[
            {"topology":"star","n":512,"steps":100,
             "full_guard_evals":110000,"node_guard_evals":60000,
             "port_guard_evals":50,"port_port_evals":500,"port_invalidations":300}]}"#;
        assert_eq!(
            check_counter_baseline(&rows, looser),
            BaselineOutcome::Passed
        );
        // Pre-v5 baselines (row exists, no counter fields): a note, not a failure.
        let v4 = r#"{"schema":"sno-engine-bench/v4","rows":[
            {"topology":"star","n":512,"steps":100,"port_speedup":40.00}]}"#;
        assert!(matches!(
            check_counter_baseline(&rows, v4),
            BaselineOutcome::Incomparable(_)
        ));
        // No star row at all: also incomparable.
        let empty = r#"{"schema":"sno-engine-bench/v5","rows":[]}"#;
        assert!(matches!(
            check_counter_baseline(&rows, empty),
            BaselineOutcome::Incomparable(_)
        ));
    }

    #[test]
    fn v1_baselines_are_incomparable_not_failures() {
        let rows = vec![row("star", 512, 20_000, 10_000, 1_000)];
        let v1 = r#"{"schema":"sno-engine-bench/v1","rows":[
            {"topology":"star","n":512,"speedup":2.52}]}"#;
        assert!(matches!(
            check_baseline(&rows, v1),
            BaselineOutcome::Incomparable(_)
        ));
    }
}
