//! The engine microbenchmark: steps/sec of the incremental enabled-set
//! engine vs the full-sweep reference, on a sparse-enabled workload.
//!
//! The workload is the regime the paper's move-complexity analysis lives
//! in: `DFTNO` over the golden token substrate *after* stabilization, so
//! the only activity is a single token walking an otherwise-silent
//! network. A full-sweep engine still pays two `O(n)` guard sweeps per
//! step there; the incremental engine pays only for the executed node's
//! neighborhood. Measured on path / star / random-tree / torus across
//! sizes, emitted as `BENCH_engine.json` (`sno-engine-bench/v1`), and
//! gated in CI: the incremental engine must never lose to the sweep on
//! the `n = 512` star, and must beat it ≥ 5× on the large path.

use std::fmt::Write as _;
use std::time::Instant;

use sno_core::dftno::Dftno;
use sno_engine::daemon::CentralRoundRobin;
use sno_engine::{Network, Simulation};
use sno_graph::{GeneratorSpec, NodeId};
use sno_token::OracleToken;

use crate::cells;
use crate::table::Table;

/// Seed for the seeded topology families.
const GRAPH_SEED: u64 = 42;

/// The topology families the bench sweeps.
pub const TOPOLOGIES: [(GeneratorSpec, &str); 4] = [
    (GeneratorSpec::Path, "path"),
    (GeneratorSpec::Star, "star"),
    (GeneratorSpec::RandomTree, "random-tree"),
    (GeneratorSpec::Torus, "torus"),
];

/// One measured cell of the engine bench.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineBenchRow {
    /// Topology family name.
    pub topology: &'static str,
    /// Node count of the instantiated graph.
    pub n: usize,
    /// Steps timed per mode.
    pub steps: u64,
    /// Wall time of the full-sweep reference engine.
    pub full_sweep_ns: u128,
    /// Wall time of the incremental engine over the identical trace.
    pub incremental_ns: u128,
}

impl EngineBenchRow {
    /// Steps per second of the full-sweep reference.
    pub fn full_steps_per_sec(&self) -> f64 {
        self.steps as f64 / (self.full_sweep_ns as f64 / 1e9)
    }

    /// Steps per second of the incremental engine.
    pub fn incremental_steps_per_sec(&self) -> f64 {
        self.steps as f64 / (self.incremental_ns as f64 / 1e9)
    }

    /// `incremental / full-sweep` throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.full_sweep_ns as f64 / self.incremental_ns.max(1) as f64
    }
}

/// Measures one cell: settle the token circulation, then time `steps`
/// daemon selections in both engine modes from identical states and
/// verify the runs were trace-identical.
fn bench_cell(spec: GeneratorSpec, name: &'static str, n: usize, steps: u64) -> EngineBenchRow {
    let g = spec.build(n, GRAPH_SEED);
    let n = g.node_count();
    let root = NodeId::new(0);
    let oracle = OracleToken::new(&g, root);
    let net = Network::new(g, root);
    let mut sim = Simulation::from_initial(&net, Dftno::new(oracle));
    let mut daemon = CentralRoundRobin::new();
    // Settle: a few complete token circulations (one is `2n − 1` daemon
    // selections, plus the label repairs they trigger) assign the names
    // and fix the labels, after which only the token's holder is enabled —
    // the sparse-enabled steady state.
    let circulation = 2 * n as u64 - 1;
    sim.run_until(&mut daemon, 6 * circulation, |_| false);
    assert!(
        sim.enabled_nodes().len() <= 2,
        "{name} n={n}: steady state must be sparse-enabled"
    );

    let mut full = sim.clone();
    full.set_full_sweep(true);
    let mut full_daemon = daemon.clone();
    let t0 = Instant::now();
    let r_full = full.run_until(&mut full_daemon, steps, |_| false);
    let full_sweep_ns = t0.elapsed().as_nanos();

    let mut incr = sim;
    let mut incr_daemon = daemon;
    let t0 = Instant::now();
    let r_incr = incr.run_until(&mut incr_daemon, steps, |_| false);
    let incremental_ns = t0.elapsed().as_nanos();

    // The two timed runs double as a differential check at scale.
    assert_eq!(r_full, r_incr, "{name} n={n}: identical counters");
    assert_eq!(r_full.steps, steps, "the token never goes silent");
    assert_eq!(
        full.config(),
        incr.config(),
        "{name} n={n}: identical configs"
    );

    EngineBenchRow {
        topology: name,
        n,
        steps,
        full_sweep_ns,
        incremental_ns,
    }
}

/// Runs the sweep: every topology family × every size, `steps` timed
/// selections each.
pub fn engine_bench(sizes: &[usize], steps: u64) -> Vec<EngineBenchRow> {
    let mut rows = Vec::new();
    for (spec, name) in TOPOLOGIES {
        for &n in sizes {
            rows.push(bench_cell(spec, name, n, steps));
        }
    }
    rows
}

/// The default size sweep.
pub const FULL_SIZES: [usize; 5] = [64, 128, 256, 512, 1024];
/// The CI smoke sweep: small enough to be quick, still covering the
/// gated `n = 512` cases.
pub const QUICK_SIZES: [usize; 2] = [64, 512];

/// Renders the rows as the bench crate's ASCII table format.
pub fn engine_bench_table(rows: &[EngineBenchRow]) -> Table {
    let mut t = Table::new(
        "Engine throughput: incremental enabled-set engine vs full-sweep reference \
         (DFTNO/oracle steady state, central round robin)",
        &[
            "topology",
            "n",
            "steps",
            "full sweep steps/s",
            "incremental steps/s",
            "speedup",
        ],
    );
    for r in rows {
        t.row(cells!(
            r.topology,
            r.n,
            r.steps,
            format!("{:.0}", r.full_steps_per_sec()),
            format!("{:.0}", r.incremental_steps_per_sec()),
            format!("{:.1}x", r.speedup())
        ));
    }
    t
}

/// Renders the `sno-engine-bench/v1` JSON document.
pub fn engine_bench_json(rows: &[EngineBenchRow]) -> String {
    let mut out = String::from("{\"schema\":\"sno-engine-bench/v1\",\"workload\":");
    out.push_str("\"dftno/oracle-token steady state, central-round-robin\",\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"topology\":\"{}\",\"n\":{},\"steps\":{},\"full_sweep_ns\":{},\
             \"incremental_ns\":{},\"full_steps_per_sec\":{:.0},\
             \"incremental_steps_per_sec\":{:.0},\"speedup\":{:.2}}}",
            r.topology,
            r.n,
            r.steps,
            r.full_sweep_ns,
            r.incremental_ns,
            r.full_steps_per_sec(),
            r.incremental_steps_per_sec(),
            r.speedup()
        );
    }
    out.push_str("]}");
    out
}

/// The CI gates: the incremental engine must never lose to the sweep on
/// the `n = 512` star (the incremental engine's worst sweep case — the
/// hub execution dirties the whole graph every other step), and must win
/// ≥ 5× on the largest measured path (the sparse-neighborhood best case).
/// Returns a list of violations, empty when the gates hold.
pub fn gate_violations(rows: &[EngineBenchRow]) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(star) = rows
        .iter()
        .filter(|r| r.topology == "star" && r.n >= 512)
        .min_by_key(|r| r.n)
    {
        if star.speedup() < 1.0 {
            out.push(format!(
                "incremental engine slower than full sweep on star n={}: {:.2}x",
                star.n,
                star.speedup()
            ));
        }
    } else {
        out.push("gate requires a star row with n >= 512".into());
    }
    if let Some(path) = rows
        .iter()
        .filter(|r| r.topology == "path" && r.n >= 512)
        .max_by_key(|r| r.n)
    {
        if path.speedup() < 5.0 {
            out.push(format!(
                "incremental engine below 5x on path n={}: {:.2}x",
                path.n,
                path.speedup()
            ));
        }
    } else {
        out.push("gate requires a path row with n >= 512".into());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_cells_are_trace_identical_and_render() {
        // Tiny sizes: the point here is the cross-mode assertions inside
        // `bench_cell` and the emitters, not the timings.
        let rows = engine_bench(&[16], 500);
        assert_eq!(rows.len(), TOPOLOGIES.len());
        let json = engine_bench_json(&rows);
        assert!(json.contains("\"schema\":\"sno-engine-bench/v1\""));
        assert!(json.contains("\"topology\":\"torus\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let table = engine_bench_table(&rows);
        assert_eq!(table.rows.len(), rows.len());
    }

    #[test]
    fn gates_detect_missing_rows_and_regressions() {
        assert!(!gate_violations(&[]).is_empty());
        let good = vec![
            EngineBenchRow {
                topology: "star",
                n: 512,
                steps: 100,
                full_sweep_ns: 2_000,
                incremental_ns: 1_000,
            },
            EngineBenchRow {
                topology: "path",
                n: 512,
                steps: 100,
                full_sweep_ns: 10_000,
                incremental_ns: 1_000,
            },
        ];
        assert!(gate_violations(&good).is_empty());
        let mut slow = good.clone();
        slow[0].incremental_ns = 3_000;
        slow[1].incremental_ns = 9_000;
        let v = gate_violations(&slow);
        assert_eq!(v.len(), 2, "{v:?}");
    }
}
