//! E9–E12: the conclusion's observation, the motivation's message
//! counts, fault recovery, and daemon sensitivity.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sno_core::apps::compare_traversals;
use sno_core::dftno::{dftno_golden, dftno_orientation, Dftno};
use sno_core::stno::{stno_orientation, stno_oriented, Stno};
use sno_engine::daemon::{CentralRandom, CentralRoundRobin};
use sno_engine::modelcheck::ModelChecker;
use sno_engine::{faults, Network, Simulation};
use sno_graph::{generators, traverse, GeneratorSpec, NodeId, RootedTree};
use sno_lab::{run_campaign, DaemonSpec, ProtocolSpec, ScenarioMatrix};
use sno_token::{DfsTokenCirculation, FixedTreeToken};
use sno_tree::{BfsSpanningTree, CdSpanningTree};

use crate::cells;
use crate::table::Table;

/// **E9 / Chapter 5** — "if the spanning tree maintained in the STNO is a
/// DFS tree of the graph, then the naming could be similar for both
/// algorithms": run `STNO` over the Collin–Dolev DFS tree and compare its
/// stabilized names with `DFTNO`'s (the first-DFS ranks), node by node.
pub fn e9_dfs_tree_equivalence() -> Table {
    let mut t = Table::new(
        "E9 (Ch. 5): STNO over the DFS tree names nodes exactly like DFTNO",
        &[
            "topology",
            "n",
            "names identical",
            "example (node: stno = dftno)",
        ],
    );
    for topo in generators::Topology::ALL {
        let g = topo.build(12, 31);
        let n = g.node_count();
        let dfs = traverse::first_dfs(&g, NodeId::new(0));
        let net = Network::new(g, NodeId::new(0));

        let mut rng = StdRng::seed_from_u64(17);
        let mut sim = Simulation::from_random(&net, Stno::new(CdSpanningTree), &mut rng);
        let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 10_000_000);
        assert!(run.converged, "E9 {topo}");
        let stno_names = stno_orientation(sim.config()).names;
        let dftno_names: Vec<u32> = dfs.rank.iter().map(|&r| r as u32).collect();
        let identical = stno_names == dftno_names;
        let witness = format!(
            "n3: {} = {}",
            stno_names[3.min(n - 1)],
            dftno_names[3.min(n - 1)]
        );
        t.row(cells!(topo, n, identical, witness));
        assert!(identical, "E9 equivalence must hold on {topo}");
    }
    t
}

/// **E10 / §1.4, \[21, 25\]** — "the availability of an orientation
/// decreases the message complexity": depth-first traversal costs `2m`
/// unoriented vs `2(n−1)` oriented; the gap grows with density.
pub fn e10_message_complexity() -> Table {
    let mut t = Table::new(
        "E10 (§1.4): DFS traversal messages, unoriented (2m) vs oriented (2(n−1))",
        &[
            "topology",
            "n",
            "m",
            "unoriented",
            "oriented",
            "saved",
            "ratio",
        ],
    );
    for topo in generators::Topology::ALL {
        let g = topo.build(24, 5);
        let net = Network::new(g, NodeId::new(0));
        let (n, m) = (net.node_count(), net.graph().edge_count());
        let c = compare_traversals(&net);
        assert_eq!(c.unoriented, 2 * m as u64);
        assert_eq!(c.oriented, 2 * (n as u64 - 1));
        t.row(cells!(
            topo,
            n,
            m,
            c.unoriented,
            c.oriented,
            c.unoriented - c.oriented,
            format!("{:.2}", c.unoriented as f64 / c.oriented as f64)
        ));
    }
    t
}

/// **E11 / Definition 2.1.2** — closure + convergence, attacked two ways:
/// transient faults of growing size against a stabilized `STNO` stack,
/// and exhaustive model checking of the substrates on small instances.
pub fn e11_fault_recovery() -> Table {
    let mut t = Table::new(
        "E11 (Def 2.1.2): STNO+BFS recovery after corrupting k of 32 processors (avg of 3)",
        &[
            "k corrupted",
            "recovery moves",
            "recovery rounds",
            "re-oriented",
        ],
    );
    let g = generators::random_connected(32, 20, 3);
    let net = Network::new(g, NodeId::new(0));
    let mut rng = StdRng::seed_from_u64(23);
    for k in [1usize, 2, 4, 8, 16, 32] {
        let mut moves = 0u64;
        let mut rounds = 0u64;
        for _ in 0..3 {
            let mut sim = Simulation::from_initial(&net, Stno::new(BfsSpanningTree));
            sim.run_until_silent(&mut CentralRoundRobin::new(), 4_000_000);
            faults::corrupt_random(&mut sim, k, &mut rng);
            let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 4_000_000);
            assert!(
                run.converged && stno_oriented(&net, sim.config()),
                "E11 k={k}"
            );
            moves += run.moves;
            rounds += run.rounds;
        }
        t.row(cells!(
            k,
            format!("{:.0}", moves as f64 / 3.0),
            format!("{:.0}", rounds as f64 / 3.0),
            true
        ));
    }
    t
}

/// **E11b** — the exhaustive side: every configuration of the substrates
/// on small instances verified for closure and convergence.
pub fn e11b_model_checking() -> Table {
    let mut t = Table::new(
        "E11b (Def 2.1.2): exhaustive verification of closure + convergence on small instances",
        &["protocol", "instance", "configurations", "mode", "verdict"],
    );
    // BFS tree: any-schedule convergence.
    for (name, g) in [
        ("path-3", generators::path(3)),
        ("triangle", generators::ring(3)),
    ] {
        let net = Network::new(g, NodeId::new(0));
        let mc = ModelChecker::new(&net, &BfsSpanningTree, 10_000_000).unwrap();
        let legit = |c: &[sno_tree::BfsState]| sno_tree::bfs_legit(&net, c);
        mc.check_closure(legit).expect("closure");
        mc.check_convergence_any_schedule(legit)
            .expect("convergence");
        t.row(cells!(
            "BFS tree",
            name,
            mc.config_count(),
            "any schedule",
            "verified"
        ));
    }
    // Collin–Dolev: any-schedule convergence.
    for (name, g) in [
        ("path-3", generators::path(3)),
        ("triangle", generators::ring(3)),
    ] {
        let net = Network::new(g, NodeId::new(0));
        let mc = ModelChecker::new(&net, &sno_token::CollinDolev, 10_000_000).unwrap();
        let legit = |c: &[sno_token::DfsPath]| sno_token::cd::cd_legit(&net, c);
        mc.check_closure(legit).expect("closure");
        mc.check_convergence_any_schedule(legit)
            .expect("convergence");
        t.row(cells!(
            "Collin–Dolev",
            name,
            mc.config_count(),
            "any schedule",
            "verified"
        ));
    }
    // Token wave: round-robin (weakly fair) convergence.
    for (name, g) in [
        ("path-3", generators::path(3)),
        ("path-4", generators::path(4)),
        ("star-4", generators::star(4)),
    ] {
        let root = NodeId::new(0);
        let dfs = traverse::first_dfs(&g, root);
        let tree = RootedTree::from_parents(&g, root, &dfs.parent).unwrap();
        let proto = FixedTreeToken::from_graph(&g, &tree);
        let net = Network::new(g, root);
        let mc = ModelChecker::new(&net, &proto, 10_000_000).unwrap();
        let legit = |c: &[sno_token::tok::TokState]| proto.is_legitimate(c);
        mc.check_closure(legit).expect("closure");
        mc.check_convergence_round_robin(legit)
            .expect("convergence");
        t.row(cells!(
            "token wave",
            name,
            mc.config_count(),
            "round robin",
            "verified"
        ));
    }
    t
}

/// **E12 / Ch. 2 + Ch. 5** — daemon sensitivity. `STNO` converges under
/// every daemon including the unfair one (as the paper claims), and since
/// the repair-priority fix in `Dftno::enabled` so does `DFTNO`: the
/// literal `¬Forward ∧ ¬Backtrack` Edgelabel guard let strict round-robin
/// resonate with the token and starve a star's hub (the `∞` rows of an
/// earlier revision — a finding of this reproduction, see
/// EXPERIMENTS.md); priority-ordering the repair removed them.
pub fn e12_daemon_sensitivity() -> Table {
    let mut t = Table::new(
        "E12: convergence by daemon (budget 300k steps)",
        &["protocol", "topology", "daemon", "moves", "converged"],
    );
    // The sweep is a sno-lab campaign: both oracle-substrate stacks x
    // every daemon family on a star and a sparse random graph.
    let matrix = ScenarioMatrix::new("e12-daemon-sensitivity")
        .topologies([
            GeneratorSpec::Star,
            GeneratorSpec::RandomSparse { extra_per_node: 1 },
        ])
        .sizes([14])
        .protocols(ProtocolSpec::ORACLES)
        .daemons(DaemonSpec::ALL)
        .seeds(4, 1)
        .graph_seed(8)
        .max_steps(300_000);
    let report = run_campaign(&matrix);
    for cell in &report.cells {
        let converged = cell.converged == cell.runs;
        let moves = cell
            .moves
            .as_ref()
            .map(|m| format!("{:.0}", m.mean))
            .unwrap_or_else(|| "\u{221e}".into());
        t.row(cells!(
            cell.protocol,
            cell.topology,
            cell.daemon,
            moves,
            converged
        ));
        assert!(
            converged,
            "{} converges under every daemon ({})",
            cell.protocol, cell.daemon
        );
    }
    t
}

/// **E13 (extension)** — zero-setup convergecast: with DFS-rank names,
/// every node recovers its DFS-tree parent *from the labels alone* (the
/// largest-named smaller neighbor), so a network-wide aggregation costs
/// exactly `n − 1` messages with no tree-construction phase. The
/// unoriented network must first discover a tree (`2m` probes).
pub fn e13_convergecast() -> Table {
    let mut t = Table::new(
        "E13 (extension): convergecast — oriented (n−1, zero setup) vs unoriented (2m setup + n−1)",
        &["topology", "n", "m", "oriented", "unoriented", "ratio"],
    );
    for topo in generators::Topology::ALL {
        let g = topo.build(24, 5);
        let net = Network::new(g, NodeId::new(0));
        let (n, m) = (net.node_count() as u64, net.graph().edge_count() as u64);
        let o = sno_core::orientation::golden_dfs_orientation(&net);
        let rep = sno_core::sod::convergecast_oriented(&net, &o);
        assert_eq!(rep.messages, n - 1);
        assert_eq!(rep.reports_at_root, n as usize);
        let unoriented = 2 * m + (n - 1); // discover a tree, then aggregate
        t.row(cells!(
            topo,
            n,
            m,
            rep.messages,
            unoriented,
            format!("{:.2}", unoriented as f64 / rep.messages as f64)
        ));
    }
    t
}

/// Smoke check that the full DFTC stack also drives DFTNO (used by the
/// report's closing sanity line; the heavier version lives in the
/// integration tests).
pub fn full_stack_sanity() -> bool {
    let g = generators::paper_example_dftno();
    let net = Network::new(g, NodeId::new(0));
    let mut rng = StdRng::seed_from_u64(5);
    let mut sim = Simulation::from_random(&net, Dftno::new(DfsTokenCirculation), &mut rng);
    let mut daemon = CentralRandom::seeded(9);
    sim.run_until(&mut daemon, 8_000_000, |c| dftno_golden(&net, c))
        .converged
        && {
            let o = dftno_orientation(sim.config());
            o.satisfies_spec(&net)
        }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_table_shape() {
        let t = e10_message_complexity();
        assert_eq!(t.rows.len(), generators::Topology::ALL.len());
    }

    #[test]
    fn full_stack_sanity_holds() {
        assert!(full_stack_sanity());
    }
}
