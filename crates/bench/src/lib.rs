//! # sno-bench
//!
//! The experiment harness: one function per paper artifact (figure or
//! analytic claim), each returning printable rows so the `report` binary
//! can regenerate the paper's "evaluation" end to end. The experiment
//! index (E1–E12) lives in `DESIGN.md`; measured-vs-paper results are
//! recorded in `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p sno-bench --bin report            # everything
//! cargo run --release -p sno-bench --bin report -- e4 e5   # a subset
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod complexity;
pub mod engine_bench;
pub mod extensions;
pub mod figures;
pub mod substrates;
pub mod table;
