//! Criterion bench for E4: wall time of `DFTNO` stabilization over the
//! golden token substrate, as a function of `n` (the paper's `O(n)` claim
//! — the time per convergence should scale near-linearly in `n` for
//! sparse topologies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sno_bench::complexity::dftno_converge_once;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("dftno_convergence");
    g.sample_size(10);
    for n in [16usize, 32, 64, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                std::hint::black_box(dftno_converge_once(n, seed))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
