//! Criterion bench for E4: wall time of `DFTNO` stabilization over the
//! golden token substrate, as a function of `n` (the paper's `O(n)` claim
//! — the time per convergence should scale near-linearly in `n` for
//! sparse topologies). Cells come from the `sno-lab` campaign subsystem.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sno_bench::complexity::dftno_cell;
use sno_lab::converge_once;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("dftno_convergence");
    g.sample_size(10);
    for n in [16usize, 32, 64, 128] {
        let cell = dftno_cell(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &cell, |b, cell| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let run = converge_once(cell, seed, 80_000_000);
                assert!(run.converged);
                std::hint::black_box(run.moves)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
