//! Criterion bench for E7/E8: stabilization wall time of the two
//! substrates (Collin–Dolev DFS tree and BFS tree) from arbitrary
//! configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sno_engine::daemon::CentralRoundRobin;
use sno_engine::{Network, Simulation};
use sno_graph::{generators, NodeId};
use sno_token::CollinDolev;
use sno_tree::BfsSpanningTree;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates");
    g.sample_size(10);
    for n in [16usize, 32, 64] {
        let graph = generators::random_connected(n, 2 * n, 6);
        let net = Network::new(graph, NodeId::new(0));
        g.bench_with_input(BenchmarkId::new("collin_dolev", n), &net, |b, net| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                let mut sim = Simulation::from_random(net, CollinDolev, &mut rng);
                let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 50_000_000);
                assert!(run.converged);
                std::hint::black_box(run.moves)
            });
        });
        g.bench_with_input(BenchmarkId::new("bfs_tree", n), &net, |b, net| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                let mut sim = Simulation::from_random(net, BfsSpanningTree, &mut rng);
                let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 50_000_000);
                assert!(run.converged);
                std::hint::black_box(run.moves)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
