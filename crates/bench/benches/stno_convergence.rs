//! Criterion bench for E5: wall time of `STNO` stabilization over a
//! frozen tree, as a function of the tree height `h` at fixed `n` (the
//! paper's `O(h)` claim). Cells come from the `sno-lab` campaign
//! subsystem.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sno_bench::complexity::stno_cell;
use sno_graph::GeneratorSpec;
use sno_lab::converge_once;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("stno_convergence");
    g.sample_size(10);
    let cases: Vec<(&str, GeneratorSpec, usize)> = vec![
        ("star_h1", GeneratorSpec::Star, 64),
        ("btree_h5", GeneratorSpec::BalancedTree { arity: 2 }, 63),
        (
            "caterpillar_h16",
            GeneratorSpec::Caterpillar { legs: 3 },
            64,
        ),
        ("path_h63", GeneratorSpec::Path, 64),
    ];
    for (name, spec, n) in cases {
        let cell = stno_cell(spec, n);
        g.bench_with_input(BenchmarkId::from_parameter(name), &cell, |b, cell| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let run = converge_once(cell, seed, 1_000_000);
                assert!(run.converged);
                std::hint::black_box(run.steps)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
