//! Criterion bench for E5: wall time of `STNO` stabilization over a
//! frozen tree, as a function of the tree height `h` at fixed `n` (the
//! paper's `O(h)` claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sno_bench::complexity::stno_converge_once;
use sno_graph::generators;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("stno_convergence");
    g.sample_size(10);
    type Builder = fn() -> sno_graph::Graph;
    let cases: Vec<(&str, Builder)> = vec![
        ("star_h1", || generators::star(64)),
        ("btree_h5", || generators::balanced_tree(2, 5)),
        ("caterpillar_h16", || generators::caterpillar(16, 3)),
        ("path_h63", || generators::path(64)),
    ];
    for (name, build) in cases {
        g.bench_with_input(BenchmarkId::from_parameter(name), &build, |b, build| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                std::hint::black_box(stno_converge_once(build(), seed))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
