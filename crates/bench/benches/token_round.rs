//! Criterion bench for E7: the cost of one clean token round of the
//! self-stabilizing DFTC, as a function of `n` (must scale as `Θ(n)` —
//! the round length underpinning `DFTNO`'s `O(n)` bound).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sno_engine::daemon::CentralRoundRobin;
use sno_engine::{Network, Simulation};
use sno_graph::{generators, NodeId};
use sno_token::dftc::{dftc_legit, DfsTokenCirculation};

fn one_round(net: &Network) -> u64 {
    let mut rng = StdRng::seed_from_u64(4);
    let mut sim = Simulation::from_random(net, DfsTokenCirculation, &mut rng);
    let mut daemon = CentralRoundRobin::new();
    let run = sim.run_until(&mut daemon, 50_000_000, |c| dftc_legit(net, c));
    assert!(run.converged);
    let root = net.root();
    while sim.state(root).tok.working {
        sim.step(&mut daemon);
    }
    let before = sim.moves();
    let mut seen = false;
    loop {
        sim.step(&mut daemon);
        let w = sim.state(root).tok.working;
        seen |= w;
        if seen && !w {
            break;
        }
    }
    sim.moves() - before
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("token_round");
    g.sample_size(10);
    for n in [8usize, 16, 32] {
        let graph = generators::random_connected(n, n, 6);
        let net = Network::new(graph, NodeId::new(0));
        g.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            b.iter(|| std::hint::black_box(one_round(net)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
