//! The Collin–Dolev self-stabilizing DFS spanning-tree protocol.
//!
//! Every non-root processor repeatedly overwrites its path word with the
//! `≺`-least one-port extension of a neighbor's word; the root pins the
//! empty word. The protocol is **silent**: its unique fixpoint assigns each
//! node the lexicographically least port word of any root-to-node path,
//! which is precisely its branch in the **first DFS tree** (golden model:
//! [`sno_graph::traverse::first_dfs`]).
//!
//! Two consequences the rest of the stack builds on:
//!
//! * parent/child relations are *locally derivable*: `q` is a child of `p`
//!   through `p`'s port `l` iff `path_q == path_p · l`;
//! * the `≺` order of the stabilized words is the DFS **visit order**, so
//!   `DFTNO`'s names equal the `≺`-ranks of the words.

use rand::Rng as _;
use rand::RngCore;
use sno_engine::{Enumerable, NodeCtx, NodeView, Protocol, SpaceMeasured, StateTxn};
use sno_graph::Port;

use crate::path::{enumerate_paths, DfsPath};

/// The Collin–Dolev protocol (see module docs). Stateless; all parameters
/// come from the per-node context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollinDolev;

/// The single action: overwrite the path word with its target value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixPath;

impl CollinDolev {
    /// The cap on path length: no simple path exceeds `N − 1` edges.
    pub fn cap(ctx: &NodeCtx) -> usize {
        ctx.n_bound.saturating_sub(1)
    }

    /// The value the guard compares against: `ε` at the root, otherwise the
    /// `≺`-least extension of a neighbor's word.
    pub fn target(view: &impl NodeView<DfsPath>) -> DfsPath {
        let ctx = view.ctx();
        if ctx.is_root {
            return DfsPath::root();
        }
        let cap = Self::cap(ctx);
        let mut best = DfsPath::Top;
        for l in 0..ctx.degree {
            let l = Port::new(l);
            // Append the *neighbor's* port toward us: α_u(v).
            let candidate = view.neighbor(l).extend(ctx.back_ports[l.index()], cap);
            if candidate < best {
                best = candidate;
            }
        }
        best
    }
}

impl Protocol for CollinDolev {
    type State = DfsPath;
    type Action = FixPath;

    fn enabled(&self, view: &impl NodeView<DfsPath>, out: &mut Vec<FixPath>) {
        if *view.state() != Self::target(view) {
            out.push(FixPath);
        }
    }

    fn apply_in_place(&self, txn: &mut impl StateTxn<DfsPath>, _action: &FixPath) {
        let t = Self::target(txn);
        *txn.state_mut() = t;
        // Every neighbor's target reads this word.
        txn.touch_all_ports();
        txn.commit();
    }

    fn initial_state(&self, _ctx: &NodeCtx) -> DfsPath {
        DfsPath::Top
    }

    fn random_state(&self, ctx: &NodeCtx, rng: &mut dyn RngCore) -> DfsPath {
        random_path(ctx, rng)
    }
}

/// Samples an arbitrary path word: `⊤`, or a random short word over the
/// alphabet of plausible port values.
pub fn random_path(ctx: &NodeCtx, rng: &mut dyn RngCore) -> DfsPath {
    let cap = CollinDolev::cap(ctx);
    match rng.random_range(0..4u8) {
        0 => DfsPath::Top,
        1 => DfsPath::root(),
        _ => {
            let len = rng.random_range(0..=cap.min(4));
            let alphabet = (ctx.n_bound.saturating_sub(1)).max(1) as u16;
            let word: Vec<u16> = (0..len).map(|_| rng.random_range(0..alphabet)).collect();
            DfsPath::Finite(word)
        }
    }
}

impl Enumerable for CollinDolev {
    fn enumerate_states(&self, ctx: &NodeCtx) -> Vec<DfsPath> {
        let alphabet = (ctx.n_bound.saturating_sub(1)).max(1) as u16;
        enumerate_paths(alphabet, Self::cap(ctx))
    }
}

impl SpaceMeasured for CollinDolev {
    fn state_bits(&self, ctx: &NodeCtx) -> usize {
        // A word of up to N−1 ports, each log2(Δ) bits, plus a length field.
        let port_bits = bits_for(ctx.n_bound.saturating_sub(1).max(1));
        Self::cap(ctx) * port_bits + bits_for(ctx.n_bound)
    }
}

pub(crate) fn bits_for(values: usize) -> usize {
    (usize::BITS - values.max(1).leading_zeros()) as usize
}

/// `true` iff `config` is the Collin–Dolev fixpoint: every word equals the
/// golden first-DFS root path.
pub fn cd_legit(net: &sno_engine::Network, config: &[DfsPath]) -> bool {
    let dfs = sno_graph::traverse::first_dfs(net.graph(), net.root());
    config.iter().enumerate().all(|(i, p)| match p {
        DfsPath::Top => false,
        DfsPath::Finite(w) => {
            let golden: Vec<u16> = dfs.root_path[i].iter().map(|l| l.index() as u16).collect();
            *w == golden
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_engine::daemon::{CentralRoundRobin, DistributedRandom, Synchronous};
    use sno_engine::modelcheck::ModelChecker;
    use sno_engine::{Network, Simulation};
    use sno_graph::{generators, NodeId};

    fn stabilize(net: &Network, seed: u64) -> Vec<DfsPath> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut sim = Simulation::from_random(net, CollinDolev, &mut rng);
        let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 2_000_000);
        assert!(run.converged, "CD must be silent within budget");
        sim.config().to_vec()
    }

    use rand::SeedableRng;

    #[test]
    fn fixpoint_matches_golden_dfs_on_paper_example() {
        let g = generators::paper_example_dftno();
        let net = Network::new(g, NodeId::new(0));
        let config = stabilize(&net, 1);
        assert!(cd_legit(&net, &config));
    }

    #[test]
    fn fixpoint_matches_golden_dfs_on_many_topologies() {
        for (i, t) in generators::Topology::ALL.into_iter().enumerate() {
            let g = t.build(12, 7);
            let net = Network::new(g, NodeId::new(0));
            let config = stabilize(&net, i as u64);
            assert!(cd_legit(&net, &config), "topology {t}");
        }
    }

    #[test]
    fn visit_order_is_path_order() {
        let g = generators::random_connected(14, 10, 5);
        let net = Network::new(g, NodeId::new(0));
        let config = stabilize(&net, 3);
        let dfs = sno_graph::traverse::first_dfs(net.graph(), net.root());
        let mut by_path: Vec<(DfsPath, usize)> = config
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, p)| (p, i))
            .collect();
        by_path.sort();
        for (rank, (_, node)) in by_path.iter().enumerate() {
            assert_eq!(dfs.rank[*node], rank);
        }
    }

    #[test]
    fn stabilizes_under_distributed_daemon() {
        let g = generators::random_connected(10, 8, 2);
        let net = Network::new(g, NodeId::new(0));
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut sim = Simulation::from_random(&net, CollinDolev, &mut rng);
        let run = sim.run_until_silent(&mut DistributedRandom::seeded(4), 2_000_000);
        assert!(run.converged);
        assert!(cd_legit(&net, sim.config()));
    }

    #[test]
    fn stabilizes_under_synchronous_daemon() {
        let g = generators::ring(9);
        let net = Network::new(g, NodeId::new(0));
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut sim = Simulation::from_random(&net, CollinDolev, &mut rng);
        let run = sim.run_until_silent(&mut Synchronous::new(), 1_000_000);
        assert!(run.converged);
        assert!(cd_legit(&net, sim.config()));
    }

    #[test]
    fn loose_bound_still_stabilizes() {
        let g = generators::path(5);
        let net = Network::with_bound(g, NodeId::new(0), 9);
        let config = stabilize(&net, 8);
        assert!(cd_legit(&net, &config));
    }

    #[test]
    fn exhaustive_model_check_on_path3() {
        let g = generators::path(3);
        let net = Network::new(g, NodeId::new(0));
        let mc = ModelChecker::new(&net, &CollinDolev, 10_000_000).unwrap();
        let legit = |c: &[DfsPath]| cd_legit(&net, c);
        let closure = mc.check_closure(legit).expect("closure");
        assert_eq!(closure.legitimate, 1);
        mc.check_convergence_any_schedule(legit)
            .expect("CD converges under any schedule");
    }

    #[test]
    fn exhaustive_model_check_on_triangle() {
        let g = generators::ring(3);
        let net = Network::new(g, NodeId::new(0));
        let mc = ModelChecker::new(&net, &CollinDolev, 10_000_000).unwrap();
        let legit = |c: &[DfsPath]| cd_legit(&net, c);
        mc.check_closure(legit).expect("closure");
        mc.check_convergence_any_schedule(legit)
            .expect("convergence");
    }

    #[test]
    fn space_accounting_scales_with_bound() {
        let g = generators::path(4);
        let net = Network::new(g, NodeId::new(0));
        let small = CollinDolev.state_bits(net.ctx(NodeId::new(1)));
        let g2 = generators::path(4);
        let net2 = Network::with_bound(g2, NodeId::new(0), 64);
        let large = CollinDolev.state_bits(net2.ctx(NodeId::new(1)));
        assert!(large > small);
    }
}
