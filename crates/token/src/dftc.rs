//! The composed self-stabilizing depth-first token circulation.
//!
//! Fair composition of the Collin–Dolev word layer ([`crate::cd`]) and the
//! handshake token wave ([`crate::tok`]): each processor's state is a pair
//! `(path, tok)`; the word layer runs independently, while the token layer
//! at every step interprets the *current* words to derive its parent and
//! children. While the words are still stabilizing the token layer may
//! misbehave (the daemon is adversarial anyway); once the word layer is
//! silent, the token layer drains every spurious token and settles into a
//! single token circulating in first-DFS order — giving the interface and
//! guarantees of the protocol of \[10\] that the paper's `DFTNO` assumes.

use rand::RngCore;
use sno_engine::{Enumerable, NodeCtx, NodeView, Protocol, SpaceMeasured, StateTxn};
use sno_graph::Port;

use crate::api::{TokenCirculation, TokenKind};
use crate::cd::{bits_for, cd_legit, random_path, CollinDolev};
use crate::path::DfsPath;
use crate::tok::{
    chain_legit, tok_apply, tok_classify, tok_enabled, LocalTree, TokAction, TokState, TokView,
};

/// Per-processor state of the composed substrate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DftcState {
    /// Collin–Dolev word (lower layer).
    pub path: DfsPath,
    /// Token-wave variables (upper layer).
    pub tok: TokState,
}

/// Actions of the composed substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DftcAction {
    /// Lower layer: recompute the path word.
    FixPath,
    /// Upper layer: one token-wave action.
    Tok(TokAction),
}

/// The composed self-stabilizing DFTC protocol (see module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DfsTokenCirculation;

fn path_of(s: &DftcState) -> &DfsPath {
    &s.path
}

/// Projects a compound view down to the word layer so the unmodified
/// Collin–Dolev code can evaluate its guard.
fn project_path<V: NodeView<DftcState>>(
    view: &V,
) -> sno_engine::protocol::ProjectedView<'_, DftcState, V, fn(&DftcState) -> &DfsPath> {
    sno_engine::protocol::ProjectedView::new(view, path_of as fn(&DftcState) -> &DfsPath)
}

impl DfsTokenCirculation {
    /// Derives the processor's believed tree position from the current
    /// words: its parent is the first port whose neighbor's word extends to
    /// its own; its children are the ports whose neighbors' words extend
    /// *from* its own.
    pub fn derive_tree(view: &impl NodeView<DftcState>) -> LocalTree {
        let ctx = view.ctx();
        let cap = CollinDolev::cap(ctx);
        let my = &view.state().path;
        if my.is_top() {
            return LocalTree {
                attached: false,
                parent: None,
                children: Vec::new(),
            };
        }
        let (attached, parent) = if ctx.is_root {
            (my.is_empty(), None)
        } else {
            let parent = (0..ctx.degree)
                .map(Port::new)
                .find(|&l| *my == view.neighbor(l).path.extend(ctx.back_ports[l.index()], cap));
            (parent.is_some(), parent)
        };
        if !attached {
            return LocalTree {
                attached: false,
                parent: None,
                children: Vec::new(),
            };
        }
        let children = (0..ctx.degree)
            .map(Port::new)
            .filter(|&l| Some(l) != parent && view.neighbor(l).path == my.extend(l, cap))
            .collect();
        LocalTree {
            attached,
            parent,
            children,
        }
    }

    fn tok_view<'a>(view: &'a impl NodeView<DftcState>, tree: &'a LocalTree) -> TokView<'a> {
        TokView::gather(view, tree, &view.state().tok, |s: &DftcState| &s.tok)
    }
}

impl Protocol for DfsTokenCirculation {
    type State = DftcState;
    type Action = DftcAction;

    fn enabled(&self, view: &impl NodeView<DftcState>, out: &mut Vec<DftcAction>) {
        if view.state().path != CollinDolev::target(&project_path(view)) {
            out.push(DftcAction::FixPath);
        }
        let tree = Self::derive_tree(view);
        let tv = Self::tok_view(view, &tree);
        if let Some(a) = tok_enabled(&tv) {
            out.push(DftcAction::Tok(a));
        }
    }

    fn apply_in_place(&self, txn: &mut impl StateTxn<DftcState>, action: &DftcAction) {
        match action {
            DftcAction::FixPath => {
                let path = CollinDolev::target(&project_path(txn));
                txn.state_mut().path = path;
            }
            DftcAction::Tok(a) => {
                let tok = {
                    let tree = Self::derive_tree(txn);
                    let tv = Self::tok_view(txn, &tree);
                    tok_apply(&tv, *a)
                };
                txn.state_mut().tok = tok;
            }
        }
        // Both layers' variables are read by every neighbor's guards
        // (word extensions, handshake bits); the composed substrate is
        // not port-separable, so stay conservative.
        txn.touch_all_ports();
        txn.commit();
    }

    fn initial_state(&self, ctx: &NodeCtx) -> DftcState {
        DftcState {
            path: DfsPath::Top,
            tok: TokState::clean(ctx.degree),
        }
    }

    fn random_state(&self, ctx: &NodeCtx, rng: &mut dyn RngCore) -> DftcState {
        DftcState {
            path: random_path(ctx, rng),
            tok: TokState::random(ctx, rng),
        }
    }
}

impl Enumerable for DfsTokenCirculation {
    fn enumerate_states(&self, ctx: &NodeCtx) -> Vec<DftcState> {
        // The product of the two layers' spaces: every Collin–Dolev word
        // up to the protocol cap times every token-wave variable
        // assignment. Word order is `enumerate_paths`'s, tok order is
        // `TokState::enumerate`'s, so the mixed-radix digit layout is
        // stable across runs.
        let paths = CollinDolev.enumerate_states(ctx);
        let toks = TokState::enumerate(ctx.degree);
        let mut out = Vec::with_capacity(paths.len() * toks.len());
        for path in &paths {
            for tok in &toks {
                out.push(DftcState {
                    path: path.clone(),
                    tok: tok.clone(),
                });
            }
        }
        out
    }
}

impl TokenCirculation for DfsTokenCirculation {
    fn classify(&self, view: &impl NodeView<DftcState>, action: &DftcAction) -> TokenKind {
        match action {
            DftcAction::FixPath => TokenKind::Internal,
            DftcAction::Tok(a) => {
                let tree = Self::derive_tree(view);
                let tv = Self::tok_view(view, &tree);
                tok_classify(&tv, *a)
            }
        }
    }

    fn parent_port(&self, view: &impl NodeView<DftcState>) -> Option<Port> {
        Self::derive_tree(view).parent
    }
}

impl SpaceMeasured for DfsTokenCirculation {
    fn state_bits(&self, ctx: &NodeCtx) -> usize {
        // Word layer (the documented deviation from [10], see DESIGN.md §4)
        // plus the token wave: flag + working + scan + one bit per port.
        let cd = CollinDolev.state_bits(ctx);
        let tok = 1 + 1 + bits_for(ctx.degree + 1) + ctx.degree;
        cd + tok
    }
}

/// The legitimacy predicate `L_TC` of the composed substrate: the word
/// layer is at its fixpoint and the token wave forms a single root-anchored
/// activity chain over the (now correct) first-DFS tree.
pub fn dftc_legit(net: &sno_engine::Network, config: &[DftcState]) -> bool {
    let paths: Vec<DfsPath> = config.iter().map(|s| s.path.clone()).collect();
    if !cd_legit(net, &paths) {
        return false;
    }
    let dfs = sno_graph::traverse::first_dfs(net.graph(), net.root());
    let g = net.graph();
    let children_of = |p: usize| -> Vec<(usize, Port)> {
        dfs.children[p]
            .iter()
            .map(|&c| {
                let port = g.port_to(sno_graph::NodeId::new(p), c).expect("tree edge");
                (c.index(), port)
            })
            .collect()
    };
    let tok_of = |p: usize| config[p].tok.clone();
    chain_legit(net.node_count(), net.root().index(), &tok_of, &children_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sno_engine::daemon::{CentralRandom, CentralRoundRobin, DistributedRandom};
    use sno_engine::{Network, Simulation};
    use sno_graph::{generators, NodeId};

    fn converge(net: &Network, seed: u64) -> Simulation<'_, DfsTokenCirculation> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = Simulation::from_random(net, DfsTokenCirculation, &mut rng);
        let run = sim.run_until(&mut CentralRoundRobin::new(), 4_000_000, |c| {
            dftc_legit(net, c)
        });
        assert!(run.converged, "DFTC must converge (seed {seed})");
        sim
    }

    #[test]
    fn converges_from_arbitrary_states_on_paper_example() {
        let g = generators::paper_example_dftno();
        let net = Network::new(g, NodeId::new(0));
        for seed in 0..10 {
            let _ = converge(&net, seed);
        }
    }

    #[test]
    fn converges_on_many_topologies() {
        for (i, t) in generators::Topology::ALL.into_iter().enumerate() {
            let g = t.build(10, 21);
            let net = Network::new(g, NodeId::new(0));
            let _ = converge(&net, 100 + i as u64);
        }
    }

    #[test]
    fn converges_under_random_daemons() {
        let g = generators::random_connected(9, 6, 3);
        let net = Network::new(g, NodeId::new(0));
        let mut rng = StdRng::seed_from_u64(5);
        let mut sim = Simulation::from_random(&net, DfsTokenCirculation, &mut rng);
        let run = sim.run_until(&mut CentralRandom::seeded(8), 4_000_000, |c| {
            dftc_legit(&net, c)
        });
        assert!(run.converged);

        let mut sim = Simulation::from_random(&net, DfsTokenCirculation, &mut rng);
        let run = sim.run_until(&mut DistributedRandom::seeded(13), 4_000_000, |c| {
            dftc_legit(&net, c)
        });
        assert!(run.converged);
    }

    #[test]
    fn legitimacy_is_closed_under_execution() {
        let g = generators::paper_example_dftno();
        let net = Network::new(g, NodeId::new(0));
        let mut sim = converge(&net, 2);
        let mut daemon = CentralRoundRobin::new();
        for _ in 0..500 {
            let out = sim.step(&mut daemon);
            assert!(!out.is_silent(), "token circulation never terminates");
            assert!(dftc_legit(&net, sim.config()), "closure violated");
        }
    }

    #[test]
    fn forward_fires_once_per_node_per_round_in_dfs_order() {
        let g = generators::paper_example_dftno();
        let net = Network::new(g.clone(), NodeId::new(0));
        let dfs = sno_graph::traverse::first_dfs(&g, NodeId::new(0));
        let mut sim = converge(&net, 7);
        let mut daemon = CentralRoundRobin::new();

        // Wait for the start of a fresh round: the root's next Forward.
        let mut forwards: Vec<usize> = Vec::new();
        let mut collecting = false;
        for _ in 0..10_000 {
            let enabled = sim.enabled_nodes();
            assert_eq!(enabled.len(), 1, "legit configs are sequential");
            let node = enabled[0].node;
            let actions = sim.enabled_actions(node);
            assert_eq!(actions.len(), 1);
            let view = sno_engine::protocol::ConfigView::new(&net, node, sim.config());
            let kind = DfsTokenCirculation.classify(&view, &actions[0]);
            if kind == TokenKind::Forward && node == net.root() {
                if collecting {
                    break; // a full round was recorded
                }
                collecting = true;
            }
            if collecting && kind == TokenKind::Forward {
                forwards.push(node.index());
            }
            sim.step(&mut daemon);
        }
        let golden: Vec<usize> = dfs.order.iter().map(|p| p.index()).collect();
        assert_eq!(forwards, golden, "Forward order must be first-DFS order");
    }

    #[test]
    fn round_length_is_linear_in_n() {
        // One clean round = 2(n−1) tree moves + n Take bookkeeping-free
        // moves; measure moves between two consecutive root Forwards.
        let g = generators::random_connected(16, 12, 9);
        let net = Network::new(g, NodeId::new(0));
        let mut sim = converge(&net, 11);
        let mut daemon = CentralRoundRobin::new();
        let mut root_forwards = 0u32;
        let mut moves_between = 0u64;
        for _ in 0..100_000 {
            let enabled = sim.enabled_nodes();
            let node = enabled[0].node;
            let actions = sim.enabled_actions(node);
            let view = sno_engine::protocol::ConfigView::new(&net, node, sim.config());
            let kind = DfsTokenCirculation.classify(&view, &actions[0]);
            if kind == TokenKind::Forward && node == net.root() {
                root_forwards += 1;
                if root_forwards == 2 {
                    break;
                }
            }
            if root_forwards == 1 {
                moves_between += 1;
            }
            sim.step(&mut daemon);
        }
        assert_eq!(root_forwards, 2, "two round starts observed");
        let n = 16u64;
        assert!(
            moves_between <= 4 * n,
            "round cost {moves_between} must be O(n)"
        );
    }

    #[test]
    fn parent_port_matches_golden_dfs_after_stabilization() {
        let g = generators::random_connected(12, 7, 4);
        let net = Network::new(g.clone(), NodeId::new(0));
        let dfs = sno_graph::traverse::first_dfs(&g, NodeId::new(0));
        let sim = converge(&net, 13);
        for p in net.nodes() {
            let view = sno_engine::protocol::ConfigView::new(&net, p, sim.config());
            let got = DfsTokenCirculation.parent_port(&view);
            assert_eq!(got, dfs.parent_port[p.index()], "node {p}");
        }
    }
}
