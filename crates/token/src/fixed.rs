//! The token wave over a frozen spanning tree.
//!
//! [`FixedTreeToken`] runs exactly the handshake machinery of
//! [`crate::tok`], but reads its parent/children from a precomputed
//! [`sno_graph::RootedTree`] instead of deriving them from Collin–Dolev
//! words. It has two jobs:
//!
//! * isolate the token wave for unit tests and — because its per-node state
//!   space is tiny — for **exhaustive model checking** of closure and
//!   convergence on small trees;
//! * model the paper's layering experimentally: "after the underlying
//!   protocol stabilizes" is literally "the tree no longer moves".

use rand::RngCore;
use sno_engine::{Enumerable, NodeCtx, NodeView, Protocol, SpaceMeasured, StateTxn};
use sno_graph::{NodeId, Port, RootedTree};

use crate::api::{TokenCirculation, TokenKind};
use crate::cd::bits_for;
use crate::tok::{
    chain_legit, tok_apply, tok_classify, tok_enabled, LocalTree, TokAction, TokState, TokView,
};

/// The token wave on a frozen rooted spanning tree (see module docs).
#[derive(Debug, Clone)]
pub struct FixedTreeToken {
    locals: Vec<LocalTree>,
    children_nodes: Vec<Vec<(usize, Port)>>,
    root: NodeId,
}

impl FixedTreeToken {
    /// Builds the substrate from a host graph and a spanning tree of it,
    /// resolving the parent→child ports. Children are served in the
    /// parent's port order — the deterministic DFS order.
    ///
    /// # Panics
    ///
    /// Panics if `tree` is not a spanning tree of `g`.
    pub fn from_graph(g: &sno_graph::Graph, tree: &RootedTree) -> Self {
        let n = tree.node_count();
        let mut locals = Vec::with_capacity(n);
        let mut children_nodes = Vec::with_capacity(n);
        for i in 0..n {
            let p = NodeId::new(i);
            let mut ports: Vec<Port> = Vec::new();
            let mut kids: Vec<(usize, Port)> = Vec::new();
            for &c in tree.children(p) {
                let port = g.port_to(p, c).expect("tree edge must exist in graph");
                ports.push(port);
                kids.push((c.index(), port));
            }
            locals.push(LocalTree {
                attached: true,
                parent: tree.parent_port(p),
                children: ports,
            });
            children_nodes.push(kids);
        }
        FixedTreeToken {
            locals,
            children_nodes,
            root: tree.root(),
        }
    }

    /// The frozen local tree of node `p`.
    pub fn local(&self, p: NodeId) -> &LocalTree {
        &self.locals[p.index()]
    }

    fn tok_view<'s>(&'s self, view: &'s impl NodeView<TokState>) -> TokView<'s> {
        let local = &self.locals[view.ctx().id.index()];
        TokView::gather(view, local, view.state(), |s: &TokState| s)
    }

    /// The legitimacy predicate: a single root-anchored activity chain.
    pub fn is_legitimate(&self, config: &[TokState]) -> bool {
        let tok_of = |p: usize| config[p].clone();
        let children_of = |p: usize| self.children_nodes[p].clone();
        chain_legit(config.len(), self.root.index(), &tok_of, &children_of)
    }
}

impl Protocol for FixedTreeToken {
    type State = TokState;
    type Action = TokAction;

    fn enabled(&self, view: &impl NodeView<TokState>, out: &mut Vec<TokAction>) {
        if let Some(a) = tok_enabled(&self.tok_view(view)) {
            out.push(a);
        }
    }

    fn apply_in_place(&self, txn: &mut impl StateTxn<TokState>, action: &TokAction) {
        let next = tok_apply(&self.tok_view(txn), *action);
        *txn.state_mut() = next;
        // Handshake bits are read across every tree edge; stay
        // conservative (the wave substrate is not port-separable).
        txn.touch_all_ports();
        txn.commit();
    }

    fn initial_state(&self, ctx: &NodeCtx) -> TokState {
        TokState::clean(ctx.degree)
    }

    fn random_state(&self, ctx: &NodeCtx, rng: &mut dyn RngCore) -> TokState {
        TokState::random(ctx, rng)
    }
}

impl TokenCirculation for FixedTreeToken {
    fn classify(&self, view: &impl NodeView<TokState>, action: &TokAction) -> TokenKind {
        tok_classify(&self.tok_view(view), *action)
    }

    fn parent_port(&self, view: &impl NodeView<TokState>) -> Option<Port> {
        self.locals[view.ctx().id.index()].parent
    }
}

impl Enumerable for FixedTreeToken {
    fn enumerate_states(&self, ctx: &NodeCtx) -> Vec<TokState> {
        TokState::enumerate(ctx.degree)
    }
}

impl SpaceMeasured for FixedTreeToken {
    fn state_bits(&self, ctx: &NodeCtx) -> usize {
        1 + 1 + bits_for(ctx.degree + 1) + ctx.degree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sno_engine::daemon::{CentralRoundRobin, DistributedRandom};
    use sno_engine::modelcheck::ModelChecker;
    use sno_engine::{Network, Simulation};
    use sno_graph::{generators, traverse};

    fn fixture(g: sno_graph::Graph) -> (Network, FixedTreeToken) {
        let root = NodeId::new(0);
        let dfs = traverse::first_dfs(&g, root);
        let tree = RootedTree::from_parents(&g, root, &dfs.parent).unwrap();
        let proto = FixedTreeToken::from_graph(&g, &tree);
        (Network::new(g, root), proto)
    }

    #[test]
    fn converges_from_arbitrary_states() {
        let (net, proto) = fixture(generators::random_tree(10, 3));
        let mut rng = StdRng::seed_from_u64(1);
        for seed in 0..20 {
            let _ = seed;
            let mut sim = Simulation::from_random(&net, proto.clone(), &mut rng);
            let run = sim.run_until(&mut CentralRoundRobin::new(), 500_000, |c| {
                proto.is_legitimate(c)
            });
            assert!(run.converged);
        }
    }

    #[test]
    fn converges_under_distributed_daemon() {
        let (net, proto) = fixture(generators::balanced_tree(2, 3));
        let mut rng = StdRng::seed_from_u64(44);
        let mut sim = Simulation::from_random(&net, proto.clone(), &mut rng);
        let run = sim.run_until(&mut DistributedRandom::seeded(3), 500_000, |c| {
            proto.is_legitimate(c)
        });
        assert!(run.converged);
    }

    #[test]
    fn exhaustive_model_check_on_path3() {
        let (net, proto) = fixture(generators::path(3));
        let mc = ModelChecker::new(&net, &proto, 10_000_000).unwrap();
        let legit = |c: &[TokState]| proto.is_legitimate(c);
        mc.check_closure(legit).expect("closure");
        mc.check_convergence_round_robin(legit)
            .expect("round-robin convergence");
    }

    #[test]
    fn exhaustive_model_check_on_star4() {
        let (net, proto) = fixture(generators::star(4));
        let mc = ModelChecker::new(&net, &proto, 10_000_000).unwrap();
        let legit = |c: &[TokState]| proto.is_legitimate(c);
        mc.check_closure(legit).expect("closure");
        mc.check_convergence_round_robin(legit)
            .expect("round-robin convergence");
    }

    #[test]
    fn exhaustive_model_check_on_path4() {
        let (net, proto) = fixture(generators::path(4));
        let mc = ModelChecker::new(&net, &proto, 10_000_000).unwrap();
        let legit = |c: &[TokState]| proto.is_legitimate(c);
        mc.check_closure(legit).expect("closure");
        mc.check_convergence_round_robin(legit)
            .expect("round-robin convergence");
    }

    #[test]
    fn legitimate_configs_are_sequential() {
        let (net, proto) = fixture(generators::random_tree(8, 6));
        let mut rng = StdRng::seed_from_u64(2);
        let mut sim = Simulation::from_random(&net, proto.clone(), &mut rng);
        let run = sim.run_until(&mut CentralRoundRobin::new(), 500_000, |c| {
            proto.is_legitimate(c)
        });
        assert!(run.converged);
        let mut daemon = CentralRoundRobin::new();
        for _ in 0..200 {
            assert_eq!(sim.enabled_nodes().len(), 1);
            sim.step(&mut daemon);
            assert!(proto.is_legitimate(sim.config()));
        }
    }
}
