//! The interface `DFTNO` is written against.
//!
//! The paper's Algorithm 3.1.1 hooks its orientation macros onto the
//! substrate's guards: `Forward(p) → Nodelabel_p` and `Backtrack(p) →
//! UpdateMax_p`. [`TokenCirculation`] exposes exactly that: a protocol
//! whose actions can be *classified* as `Forward`, `Backtrack`, or internal
//! housekeeping, plus the identity of the current round's parent (the
//! ancestor `A_p` whose `Max` the `Nodelabel` macro consults).

use sno_engine::{NodeView, Protocol};
use sno_graph::Port;

/// The paper-facing classification of a substrate action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// The processor receives the token for the first time this round —
    /// the paper's `Forward(p)` guard (for the root: the round starts).
    Forward,
    /// The token returns to the processor from the subtree behind `child`
    /// — the paper's `Backtrack(p)` guard; `D_p` is the neighbor through
    /// `child`.
    Backtrack {
        /// The port to the descendant that just returned the token.
        child: Port,
    },
    /// Substrate housekeeping (error correction, tree maintenance, leaf
    /// bookkeeping) — invisible to the orientation layer.
    Internal,
}

/// A depth-first token circulation substrate.
///
/// Implementations: [`crate::DfsTokenCirculation`] (self-stabilizing, the
/// real substrate), [`crate::FixedTreeToken`] (token wave over a frozen
/// tree), and [`crate::OracleToken`] (golden Euler-tour walker).
///
/// # Port-local guard classification
///
/// A token hand-off is an inherently *edge-local* event: the `Forward(p)`
/// and `Backtrack(p)` guards each watch a single incident link (the parent
/// the token arrives from, the child it returns from). Substrates whose
/// guards are port-local in this sense should also opt into the engine's
/// [port-separable interface](Protocol::port_separable) — then a layering
/// orientation protocol (`DFTNO`) inherits `o(Δ)` hub steps under the
/// engine's port-dirty invalidation. [`crate::OracleToken`] implements the
/// interface *exactly* (its Euler word names the one neighbor each move
/// can enable); [`crate::DfsTokenCirculation`] keeps the conservative
/// whole-node default, whose guards genuinely scan the neighborhood.
pub trait TokenCirculation: Protocol {
    /// Classifies an action *enabled in `view`* as the paper's `Forward` /
    /// `Backtrack` guard or as internal housekeeping.
    fn classify(&self, view: &impl NodeView<Self::State>, action: &Self::Action) -> TokenKind;

    /// The port toward the processor's parent (`A_p`) in the current
    /// round, if it is currently well defined (`None` at the root or while
    /// the substrate is still stabilizing).
    fn parent_port(&self, view: &impl NodeView<Self::State>) -> Option<Port>;
}
