//! The golden token circulation: a deterministic replay of the first-DFS
//! Euler tour.
//!
//! The paper states its `DFTNO` bound *"after the token circulation
//! protocol stabilizes"*. [`OracleToken`] realizes that phrase exactly: a
//! substrate that is *always* in the stabilized regime, replaying the
//! golden Euler tour move for move. It lets experiments charge `DFTNO`
//! only for its own work (E4) and gives tests an independently computed
//! reference for `Forward`/`Backtrack` sequencing.
//!
//! Mechanics: the round is the event word `⟨start, e₁, …, e_{2(n−1)}⟩`
//! (the root's round start followed by the Euler tour). Every processor
//! stores a monotone clock — the global index of the next event *it* must
//! execute. Event `i` is executed by the node the token arrives at, and is
//! enabled once the executor of event `i − 1` (always the executor's
//! neighbor, or the node itself for a round start) has advanced past it.
//!
//! The oracle is deliberately **not** self-stabilizing — that is the job of
//! [`crate::DfsTokenCirculation`]; `random_state` returns the clean round
//! start.

use rand::RngCore;
use sno_engine::protocol::{PortCache, PortVerdict, StateTxn};
use sno_engine::{NodeCtx, NodeView, Protocol, SpaceMeasured};
use sno_graph::{Graph, NodeId, Port};

use crate::api::{TokenCirculation, TokenKind};
use crate::cd::bits_for;

/// One slot of the round's event word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    /// Who executes this event.
    actor: NodeId,
    /// The paper-facing classification when it fires.
    kind: TokenKind,
    /// The port at `actor` toward the executor of the previous event
    /// (`None` for the round start, whose predecessor is the actor
    /// itself).
    prev_port: Option<Port>,
}

/// Golden Euler-tour token circulation (see module docs).
#[derive(Debug, Clone)]
pub struct OracleToken {
    slots: Vec<Slot>,
    /// Per node: the sorted global residues of the slots it executes.
    schedule: Vec<Vec<u64>>,
    /// Per node: the port toward its DFS parent.
    parent_ports: Vec<Option<Port>>,
    /// `succ_port[r]` = the port at `slots[r].actor` toward
    /// `slots[(r + 1) % L].actor` — the *only* neighbor whose guard can
    /// flip when event `r` executes (`None` when the successor event is
    /// the actor's own, i.e. the round wrap at the root). Powers the
    /// exact [`StateTxn::touch_port`] declaration in
    /// [`Protocol::apply_in_place`].
    succ_port: Vec<Option<Port>>,
}

impl OracleToken {
    /// Precomputes the Euler tour of the first DFS tree of `g` from
    /// `root`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected or `root` out of range.
    pub fn new(g: &Graph, root: NodeId) -> Self {
        let dfs = sno_graph::traverse::first_dfs(g, root);
        let mut slots = Vec::with_capacity(1 + dfs.euler.len());
        slots.push(Slot {
            actor: root,
            kind: TokenKind::Forward,
            prev_port: None,
        });
        for ev in &dfs.euler {
            let (actor, kind, prev) = match *ev {
                sno_graph::traverse::EulerEvent::Forward { from, to } => {
                    (to, TokenKind::Forward, from)
                }
                sno_graph::traverse::EulerEvent::Backtrack { from, to } => (
                    to,
                    TokenKind::Backtrack {
                        child: g.port_to(to, from).expect("tree edge"),
                    },
                    from,
                ),
            };
            slots.push(Slot {
                actor,
                kind,
                prev_port: Some(g.port_to(actor, prev).expect("euler moves along edges")),
            });
        }
        let mut schedule = vec![Vec::new(); g.node_count()];
        for (i, s) in slots.iter().enumerate() {
            schedule[s.actor.index()].push(i as u64);
        }
        let succ_port = (0..slots.len())
            .map(|r| {
                let me = slots[r].actor;
                let next = slots[(r + 1) % slots.len()].actor;
                if next == me {
                    None
                } else {
                    Some(
                        g.port_to(me, next)
                            .expect("consecutive Euler actors are adjacent"),
                    )
                }
            })
            .collect();
        OracleToken {
            slots,
            schedule,
            parent_ports: dfs.parent_port.clone(),
            succ_port,
        }
    }

    /// Number of events per round (`2n − 1`).
    pub fn round_len(&self) -> u64 {
        self.slots.len() as u64
    }

    fn residue(&self, clock: u64) -> usize {
        (clock % self.round_len()) as usize
    }

    /// The node's next clock value strictly after `clock`.
    fn advance(&self, node: NodeId, clock: u64) -> u64 {
        let len = self.round_len();
        let sched = &self.schedule[node.index()];
        debug_assert!(!sched.is_empty(), "every node executes at least one event");
        let round = clock / len;
        let pos = clock % len;
        // The schedule is sorted: binary-search the successor event. A
        // star hub executes ~n of the round's events, so the old linear
        // scan made the hub's own move O(n) — the last O(n) term of a
        // port-dirty hub step now that the state clone is gone too.
        let idx = sched.partition_point(|&r| r <= pos);
        if idx < sched.len() {
            round * len + sched[idx]
        } else {
            (round + 1) * len + sched[0]
        }
    }

    /// The clean starting clock of a node: its first event of round zero.
    pub fn start_clock(&self, node: NodeId) -> u64 {
        self.schedule[node.index()][0]
    }

    fn slot_enabled(&self, view: &impl NodeView<u64>) -> bool {
        let clock = *view.state();
        let r = self.residue(clock);
        let slot = &self.slots[r];
        if slot.actor != view.ctx().id {
            return false; // corrupted clock: not our event
        }
        match slot.prev_port {
            None => true, // round start: our own clock already passed L−1
            Some(port) => *view.neighbor(port) >= clock,
        }
    }
}

/// The single action: execute the current event and advance the clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Execute;

impl Protocol for OracleToken {
    type State = u64;
    type Action = Execute;

    fn enabled(&self, view: &impl NodeView<u64>, out: &mut Vec<Execute>) {
        if self.slot_enabled(view) {
            out.push(Execute);
        }
    }

    fn apply_profile(
        &self,
        _view: &impl NodeView<u64>,
        _action: &Execute,
    ) -> sno_engine::ApplyProfile {
        // `advance` is a function of the own clock alone — no neighbor
        // read, so oracle moves never force a copy-on-write
        // preservation and are eligible for shard-parallel application.
        sno_engine::ApplyProfile::local(1)
    }

    fn apply_in_place(&self, txn: &mut impl StateTxn<u64>, _action: &Execute) {
        let old = *txn.state();
        *txn.state_mut() = self.advance(txn.ctx().id, old);
        // Advancing past event `residue(old)` can flip exactly one guard
        // anywhere: the actor of the successor slot (see the write-side
        // block comment below). When that successor is this node's own
        // event (the round wrap at the root) the write is invisible to
        // every neighbor.
        match self.succ_port[self.residue(old)] {
            Some(p) => txn.touch_port(p),
            None => txn.mark_unobservable(),
        }
        txn.commit();
    }

    fn initial_state(&self, ctx: &NodeCtx) -> u64 {
        self.start_clock(ctx.id)
    }

    fn random_state(&self, ctx: &NodeCtx, _rng: &mut dyn RngCore) -> u64 {
        // The oracle is the "already stabilized" substrate by definition.
        self.start_clock(ctx.id)
    }

    // --- Port-separable interface: the oracle's guard is strictly
    // port-local. `slot_enabled` reads exactly one neighbor — the one
    // behind the current slot's `prev_port` — so both directions of the
    // port-dirty contract are *exact* here, no cache words needed:
    //
    // * read side: a neighbor change matters only on the watched port;
    // * write side: when this node advances past event `e`, the only
    //   guard that can flip anywhere is the actor of slot `e + 1` (its
    //   `prev_port` points back here, and its threshold `clock ≥ c` is
    //   crossed exactly then; every other threshold against this clock
    //   is either already satisfied — clocks are monotone — or strictly
    //   in the future). That actor is precomputed in `succ_port`, and
    //   `apply_in_place` declares exactly that port.
    // ---

    fn port_separable(&self) -> bool {
        true
    }

    fn enabled_from_cache(
        &self,
        view: &impl NodeView<u64>,
        _cache: &mut PortCache<'_>,
        out: &mut Vec<Execute>,
        _scratch: &mut sno_engine::Scratch,
    ) -> bool {
        // The guard is O(1) from the live state; no cache words needed.
        if self.slot_enabled(view) {
            out.push(Execute);
        }
        true
    }

    fn init_ports(&self, view: &impl NodeView<u64>, _cache: &mut PortCache<'_>) -> u32 {
        u32::from(self.slot_enabled(view))
    }

    fn refresh_self(
        &self,
        view: &impl NodeView<u64>,
        _touched: u64,
        _cache: &mut PortCache<'_>,
    ) -> PortVerdict {
        PortVerdict::Count(u32::from(self.slot_enabled(view)))
    }

    fn reevaluate_port(
        &self,
        view: &impl NodeView<u64>,
        port: Port,
        _cache: &mut PortCache<'_>,
    ) -> PortVerdict {
        let slot = &self.slots[self.residue(*view.state())];
        if slot.actor != view.ctx().id {
            // Corrupted clock: disabled regardless of any neighbor.
            return PortVerdict::Unchanged;
        }
        match slot.prev_port {
            // Round start: enabled regardless of any neighbor.
            None => PortVerdict::Unchanged,
            Some(watched) if watched == port => {
                PortVerdict::Count(u32::from(self.slot_enabled(view)))
            }
            // The guard does not read this port at all.
            Some(_) => PortVerdict::Unchanged,
        }
    }
}

impl TokenCirculation for OracleToken {
    fn classify(&self, view: &impl NodeView<u64>, _action: &Execute) -> TokenKind {
        self.slots[self.residue(*view.state())].kind
    }

    fn parent_port(&self, view: &impl NodeView<u64>) -> Option<Port> {
        self.parent_ports[view.ctx().id.index()]
    }
}

impl SpaceMeasured for OracleToken {
    fn state_bits(&self, ctx: &NodeCtx) -> usize {
        // The substrate of [10] needs O(log N) bits beside the orientation
        // variables; the oracle models that footprint.
        bits_for(2 * ctx.n_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_engine::daemon::{CentralRoundRobin, DistributedRandom};
    use sno_engine::protocol::ConfigView;
    use sno_engine::{Network, Simulation};
    use sno_graph::generators;

    fn forwards_of_one_round(g: sno_graph::Graph) -> Vec<usize> {
        let root = NodeId::new(0);
        let oracle = OracleToken::new(&g, root);
        let net = Network::new(g, root);
        let mut sim = Simulation::from_initial(&net, oracle.clone());
        let mut daemon = CentralRoundRobin::new();
        let mut forwards = Vec::new();
        let round = oracle.round_len();
        // Execute exactly one round of events.
        for _ in 0..round {
            let enabled = sim.enabled_nodes();
            assert_eq!(enabled.len(), 1, "the oracle is sequential");
            let node = enabled[0].node;
            let view = ConfigView::new(&net, node, sim.config());
            if oracle.classify(&view, &Execute) == TokenKind::Forward {
                forwards.push(node.index());
            }
            sim.step(&mut daemon);
        }
        forwards
    }

    #[test]
    fn one_round_visits_every_node_once_in_dfs_order() {
        let g = generators::paper_example_dftno();
        let golden: Vec<usize> = sno_graph::traverse::first_dfs(&g, NodeId::new(0))
            .order
            .iter()
            .map(|p| p.index())
            .collect();
        assert_eq!(forwards_of_one_round(g), golden);
    }

    #[test]
    fn works_on_dense_graphs() {
        let g = generators::complete(6);
        let golden: Vec<usize> = sno_graph::traverse::first_dfs(&g, NodeId::new(0))
            .order
            .iter()
            .map(|p| p.index())
            .collect();
        assert_eq!(forwards_of_one_round(g), golden);
    }

    #[test]
    fn circulates_forever() {
        let g = generators::random_connected(9, 5, 2);
        let oracle = OracleToken::new(&g, NodeId::new(0));
        let net = Network::new(g, NodeId::new(0));
        let mut sim = Simulation::from_initial(&net, oracle.clone());
        let mut daemon = CentralRoundRobin::new();
        for _ in 0..(oracle.round_len() * 5) {
            assert!(!sim.step(&mut daemon).is_silent(), "never terminates");
        }
    }

    #[test]
    fn singleton_network_round_is_one_event() {
        let g = generators::singleton();
        let oracle = OracleToken::new(&g, NodeId::new(0));
        assert_eq!(oracle.round_len(), 1);
        let net = Network::new(g, NodeId::new(0));
        let mut sim = Simulation::from_initial(&net, oracle);
        let mut daemon = CentralRoundRobin::new();
        for _ in 0..5 {
            assert!(!sim.step(&mut daemon).is_silent());
        }
        assert_eq!(*sim.state(NodeId::new(0)), 5);
    }

    #[test]
    fn distributed_daemon_cannot_break_sequencing() {
        let g = generators::ring(7);
        let oracle = OracleToken::new(&g, NodeId::new(0));
        let net = Network::new(g, NodeId::new(0));
        let mut sim = Simulation::from_initial(&net, oracle.clone());
        let mut daemon = DistributedRandom::seeded(6);
        let mut last = [0u64; 7];
        for _ in 0..500 {
            sim.step(&mut daemon);
            for p in net.nodes() {
                let c = *sim.state(p);
                assert!(c >= last[p.index()], "clocks are monotone");
                last[p.index()] = c;
            }
        }
    }

    #[test]
    fn backtrack_classification_names_the_returning_child() {
        let g = generators::path(3);
        let oracle = OracleToken::new(&g, NodeId::new(0));
        let net = Network::new(g, NodeId::new(0));
        let mut sim = Simulation::from_initial(&net, oracle.clone());
        let mut daemon = CentralRoundRobin::new();
        let mut backtracks = Vec::new();
        for _ in 0..oracle.round_len() {
            let enabled = sim.enabled_nodes();
            let node = enabled[0].node;
            let view = ConfigView::new(&net, node, sim.config());
            if let TokenKind::Backtrack { child } = oracle.classify(&view, &Execute) {
                backtracks.push((node.index(), child.index()));
            }
            sim.step(&mut daemon);
        }
        // Path 0−1−2: token returns 2→1 then 1→0.
        assert_eq!(backtracks, vec![(1, 1), (0, 0)]);
    }
}
