//! # sno-token
//!
//! A **self-stabilizing depth-first token circulation** (DFTC) substrate for
//! arbitrary rooted networks — the underlying protocol `DFTNO` assumes
//! (Datta–Johnen–Petit–Villain, cited as \[10\] in the paper).
//!
//! The paper uses \[10\] as a black box with three guarantees:
//!
//! 1. a single token circulates in **deterministic depth-first order**
//!    (lowest port first), every node receiving it exactly once per round
//!    (`Forward(p)`) and regaining it once per child (`Backtrack(p)`);
//! 2. the circulation is **self-stabilizing** under a weakly fair daemon;
//! 3. a round costs `Θ(n)` moves.
//!
//! This crate provides those guarantees with a documented substitution (see
//! `DESIGN.md` §4): a layered construction
//!
//! * [`cd::CollinDolev`] — the classic path-ordered DFS-tree protocol: each
//!   node repeatedly sets its path variable to the lexicographically least
//!   extension of a neighbor's path; the silent fixpoint is the *first DFS
//!   tree* of the graph, and the lexicographic order of the stabilized
//!   paths is the DFS visit order;
//! * [`tok`] — a handshake-bit depth-first token wave over the locally
//!   derived tree, with top-down absorption of spurious tokens;
//! * [`dftc::DfsTokenCirculation`] — the fair composition of the two, the
//!   drop-in substrate for `DFTNO`;
//! * [`fixed::FixedTreeToken`] — the token wave alone over a frozen oracle
//!   tree (isolation tests and exhaustive model checking);
//! * [`oracle::OracleToken`] — a golden, *non-stabilizing* token walker
//!   that replays the exact Euler tour of the first DFS tree (used to study
//!   `DFTNO` "after the token circulation stabilizes", as the paper's
//!   complexity claims are phrased).
//!
//! All three circulation protocols implement [`api::TokenCirculation`], the
//! interface `DFTNO` is written against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cd;
pub mod dftc;
pub mod fixed;
pub mod oracle;
pub mod path;
pub mod tok;

pub use api::{TokenCirculation, TokenKind};
pub use cd::CollinDolev;
pub use dftc::DfsTokenCirculation;
pub use fixed::FixedTreeToken;
pub use oracle::OracleToken;
pub use path::DfsPath;
