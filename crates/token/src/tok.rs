//! The handshake-bit depth-first token wave.
//!
//! Shared mechanics used by both [`crate::DfsTokenCirculation`] (tree
//! derived from Collin–Dolev words) and [`crate::FixedTreeToken`] (frozen
//! oracle tree). The tree is abstracted as a [`LocalTree`] — whatever a
//! node currently believes its parent and (port-ordered) children are.
//!
//! ## Mechanics
//!
//! Each processor keeps one handshake bit per port (`bits`), one bit toward
//! its parent (`flag`), a work flag, and a child scan index. For the edge
//! from `p` to its child `c` (port `l` at `p`, back port `m` at `c`):
//!
//! > **`c` is granted the token** iff `bits_p[l] ≠ flag_c`.
//!
//! `p` delegates by flipping `bits[l]`; `c` returns by copying the bit into
//! its `flag`. A round at `p`: take the token (`Take`, the paper's
//! `Forward(p)`), delegate to each child in port order (`Advance`), and
//! hand it back (`Return`). The root is permanently granted, so rounds
//! chain forever.
//!
//! ## Self-stabilization
//!
//! Two correction actions clean arbitrary initial states:
//!
//! * [`TokAction::Absorb`] — a non-granted processor must be inert: it
//!   clears its work flag and re-matches every child bit, revoking any
//!   spurious delegations. Because derived parent pointers strictly
//!   increase word length, they form a forest even before the tree layer
//!   stabilizes, so absorption drains every spurious token top-down.
//! * [`TokAction::Repair`] — a granted, working processor clamps a garbage
//!   scan index and revokes delegations other than the one at `scan − 1`.
//!
//! A granted processor whose parent no longer recognizes it finishes one
//! round and self-revokes (its `Return` copies the parent bit, restoring
//! equality), so stale grants disappear after at most one spurious round.

use rand::Rng as _;
use rand::RngCore;
use sno_engine::{NodeCtx, NodeView};
use sno_graph::Port;

use crate::api::TokenKind;

/// Per-processor variables of the token wave.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TokState {
    /// Handshake bit toward the parent.
    pub flag: bool,
    /// Whether the processor is mid-round (`st = Work`).
    pub working: bool,
    /// Index of the next child (in the ordered child list) to delegate to;
    /// `scan == children.len()` means every child has been served.
    pub scan: u16,
    /// Handshake bits toward each port (only child ports are meaningful).
    pub bits: Vec<bool>,
}

impl TokState {
    /// The canonical clean state for a processor of the given degree.
    pub fn clean(degree: usize) -> Self {
        TokState {
            flag: false,
            working: false,
            scan: 0,
            bits: vec![false; degree],
        }
    }

    /// Samples an arbitrary (possibly corrupt) state.
    pub fn random(ctx: &NodeCtx, rng: &mut dyn RngCore) -> Self {
        TokState {
            flag: rng.random_bool(0.5),
            working: rng.random_bool(0.5),
            scan: rng.random_range(0..=ctx.degree as u16),
            bits: (0..ctx.degree).map(|_| rng.random_bool(0.5)).collect(),
        }
    }

    /// Enumerates every state for a processor of the given degree
    /// (`2 × 2 × (Δ+1) × 2^Δ` states — model checking only).
    pub fn enumerate(degree: usize) -> Vec<Self> {
        let mut out = Vec::new();
        for flag in [false, true] {
            for working in [false, true] {
                for scan in 0..=degree as u16 {
                    for mask in 0..(1u32 << degree) {
                        out.push(TokState {
                            flag,
                            working,
                            scan,
                            bits: (0..degree).map(|i| mask >> i & 1 == 1).collect(),
                        });
                    }
                }
            }
        }
        out
    }
}

/// What a processor currently believes about its position in the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalTree {
    /// `true` iff the processor believes it is attached to the tree (the
    /// root with a correct word, or a node with a recognized parent).
    pub attached: bool,
    /// The port toward the parent (`None` at the root or when detached).
    pub parent: Option<Port>,
    /// Child ports in ascending port order — the deterministic DFS order.
    pub children: Vec<Port>,
}

/// Everything the token-wave guards need, extracted once per evaluation.
#[derive(Debug)]
pub struct TokView<'a> {
    /// The processor's believed tree position.
    pub tree: &'a LocalTree,
    /// Own variables.
    pub me: &'a TokState,
    /// Whether the parent's bit grants this processor the token (the root
    /// is granted iff attached).
    pub granted: bool,
    /// For each entry of `tree.children`: the child's current `flag`.
    pub child_flags: Vec<bool>,
    /// The parent's bit toward this processor, if a parent exists.
    pub parent_bit: Option<bool>,
}

impl<'a> TokView<'a> {
    /// Builds the token view for a node, given accessors into the
    /// underlying protocol state.
    pub fn gather<S>(
        view: &'a impl NodeView<S>,
        tree: &'a LocalTree,
        me: &'a TokState,
        tok_of: impl Fn(&S) -> &TokState,
    ) -> Self {
        let ctx = view.ctx();
        let parent_bit = tree.parent.map(|l| {
            let back = ctx.back_ports[l.index()];
            tok_of(view.neighbor(l)).bits[back.index()]
        });
        let granted = if ctx.is_root {
            tree.attached
        } else {
            match parent_bit {
                Some(b) => tree.attached && b != me.flag,
                None => false,
            }
        };
        let child_flags = tree
            .children
            .iter()
            .map(|&l| tok_of(view.neighbor(l)).flag)
            .collect();
        TokView {
            tree,
            me,
            granted,
            child_flags,
            parent_bit,
        }
    }

    /// `true` iff the delegation bit toward child `i` (an index into
    /// `tree.children`) is outstanding.
    pub fn pending(&self, i: usize) -> bool {
        let port = self.tree.children[i];
        self.me.bits[port.index()] != self.child_flags[i]
    }

    fn any_spurious_pending(&self) -> bool {
        let k = self.tree.children.len();
        let scan = self.me.scan as usize;
        (0..k).any(|i| self.pending(i) && (scan == 0 || i != scan - 1))
    }
}

/// The actions of the token wave (see module docs for guards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokAction {
    /// Not granted but holding work or delegations: go inert.
    Absorb,
    /// Granted and working with inconsistent scan/delegations: repair.
    Repair,
    /// Receive the token — the paper's `Forward(p)`.
    Take,
    /// Previous child done: delegate to child `scan` and advance.
    Advance,
    /// All children done: finish the round and return the token.
    Return,
}

/// Evaluates the (disjoint, priority-ordered) guards; at most one action is
/// enabled per processor.
pub fn tok_enabled(v: &TokView<'_>) -> Option<TokAction> {
    let k = v.tree.children.len();
    let scan = v.me.scan as usize;
    if !v.granted {
        let dirty = v.me.working || (0..k).any(|i| v.pending(i));
        return dirty.then_some(TokAction::Absorb);
    }
    if v.me.working {
        if scan > k || v.any_spurious_pending() {
            return Some(TokAction::Repair);
        }
        let prev_done = scan == 0 || !v.pending(scan - 1);
        if !prev_done {
            return None; // token is below; wait for the child to return
        }
        if scan < k {
            return Some(TokAction::Advance);
        }
        return Some(TokAction::Return);
    }
    Some(TokAction::Take)
}

/// Executes an action, returning the new token variables.
///
/// Must only be called with the action [`tok_enabled`] returned for the
/// same view.
pub fn tok_apply(v: &TokView<'_>, action: TokAction) -> TokState {
    let mut s = v.me.clone();
    let k = v.tree.children.len();
    match action {
        TokAction::Absorb => {
            s.working = false;
            s.scan = 0;
            for (i, &port) in v.tree.children.iter().enumerate() {
                s.bits[port.index()] = v.child_flags[i];
            }
        }
        TokAction::Repair => {
            let scan = (s.scan as usize).min(k);
            s.scan = scan as u16;
            for (i, &port) in v.tree.children.iter().enumerate() {
                if v.pending(i) && (scan == 0 || i != scan - 1) {
                    s.bits[port.index()] = v.child_flags[i];
                }
            }
        }
        TokAction::Take => {
            s.working = true;
            s.scan = 0;
        }
        TokAction::Advance => {
            let i = s.scan as usize;
            debug_assert!(i < k, "Advance requires an unserved child");
            let port = v.tree.children[i];
            s.bits[port.index()] = !v.child_flags[i];
            s.scan += 1;
        }
        TokAction::Return => {
            s.working = false;
            if let Some(b) = v.parent_bit {
                s.flag = b;
            }
        }
    }
    s
}

/// Classifies an enabled action in the paper's terms.
pub fn tok_classify(v: &TokView<'_>, action: TokAction) -> TokenKind {
    let k = v.tree.children.len();
    match action {
        TokAction::Take => TokenKind::Forward,
        TokAction::Advance if v.me.scan >= 1 => TokenKind::Backtrack {
            child: v.tree.children[v.me.scan as usize - 1],
        },
        TokAction::Return if k >= 1 => TokenKind::Backtrack {
            child: v.tree.children[k - 1],
        },
        _ => TokenKind::Internal,
    }
}

/// Chain-walk legitimacy for the token wave over a *correct* tree: exactly
/// one root-anchored activity chain, everything else inert.
///
/// `tok_of(p)` reads the token variables of node `p`; `children_of(p)`
/// returns its true (port-ordered) children; `flags` must therefore be
/// consulted through `tok_of`.
pub fn chain_legit(
    n: usize,
    root: usize,
    tok_of: &dyn Fn(usize) -> TokState,
    children_of: &dyn Fn(usize) -> Vec<(usize, Port)>,
) -> bool {
    // Walk the activity chain from the root.
    let mut on_chain = vec![false; n];
    let mut cur = root;
    loop {
        on_chain[cur] = true;
        let t = tok_of(cur);
        let kids = children_of(cur);
        let k = kids.len();
        if !t.working {
            break; // holder about to Take (cleanliness checked below)
        }
        let scan = t.scan as usize;
        if scan > k {
            return false;
        }
        let mut descend = None;
        for (i, &(child, port)) in kids.iter().enumerate() {
            let pending = t.bits[port.index()] != tok_of(child).flag;
            if pending {
                if scan == 0 || i != scan - 1 {
                    return false; // spurious delegation
                }
                descend = Some(child);
            }
        }
        match descend {
            Some(c) => cur = c,
            None => break, // holder about to Advance/Return
        }
    }
    // Everything off the chain must be inert, and every non-working node —
    // including a holder about to Take — must hold no outstanding
    // delegation bit (an unmatched bit would grant a second token).
    for (p, &chained) in on_chain.iter().enumerate().take(n) {
        let t = tok_of(p);
        if !chained && t.working {
            return false;
        }
        if t.working {
            continue; // on-chain working nodes were validated by the walk
        }
        for &(child, port) in &children_of(p) {
            if t.bits[port.index()] != tok_of(child).flag {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_tree() -> LocalTree {
        LocalTree {
            attached: true,
            parent: Some(Port::new(0)),
            children: Vec::new(),
        }
    }

    #[test]
    fn clean_state_shape() {
        let s = TokState::clean(3);
        assert!(!s.working);
        assert_eq!(s.bits.len(), 3);
    }

    #[test]
    fn enumerate_covers_expected_count() {
        // degree 2: 2 * 2 * 3 * 4 = 48.
        assert_eq!(TokState::enumerate(2).len(), 48);
        let all = TokState::enumerate(2);
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), 48);
    }

    #[test]
    fn granted_idle_leaf_takes_then_returns() {
        let tree = leaf_tree();
        let me = TokState::clean(1);
        let v = TokView {
            tree: &tree,
            me: &me,
            granted: true,
            child_flags: vec![],
            parent_bit: Some(true), // differs from flag=false → granted
        };
        assert_eq!(tok_enabled(&v), Some(TokAction::Take));
        let worked = tok_apply(&v, TokAction::Take);
        assert!(worked.working);

        let v2 = TokView {
            tree: &tree,
            me: &worked,
            granted: true,
            child_flags: vec![],
            parent_bit: Some(true),
        };
        assert_eq!(tok_enabled(&v2), Some(TokAction::Return));
        let done = tok_apply(&v2, TokAction::Return);
        assert!(!done.working);
        assert!(done.flag, "flag copies the parent bit (token returned)");
    }

    #[test]
    fn ungranted_dirty_node_absorbs() {
        let tree = LocalTree {
            attached: true,
            parent: Some(Port::new(0)),
            children: vec![Port::new(1)],
        };
        let mut me = TokState::clean(2);
        me.working = true;
        me.bits[1] = true; // outstanding delegation
        let v = TokView {
            tree: &tree,
            me: &me,
            granted: false,
            child_flags: vec![false],
            parent_bit: Some(me.flag), // equal → not granted
        };
        assert_eq!(tok_enabled(&v), Some(TokAction::Absorb));
        let s = tok_apply(&v, TokAction::Absorb);
        assert!(!s.working);
        assert!(!s.bits[1], "delegation revoked");
    }

    #[test]
    fn spurious_delegation_repaired() {
        let tree = LocalTree {
            attached: true,
            parent: None,
            children: vec![Port::new(0), Port::new(1)],
        };
        let mut me = TokState::clean(2);
        me.working = true;
        me.scan = 1; // legitimately delegated to child 0 …
        me.bits[0] = true;
        me.bits[1] = true; // … but child 1 also looks delegated: spurious.
        let v = TokView {
            tree: &tree,
            me: &me,
            granted: true,
            child_flags: vec![false, false],
            parent_bit: None,
        };
        assert_eq!(tok_enabled(&v), Some(TokAction::Repair));
        let s = tok_apply(&v, TokAction::Repair);
        assert!(s.bits[0], "current delegation kept");
        assert!(!s.bits[1], "spurious delegation revoked");
    }

    #[test]
    fn advance_flips_bit_and_moves_on() {
        let tree = LocalTree {
            attached: true,
            parent: None,
            children: vec![Port::new(0), Port::new(1)],
        };
        let mut me = TokState::clean(2);
        me.working = true;
        let v = TokView {
            tree: &tree,
            me: &me,
            granted: true,
            child_flags: vec![false, false],
            parent_bit: None,
        };
        assert_eq!(tok_enabled(&v), Some(TokAction::Advance));
        assert_eq!(tok_classify(&v, TokAction::Advance), TokenKind::Internal);
        let s = tok_apply(&v, TokAction::Advance);
        assert_eq!(s.scan, 1);
        assert!(s.bits[0], "delegation bit flipped for child 0");
    }

    #[test]
    fn waiting_on_pending_child_disables_everything() {
        let tree = LocalTree {
            attached: true,
            parent: None,
            children: vec![Port::new(0)],
        };
        let mut me = TokState::clean(1);
        me.working = true;
        me.scan = 1;
        me.bits[0] = true; // delegated, child has not returned
        let v = TokView {
            tree: &tree,
            me: &me,
            granted: true,
            child_flags: vec![false],
            parent_bit: None,
        };
        assert_eq!(tok_enabled(&v), None);
    }

    #[test]
    fn backtrack_classification_points_at_previous_child() {
        let tree = LocalTree {
            attached: true,
            parent: None,
            children: vec![Port::new(2), Port::new(5)],
        };
        let mut me = TokState::clean(6);
        me.working = true;
        me.scan = 1; // child 0 (port 2) has just returned
        let v = TokView {
            tree: &tree,
            me: &me,
            granted: true,
            child_flags: vec![false, false],
            parent_bit: None,
        };
        assert_eq!(
            tok_classify(&v, TokAction::Advance),
            TokenKind::Backtrack {
                child: Port::new(2)
            }
        );
        let mut done = me.clone();
        done.scan = 2;
        let v2 = TokView {
            tree: &tree,
            me: &done,
            granted: true,
            child_flags: vec![false, false],
            parent_bit: None,
        };
        assert_eq!(
            tok_classify(&v2, TokAction::Return),
            TokenKind::Backtrack {
                child: Port::new(5)
            }
        );
    }
}
