//! Bounded DFS path words and their traversal order.
//!
//! A path word records the ports taken from the root along a candidate
//! DFS-tree branch: the element appended when the path is extended over the
//! edge `(u, v)` is `α_u(v)`, the port *at `u`* pointing to `v`. Words
//! longer than the cap (`N − 1`, the longest possible simple path) are
//! collapsed to the absorbing top element `⊤`, which kills fabricated
//! cycles during stabilization.
//!
//! The derived `Ord` is the traversal order `≺`: a proper prefix precedes
//! its extensions, otherwise the first differing port decides. The visit
//! order of the first depth-first traversal is exactly `≺` on the
//! stabilized words — the property `DFTNO`'s naming leans on.

use std::fmt;

use sno_graph::Port;

/// A bounded DFS path word (see module docs).
///
/// # Example
///
/// ```
/// use sno_token::DfsPath;
/// use sno_graph::Port;
///
/// let root = DfsPath::root();
/// let child = root.extend(Port::new(1), 4);
/// assert!(root < child, "a prefix precedes its extensions");
/// assert_eq!(child.len(), Some(1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum DfsPath {
    /// A finite word of ports (empty at the root).
    Finite(Vec<u16>),
    /// The absorbing "no path" element `⊤`, greater than every finite word.
    #[default]
    Top,
}

impl DfsPath {
    /// The empty word — the root's legitimate value.
    pub fn root() -> Self {
        DfsPath::Finite(Vec::new())
    }

    /// Builds a finite word from raw port indices.
    pub fn from_ports(ports: &[u16]) -> Self {
        DfsPath::Finite(ports.to_vec())
    }

    /// `true` iff this is `⊤`.
    pub fn is_top(&self) -> bool {
        matches!(self, DfsPath::Top)
    }

    /// Length of the word, or `None` for `⊤`.
    pub fn len(&self) -> Option<usize> {
        match self {
            DfsPath::Finite(w) => Some(w.len()),
            DfsPath::Top => None,
        }
    }

    /// `true` iff this is the empty word.
    pub fn is_empty(&self) -> bool {
        matches!(self, DfsPath::Finite(w) if w.is_empty())
    }

    /// The word extended by one port, collapsing to `⊤` when the result
    /// would exceed `cap` elements (or when extending `⊤`).
    pub fn extend(&self, port: Port, cap: usize) -> Self {
        match self {
            DfsPath::Top => DfsPath::Top,
            DfsPath::Finite(w) => {
                if w.len() >= cap {
                    DfsPath::Top
                } else {
                    let mut next = Vec::with_capacity(w.len() + 1);
                    next.extend_from_slice(w);
                    next.push(port.index() as u16);
                    DfsPath::Finite(next)
                }
            }
        }
    }

    /// The ports of a finite word, if any.
    pub fn ports(&self) -> Option<&[u16]> {
        match self {
            DfsPath::Finite(w) => Some(w),
            DfsPath::Top => None,
        }
    }
}

impl fmt::Debug for DfsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsPath::Top => f.write_str("⊤"),
            DfsPath::Finite(w) if w.is_empty() => f.write_str("ε"),
            DfsPath::Finite(w) => {
                let parts: Vec<String> = w.iter().map(u16::to_string).collect();
                write!(f, "⟨{}⟩", parts.join("."))
            }
        }
    }
}

impl fmt::Display for DfsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Enumerates every word of length `≤ cap` over the alphabet
/// `0..alphabet`, plus `⊤` — the per-node state space handed to the model
/// checker. The count is `(alphabet^(cap+1) − 1) / (alphabet − 1) + 1`, so
/// keep `cap` and `alphabet` tiny.
pub fn enumerate_paths(alphabet: u16, cap: usize) -> Vec<DfsPath> {
    let mut out = vec![DfsPath::Top];
    let mut frontier = vec![Vec::<u16>::new()];
    out.push(DfsPath::Finite(Vec::new()));
    for _ in 0..cap {
        let mut next = Vec::new();
        for w in &frontier {
            for a in 0..alphabet {
                let mut e = w.clone();
                e.push(a);
                out.push(DfsPath::Finite(e.clone()));
                next.push(e);
            }
        }
        frontier = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_precedes_extension() {
        let a = DfsPath::from_ports(&[0, 1]);
        let b = DfsPath::from_ports(&[0, 1, 0]);
        assert!(a < b);
    }

    #[test]
    fn first_difference_decides() {
        let a = DfsPath::from_ports(&[0, 2]);
        let b = DfsPath::from_ports(&[1]);
        assert!(a < b, "port 0 branch precedes port 1 branch");
        let c = DfsPath::from_ports(&[0, 1]);
        assert!(c < a);
    }

    #[test]
    fn top_is_greatest() {
        let a = DfsPath::from_ports(&[9, 9, 9]);
        assert!(a < DfsPath::Top);
        assert!(DfsPath::root() < DfsPath::Top);
    }

    #[test]
    fn extend_respects_cap() {
        let p = DfsPath::from_ports(&[0, 0]);
        assert_eq!(p.extend(Port::new(1), 3), DfsPath::from_ports(&[0, 0, 1]));
        assert_eq!(p.extend(Port::new(1), 2), DfsPath::Top);
        assert_eq!(DfsPath::Top.extend(Port::new(0), 10), DfsPath::Top);
    }

    #[test]
    fn enumerate_counts() {
        // alphabet 2, cap 2: ε, 0, 1, 00, 01, 10, 11, ⊤ = 8.
        assert_eq!(enumerate_paths(2, 2).len(), 8);
        // Everything enumerated is distinct.
        let all = enumerate_paths(3, 2);
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", DfsPath::root()), "ε");
        assert_eq!(format!("{:?}", DfsPath::from_ports(&[1, 0])), "⟨1.0⟩");
        assert_eq!(format!("{:?}", DfsPath::Top), "⊤");
    }

    #[test]
    fn default_is_top() {
        assert!(DfsPath::default().is_top());
    }
}
