//! Property-based tests for the token substrate: path-word order laws and
//! the single-token invariant of the converged circulation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sno_engine::daemon::CentralRoundRobin;
use sno_engine::{Network, Simulation};
use sno_graph::{generators, NodeId, Port};
use sno_token::dftc::{dftc_legit, DfsTokenCirculation};
use sno_token::DfsPath;

fn arb_word() -> impl Strategy<Value = Vec<u16>> {
    prop::collection::vec(0u16..6, 0..6)
}

fn arb_path() -> impl Strategy<Value = DfsPath> {
    prop_oneof![
        3 => arb_word().prop_map(|w| DfsPath::from_ports(&w)),
        1 => Just(DfsPath::Top),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn path_order_is_total_and_consistent(a in arb_path(), b in arb_path(), c in arb_path()) {
        // Antisymmetry + transitivity spot checks (Ord is derived, but the
        // *semantics* — prefix-precedes — is what the protocol needs).
        if a < b && b < c {
            prop_assert!(a < c);
        }
        prop_assert_eq!(a == b, a >= b && b >= a);
    }

    #[test]
    fn prefix_always_precedes_extension(w in arb_word(), port in 0u16..6) {
        let p = DfsPath::from_ports(&w);
        let e = p.extend(Port::new(port as usize), 16);
        prop_assert!(p < e, "{p:?} must precede {e:?}");
    }

    #[test]
    fn extension_preserves_order(a in arb_word(), b in arb_word(), port in 0u16..6) {
        let pa = DfsPath::from_ports(&a);
        let pb = DfsPath::from_ports(&b);
        // Extending the *greater* word never makes it smaller than the
        // smaller word's extension by the same port, unless prefix rules
        // interfere — the safe law: extending both by the same port
        // preserves strict order when neither is a prefix of the other.
        if pa < pb && !b.starts_with(&a) {
            let ea = pa.extend(Port::new(port as usize), 16);
            let eb = pb.extend(Port::new(port as usize), 16);
            prop_assert!(ea < eb);
        }
    }

    #[test]
    fn cap_collapses_to_top(w in arb_word(), port in 0u16..6) {
        let p = DfsPath::from_ports(&w);
        let e = p.extend(Port::new(port as usize), w.len());
        prop_assert!(e.is_top());
    }
}

/// After convergence, walk many steps and assert there is never more than
/// one "active" processor (the legitimate configurations are sequential)
/// and legitimacy is closed.
#[test]
fn converged_circulation_has_a_single_active_site() {
    for seed in 0..4u64 {
        let g = generators::random_connected(8, 5, seed);
        let net = Network::new(g, NodeId::new(0));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = Simulation::from_random(&net, DfsTokenCirculation, &mut rng);
        let run = sim.run_until(&mut CentralRoundRobin::new(), 20_000_000, |c| {
            dftc_legit(&net, c)
        });
        assert!(run.converged, "seed {seed}");
        let mut daemon = CentralRoundRobin::new();
        for _ in 0..400 {
            let enabled = sim.enabled_nodes();
            assert_eq!(enabled.len(), 1, "sequential once legitimate");
            sim.step(&mut daemon);
            assert!(dftc_legit(&net, sim.config()), "closure");
        }
    }
}

/// The substrate must also converge when the daemon is locally central
/// (independent subsets) — a model between central and distributed.
#[test]
fn converges_under_locally_central_daemon() {
    let g = generators::random_connected(8, 6, 9);
    let net = Network::new(g, NodeId::new(0));
    let mut daemon = sno_engine::daemon::LocallyCentralRandom::seeded(2, &net);
    let mut rng = StdRng::seed_from_u64(1);
    let mut sim = Simulation::from_random(&net, DfsTokenCirculation, &mut rng);
    let run = sim.run_until(&mut daemon, 20_000_000, |c| dftc_legit(&net, c));
    assert!(run.converged);
}
