//! Generation-stamped configuration storage with copy-on-write delta
//! staging — the engine's answer to the multi-writer clone problem.
//!
//! # Why staging existed
//!
//! A computation step under the distributed or synchronous daemon
//! executes **k > 1** statements with composite atomicity: every
//! statement's reads must see the *pre-step* configuration even though
//! the statements' writes land together. The engine used to buy that
//! guarantee by `clone_from`-ing each writer's whole state into a pooled
//! slot, building the post-state there, and swapping the batch in — an
//! `O(Δ)` copy per writer per step for protocols with per-port arrays,
//! exactly in the dense synchronous rounds where self-stabilization is
//! most expensive.
//!
//! # Delta staging
//!
//! [`ConfigStore`] inverts the scheme. There is one **generation** per
//! multi-writer round and one **epoch word per slot** (`stamp`): writers
//! mutate their slots **in place**, stamping them with the round's
//! generation, and the store preserves a pre-round copy of a slot *only
//! when a later writer's declared reads could actually observe the
//! write* — the copy-on-write delta against the pre-round generation.
//! What "could observe" means comes from the protocol's
//! [`ApplyProfile`](crate::protocol::ApplyProfile) declarations: a
//! reader and an earlier writer conflict iff the reader's read mask
//! intersects the writer's write mask and its read scope covers the
//! writer. The engine additionally orders **readers before non-readers**
//! within the round, so a statement that reads nothing (the common case
//! in repair-heavy rounds) can never force a preservation.
//!
//! Commit is a **bulk epoch bump**: the next round's `begin_round`
//! advances the generation, which atomically invalidates every stamp,
//! stash entry, and plan mark of the previous round — no per-slot
//! cleanup, no swap pass.
//!
//! Reads during the round resolve through [`DeltaTxn`]:
//!
//! * an **unstamped** neighbor still holds its pre-round value — read it
//!   live;
//! * a **stamped and preserved** neighbor was written by a conflicting
//!   earlier writer — read the stash copy;
//! * a **stamped but unpreserved** neighbor was written, but only in
//!   aspects the reader declared it does not consult — read it live
//!   (the consulted aspects are untouched by declaration).
//!
//! [`ShardTxn`] is the degenerate transaction for
//! [`ReadScope::None`](crate::protocol::ReadScope) writers inside a
//! sharded parallel round: it sees only the writer's own slot (its
//! shard's chunk), and any neighbor read panics — which both enforces
//! the declaration and is what makes the parallel write phase safe
//! without locks.

use sno_graph::{NodeId, Port};

use crate::network::{Network, NodeCtx};
use crate::protocol::{NodeView, ReadScope, StateTxn, TouchRecord};

/// The engine's configuration storage: one state slot per processor,
/// one epoch word per slot, and the copy-on-write stash of the current
/// multi-writer round. See the module docs.
#[derive(Debug, Clone)]
pub struct ConfigStore<S> {
    /// The live configuration (struct-of-slots; always current outside
    /// a round's write phase, and the post-state inside it).
    slots: Vec<S>,
    /// `stamp[i] == generation` iff slot `i` was delta-written in the
    /// current round.
    stamp: Vec<u64>,
    /// The current round's generation. Monotone; bumping it is the
    /// whole commit.
    generation: u64,
    /// Pooled pre-round copies (copy-on-write). `stash[stash_pos[i]]`
    /// is slot `i`'s pre-round state iff `stash_mark[i] == generation`.
    stash: Vec<S>,
    stash_pos: Vec<u32>,
    stash_mark: Vec<u64>,
    /// Stash slots used this round (the pool high-water mark persists).
    stash_used: usize,
    /// Planned write masks of the round's *reader* writers
    /// (`plan_mark[i] == generation` gates validity) — the conflict
    /// pre-pass runs against these before any write lands.
    plan_bits: Vec<u64>,
    plan_mark: Vec<u64>,
    /// Total pre-round preservations ever performed — the diagnostic
    /// behind the "synchronous steps perform zero whole-state clones"
    /// pins and the sync bench row.
    clones: u64,
}

impl<S: Clone> ConfigStore<S> {
    /// Wraps a configuration vector.
    pub fn new(slots: Vec<S>) -> ConfigStore<S> {
        let n = slots.len();
        ConfigStore {
            slots,
            stamp: vec![0; n],
            generation: 0,
            stash: Vec::new(),
            stash_pos: vec![0; n],
            stash_mark: vec![0; n],
            stash_used: 0,
            plan_bits: vec![0; n],
            plan_mark: vec![0; n],
            clones: 0,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` iff the store holds no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The live configuration.
    pub fn slice(&self) -> &[S] {
        &self.slots
    }

    /// Mutable access to the live configuration — the single-writer
    /// in-place path ([`crate::protocol::WriteTxn::split`]), fault
    /// injection, and re-initialization write through this.
    pub fn slots_mut(&mut self) -> &mut [S] {
        &mut self.slots
    }

    /// Appends one slot (a `NodeJoin` arrival's state) with fresh epoch
    /// words — the in-place `ConfigStore` repair for a topology event
    /// that grows the network. Existing slots, stamps, and the stash
    /// pool are untouched.
    pub fn push_slot(&mut self, state: S) {
        self.slots.push(state);
        self.stamp.push(0);
        self.stash_pos.push(0);
        self.stash_mark.push(0);
        self.plan_bits.push(0);
        self.plan_mark.push(0);
    }

    /// Opens a new multi-writer round: bumps the generation, which bulk-
    /// invalidates every stamp, stash entry, and plan mark of the
    /// previous round, and rewinds the stash pool.
    pub fn begin_round(&mut self) -> u64 {
        self.generation += 1;
        self.stash_used = 0;
        self.generation
    }

    /// Records that a *reader* writer of this round will write the
    /// given own-state aspects (the conflict pre-pass input).
    pub fn plan_write(&mut self, i: usize, write_mask: u64) {
        if self.plan_mark[i] == self.generation {
            self.plan_bits[i] |= write_mask;
        } else {
            self.plan_mark[i] = self.generation;
            self.plan_bits[i] = write_mask;
        }
    }

    /// `true` iff an earlier reader of this round planned a write to `i`
    /// whose aspects intersect `read_mask` — the copy-on-write trigger.
    pub fn planned_conflict(&self, i: usize, read_mask: u64) -> bool {
        self.plan_mark[i] == self.generation && self.plan_bits[i] & read_mask != 0
    }

    /// Preserves slot `i`'s current (pre-round) value in the stash. Must
    /// run before any write to `i` in this round; idempotent within a
    /// round. Pooled: a warm stash slot is `clone_from`-reused, so
    /// protocols with capacity-reusing `clone_from` implementations pay
    /// no heap traffic here.
    pub fn preserve(&mut self, i: usize) {
        if self.stash_mark[i] == self.generation {
            return;
        }
        debug_assert_ne!(
            self.stamp[i], self.generation,
            "preserve must precede the slot's delta write"
        );
        if self.stash_used == self.stash.len() {
            self.stash.push(self.slots[i].clone());
        } else {
            self.stash[self.stash_used].clone_from(&self.slots[i]);
        }
        self.stash_pos[i] = self.stash_used as u32;
        self.stash_mark[i] = self.generation;
        self.stash_used += 1;
        self.clones += 1;
    }

    /// Stamps slot `i` as delta-written in the current round.
    pub fn stamp_write(&mut self, i: usize) {
        self.stamp[i] = self.generation;
    }

    /// Total copy-on-write preservations performed over the store's
    /// lifetime (each is exactly one whole-state copy). Zero for rounds
    /// whose writers' declared reads never overlap earlier writers'
    /// declared writes.
    pub fn clone_count(&self) -> u64 {
        self.clones
    }

    /// Splits the slots into one `&mut` chunk per contiguous shard
    /// range, for the parallel write phase. `bounds` is the partition's
    /// boundary array (`shards + 1` entries).
    pub fn split_shards(&mut self, bounds: &[u32]) -> Vec<&mut [S]> {
        let mut rest: &mut [S] = &mut self.slots;
        let mut chunks = Vec::with_capacity(bounds.len().saturating_sub(1));
        for w in bounds.windows(2) {
            let len = (w[1] - w[0]) as usize;
            let (head, tail) = rest.split_at_mut(len);
            chunks.push(head);
            rest = tail;
        }
        debug_assert!(rest.is_empty(), "bounds must cover every slot");
        chunks
    }

    /// Opens the delta transaction of one writer: in-place mutable
    /// access to its slot, stash-resolved reads of its neighbors, and
    /// the declared read scope enforced on every neighbor access.
    pub fn delta_txn<'t>(
        &'t mut self,
        net: &'t Network,
        node: NodeId,
        reads: ReadScope,
        rec: &'t mut TouchRecord,
    ) -> DeltaTxn<'t, S> {
        assert_eq!(self.slots.len(), net.node_count(), "store/network mismatch");
        let (before, rest) = self.slots.split_at_mut(node.index());
        let (me, after) = rest.split_first_mut().expect("node out of range");
        DeltaTxn {
            net,
            node,
            before,
            after,
            me,
            stash: &self.stash,
            stash_pos: &self.stash_pos,
            stash_mark: &self.stash_mark,
            stamp: &self.stamp,
            generation: self.generation,
            reads,
            rec,
        }
    }
}

/// The multi-writer delta transaction: writes one slot in place while
/// resolving neighbor reads against the round's copy-on-write stash.
/// See the module docs for the read-resolution rules.
#[derive(Debug)]
pub struct DeltaTxn<'t, S> {
    net: &'t Network,
    node: NodeId,
    /// `slots[..node]` / `slots[node + 1..]` around the writer's slot.
    before: &'t [S],
    after: &'t [S],
    me: &'t mut S,
    stash: &'t [S],
    stash_pos: &'t [u32],
    stash_mark: &'t [u64],
    stamp: &'t [u64],
    generation: u64,
    reads: ReadScope,
    rec: &'t mut TouchRecord,
}

impl<S> DeltaTxn<'_, S> {
    fn live(&self, q: usize) -> &S {
        if q < self.before.len() {
            &self.before[q]
        } else {
            &self.after[q - self.before.len() - 1]
        }
    }
}

impl<S> NodeView<S> for DeltaTxn<'_, S> {
    fn ctx(&self) -> &NodeCtx {
        self.net.ctx(self.node)
    }

    fn state(&self) -> &S {
        &*self.me
    }

    fn neighbor(&self, l: Port) -> &S {
        match self.reads {
            ReadScope::All => {}
            ReadScope::One(p) if p == l => {}
            _ => panic!(
                "apply_in_place read neighbor port {} outside its declared \
                 ApplyProfile read scope {:?}",
                l.index(),
                self.reads
            ),
        }
        let q = self.net.graph().neighbor(self.node, l).index();
        if self.stamp[q] == self.generation && self.stash_mark[q] == self.generation {
            // Written this round by a conflicting earlier writer: the
            // pre-round value lives in the stash.
            &self.stash[self.stash_pos[q] as usize]
        } else {
            // Unwritten (live == pre-round), or written only in aspects
            // this reader declared it does not consult.
            self.live(q)
        }
    }
}

impl<S> StateTxn<S> for DeltaTxn<'_, S> {
    fn state_mut(&mut self) -> &mut S {
        self.rec.mark_wrote();
        self.me
    }

    fn touch_port(&mut self, l: Port) {
        let degree = self.net.ctx(self.node).degree;
        self.rec.touch_port(l, degree);
    }

    fn touch_all_ports(&mut self) {
        self.rec.touch_all_ports();
    }

    fn mark_unobservable(&mut self) {
        self.rec.mark_unobservable();
    }

    fn note_self(&mut self, bits: u64) {
        self.rec.note_self(bits);
    }

    fn commit(&mut self) {
        self.rec.commit();
    }
}

/// The shard-parallel write transaction: a [`ReadScope::None`] writer's
/// view of the world — its static context and its own slot, nothing
/// else. Any neighbor read panics, which is simultaneously the
/// declaration's enforcement and the reason a shard worker needs no
/// access to other shards' chunks.
#[derive(Debug)]
pub struct ShardTxn<'t, S> {
    ctx: &'t NodeCtx,
    me: &'t mut S,
    rec: &'t mut TouchRecord,
}

impl<'t, S> ShardTxn<'t, S> {
    /// Opens the transaction over one slot of a shard's chunk.
    pub fn new(ctx: &'t NodeCtx, me: &'t mut S, rec: &'t mut TouchRecord) -> ShardTxn<'t, S> {
        ShardTxn { ctx, me, rec }
    }
}

impl<S> NodeView<S> for ShardTxn<'_, S> {
    fn ctx(&self) -> &NodeCtx {
        self.ctx
    }

    fn state(&self) -> &S {
        &*self.me
    }

    fn neighbor(&self, l: Port) -> &S {
        panic!(
            "apply_in_place declared ReadScope::None but read neighbor port {} \
             (node {:?})",
            l.index(),
            self.ctx.id
        );
    }
}

impl<S> StateTxn<S> for ShardTxn<'_, S> {
    fn state_mut(&mut self) -> &mut S {
        self.rec.mark_wrote();
        self.me
    }

    fn touch_port(&mut self, l: Port) {
        self.rec.touch_port(l, self.ctx.degree);
    }

    fn touch_all_ports(&mut self) {
        self.rec.touch_all_ports();
    }

    fn mark_unobservable(&mut self) {
        self.rec.mark_unobservable();
    }

    fn note_self(&mut self, bits: u64) {
        self.rec.note_self(bits);
    }

    fn commit(&mut self) {
        self.rec.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> Network {
        Network::new(sno_graph::generators::path(n), NodeId::new(0))
    }

    #[test]
    fn begin_round_is_a_bulk_invalidation() {
        let mut store = ConfigStore::new(vec![10u32, 20, 30]);
        let g1 = store.begin_round();
        store.plan_write(1, 0b1);
        store.preserve(1);
        store.stamp_write(1);
        assert!(store.planned_conflict(1, 0b1));
        let g2 = store.begin_round();
        assert_eq!(g2, g1 + 1);
        // Everything from the previous round is invalid without any
        // per-slot work having happened.
        assert!(!store.planned_conflict(1, u64::MAX));
        assert_eq!(store.clone_count(), 1);
    }

    #[test]
    fn preserve_is_idempotent_and_pooled() {
        let mut store = ConfigStore::new(vec![1u32, 2, 3]);
        store.begin_round();
        store.preserve(2);
        store.preserve(2);
        assert_eq!(store.clone_count(), 1, "idempotent within a round");
        store.begin_round();
        store.preserve(0);
        assert_eq!(store.clone_count(), 2, "pool slot reused across rounds");
    }

    #[test]
    fn delta_txn_reads_stash_for_conflicting_writers_only() {
        let net = net(3);
        let mut store = ConfigStore::new(vec![10u32, 20, 30]);
        store.begin_round();
        // Writer 0 is preserved and then written in place.
        store.preserve(0);
        store.slots_mut()[0] = 99;
        store.stamp_write(0);
        // Writer 2 is written without preservation (declared-disjoint).
        store.slots_mut()[2] = 77;
        store.stamp_write(2);
        let mut rec = TouchRecord::new();
        let txn = store.delta_txn(&net, NodeId::new(1), ReadScope::All, &mut rec);
        assert_eq!(*txn.state(), 20);
        assert_eq!(*txn.neighbor(Port::new(0)), 10, "stash: pre-round value");
        assert_eq!(*txn.neighbor(Port::new(1)), 77, "unpreserved: live value");
    }

    #[test]
    fn delta_txn_writes_in_place_and_records_touches() {
        let net = net(3);
        let mut store = ConfigStore::new(vec![1u32, 2, 3]);
        store.begin_round();
        let mut rec = TouchRecord::new();
        {
            let mut txn = store.delta_txn(&net, NodeId::new(1), ReadScope::None, &mut rec);
            *txn.state_mut() = 42;
            txn.touch_port(Port::new(1));
            txn.commit();
        }
        store.stamp_write(1);
        assert_eq!(store.slice(), &[1, 42, 3]);
        assert!(rec.is_committed());
    }

    #[test]
    #[should_panic(expected = "outside its declared ApplyProfile read scope")]
    fn delta_txn_enforces_one_port_scope() {
        let net = net(3);
        let mut store = ConfigStore::new(vec![1u32, 2, 3]);
        store.begin_round();
        let mut rec = TouchRecord::new();
        let txn = store.delta_txn(&net, NodeId::new(1), ReadScope::One(Port::new(0)), &mut rec);
        let _ = txn.neighbor(Port::new(1));
    }

    #[test]
    #[should_panic(expected = "declared ReadScope::None")]
    fn shard_txn_panics_on_any_neighbor_read() {
        let net = net(2);
        let mut slot = 5u32;
        let mut rec = TouchRecord::new();
        let txn = ShardTxn::new(net.ctx(NodeId::new(0)), &mut slot, &mut rec);
        let _ = txn.neighbor(Port::new(0));
    }

    #[test]
    fn shard_txn_writes_its_slot() {
        let net = net(2);
        let mut slot = 5u32;
        let mut rec = TouchRecord::new();
        {
            let mut txn = ShardTxn::new(net.ctx(NodeId::new(1)), &mut slot, &mut rec);
            assert_eq!(*txn.state(), 5);
            *txn.state_mut() = 9;
            txn.mark_unobservable();
            txn.commit();
        }
        assert_eq!(slot, 9);
        assert!(rec.is_committed());
    }

    #[test]
    fn split_shards_chunks_cover_the_slots() {
        let mut store = ConfigStore::new((0..10u32).collect::<Vec<_>>());
        let chunks = store.split_shards(&[0, 3, 7, 10]);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], &[0, 1, 2]);
        assert_eq!(chunks[2], &[7, 8, 9]);
    }
}
