//! The simulation loop: computations, moves, steps, and rounds.

use rand::RngCore;
use sno_graph::NodeId;

use crate::daemon::{Daemon, EnabledNode};
use crate::network::Network;
use crate::protocol::{ConfigView, Protocol};

/// What happened in one computation step.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome<A> {
    /// No processor was enabled — the configuration is *terminal* (for
    /// silent protocols, the stabilized fixpoint).
    Silent,
    /// The listed processors executed the listed actions (evaluated against
    /// the pre-step configuration, written atomically together).
    Executed(Vec<(NodeId, A)>),
}

impl<A> StepOutcome<A> {
    /// `true` iff no action was executed because none was enabled.
    pub fn is_silent(&self) -> bool {
        matches!(self, StepOutcome::Silent)
    }
}

/// Outcome of a bounded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Whether the stop condition was met within the step budget.
    pub converged: bool,
    /// Daemon selections performed during this run.
    pub steps: u64,
    /// Individual action executions during this run.
    pub moves: u64,
    /// Complete asynchronous rounds elapsed during this run.
    pub rounds: u64,
}

/// A running instance of a protocol on a network.
///
/// Owns the current configuration (one state per processor) and the
/// move/step/round accounting. The protocol and network are borrowed so
/// many simulations can share them.
///
/// # Example
///
/// ```
/// use sno_engine::{Network, Simulation};
/// use sno_engine::daemon::Synchronous;
/// use sno_engine::examples::HopDistance;
///
/// let net = Network::new(sno_graph::generators::star(6), sno_graph::NodeId::new(0));
/// let mut sim = Simulation::from_initial(&net, HopDistance);
/// let run = sim.run_until_silent(&mut Synchronous::new(), 100);
/// assert!(run.converged);
/// ```
#[derive(Debug, Clone)]
pub struct Simulation<'a, P: Protocol> {
    net: &'a Network,
    protocol: P,
    config: Vec<P::State>,
    steps: u64,
    moves: u64,
    rounds: u64,
    /// Processors enabled at the start of the current round that have not
    /// yet executed or been neutralized.
    round_frontier: Vec<bool>,
    frontier_count: usize,
    // Reusable buffers: `step` runs two enabled-set sweeps per computation
    // step, and campaign fleets (sno-lab) run millions of steps per
    // simulation object — keeping these hot avoids per-step allocation.
    scratch_enabled: Vec<EnabledNode>,
    scratch_actions: Vec<P::Action>,
    scratch_node_mask: Vec<bool>,
    scratch_chosen: Vec<bool>,
}

impl<'a, P: Protocol> Simulation<'a, P> {
    /// Starts a simulation from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.len()` differs from the network size.
    pub fn new(net: &'a Network, protocol: P, config: Vec<P::State>) -> Self {
        assert_eq!(
            config.len(),
            net.node_count(),
            "configuration size mismatch"
        );
        let mut sim = Simulation {
            net,
            protocol,
            config,
            steps: 0,
            moves: 0,
            rounds: 0,
            round_frontier: vec![false; net.node_count()],
            frontier_count: 0,
            scratch_enabled: Vec::new(),
            scratch_actions: Vec::new(),
            scratch_node_mask: vec![false; net.node_count()],
            scratch_chosen: Vec::new(),
        };
        sim.reset_round_frontier();
        sim
    }

    /// Starts from the protocol's canonical initial state at every node.
    pub fn from_initial(net: &'a Network, protocol: P) -> Self {
        let config = net
            .nodes()
            .map(|p| protocol.initial_state(net.ctx(p)))
            .collect();
        Self::new(net, protocol, config)
    }

    /// Starts from an adversarially arbitrary configuration — the
    /// self-stabilization entry point ("irrespective of the initial
    /// state").
    pub fn from_random(net: &'a Network, protocol: P, rng: &mut dyn RngCore) -> Self {
        let config = net
            .nodes()
            .map(|p| protocol.random_state(net.ctx(p), rng))
            .collect();
        Self::new(net, protocol, config)
    }

    /// The network this simulation runs on.
    pub fn network(&self) -> &Network {
        self.net
    }

    /// The protocol instance.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The current configuration (states indexed by node).
    pub fn config(&self) -> &[P::State] {
        &self.config
    }

    /// The state of one processor.
    pub fn state(&self, p: NodeId) -> &P::State {
        &self.config[p.index()]
    }

    /// Overwrites the state of one processor (used by the fault injector;
    /// resets the round accounting since the adversary struck).
    pub fn set_state(&mut self, p: NodeId, s: P::State) {
        self.config[p.index()] = s;
        self.reset_round_frontier();
    }

    /// Total daemon selections so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Total action executions so far.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Total complete asynchronous rounds so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Zeroes the step/move/round counters (e.g. to measure only the phase
    /// after an underlying layer has stabilized, as the paper's bounds do).
    pub fn reset_counters(&mut self) {
        self.steps = 0;
        self.moves = 0;
        self.rounds = 0;
        self.reset_round_frontier();
    }

    /// Re-starts this simulation from a fresh adversarially arbitrary
    /// configuration, reusing every allocation (configuration vector,
    /// round frontier, step scratch). Equivalent to building a new
    /// [`Simulation::from_random`] on the same network and protocol —
    /// campaign fleets use this to run thousands of seeds without
    /// re-allocating.
    pub fn reinit_random(&mut self, rng: &mut dyn RngCore) {
        for p in self.net.nodes() {
            self.config[p.index()] = self.protocol.random_state(self.net.ctx(p), rng);
        }
        self.steps = 0;
        self.moves = 0;
        self.rounds = 0;
        self.reset_round_frontier();
    }

    /// Re-starts from the protocol's canonical initial state, reusing every
    /// allocation (the in-place analogue of [`Simulation::from_initial`]).
    pub fn reinit_initial(&mut self) {
        for p in self.net.nodes() {
            self.config[p.index()] = self.protocol.initial_state(self.net.ctx(p));
        }
        self.steps = 0;
        self.moves = 0;
        self.rounds = 0;
        self.reset_round_frontier();
    }

    /// The processors with at least one enabled action, with action counts.
    pub fn enabled_nodes(&self) -> Vec<EnabledNode> {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        self.fill_enabled(&mut scratch, &mut out);
        out
    }

    /// Writes the enabled set into `out` using `actions` as guard scratch.
    fn fill_enabled(&self, actions: &mut Vec<P::Action>, out: &mut Vec<EnabledNode>) {
        out.clear();
        for p in self.net.nodes() {
            actions.clear();
            let view = ConfigView::new(self.net, p, &self.config);
            self.protocol.enabled(&view, actions);
            if !actions.is_empty() {
                out.push(EnabledNode {
                    node: p,
                    action_count: actions.len(),
                });
            }
        }
    }

    /// The enabled actions of one processor in the current configuration.
    pub fn enabled_actions(&self, p: NodeId) -> Vec<P::Action> {
        let mut out = Vec::new();
        let view = ConfigView::new(self.net, p, &self.config);
        self.protocol.enabled(&view, &mut out);
        out
    }

    fn reset_round_frontier(&mut self) {
        let mut enabled = std::mem::take(&mut self.scratch_enabled);
        let mut actions = std::mem::take(&mut self.scratch_actions);
        self.fill_enabled(&mut actions, &mut enabled);
        self.round_frontier.iter_mut().for_each(|b| *b = false);
        self.frontier_count = enabled.len();
        for e in &enabled {
            self.round_frontier[e.node.index()] = true;
        }
        self.scratch_enabled = enabled;
        self.scratch_actions = actions;
    }

    /// Performs one computation step driven by `daemon`.
    ///
    /// Guards are evaluated against the pre-step configuration; all selected
    /// writes are committed together (composite atomicity under the
    /// distributed daemon).
    ///
    /// # Panics
    ///
    /// Panics if the daemon violates its contract (empty selection,
    /// duplicate nodes, or out-of-range indices).
    pub fn step(&mut self, daemon: &mut impl Daemon) -> StepOutcome<P::Action> {
        let mut enabled = std::mem::take(&mut self.scratch_enabled);
        let mut actions = std::mem::take(&mut self.scratch_actions);
        self.fill_enabled(&mut actions, &mut enabled);
        if enabled.is_empty() {
            self.scratch_enabled = enabled;
            self.scratch_actions = actions;
            return StepOutcome::Silent;
        }
        let choices = daemon.select(&enabled);
        assert!(!choices.is_empty(), "daemon must select a non-empty subset");

        // Resolve choices to (node, action) against the old configuration.
        let mut writes: Vec<(NodeId, P::State, P::Action)> = Vec::with_capacity(choices.len());
        self.scratch_chosen.clear();
        self.scratch_chosen.resize(enabled.len(), false);
        let mut chosen = std::mem::take(&mut self.scratch_chosen);
        for c in &choices {
            assert!(c.enabled_index < enabled.len(), "daemon index out of range");
            assert!(
                !std::mem::replace(&mut chosen[c.enabled_index], true),
                "daemon selected the same processor twice"
            );
            let node = enabled[c.enabled_index].node;
            let view = ConfigView::new(self.net, node, &self.config);
            actions.clear();
            self.protocol.enabled(&view, &mut actions);
            assert!(
                c.action_index < actions.len(),
                "daemon action index out of range"
            );
            let action = actions.swap_remove(c.action_index);
            let new_state = self.protocol.apply(&view, &action);
            writes.push((node, new_state, action));
        }
        self.scratch_chosen = chosen;

        // Commit all writes atomically.
        let mut executed = Vec::with_capacity(writes.len());
        for (node, state, action) in writes {
            self.config[node.index()] = state;
            executed.push((node, action));
        }
        self.steps += 1;
        self.moves += executed.len() as u64;

        // Round accounting: remove executed processors from the frontier,
        // then neutralize frontier processors that are no longer enabled.
        for (node, _) in &executed {
            if std::mem::replace(&mut self.round_frontier[node.index()], false) {
                self.frontier_count -= 1;
            }
        }
        if self.frontier_count > 0 {
            self.fill_enabled(&mut actions, &mut enabled);
            let mut enabled_mask = std::mem::take(&mut self.scratch_node_mask);
            enabled_mask.iter_mut().for_each(|b| *b = false);
            for e in &enabled {
                enabled_mask[e.node.index()] = true;
            }
            for (frontier, enabled) in self.round_frontier.iter_mut().zip(&enabled_mask) {
                if *frontier && !enabled {
                    *frontier = false;
                    self.frontier_count -= 1;
                }
            }
            self.scratch_node_mask = enabled_mask;
        }
        self.scratch_enabled = enabled;
        self.scratch_actions = actions;
        if self.frontier_count == 0 {
            self.rounds += 1;
            self.reset_round_frontier();
        }

        StepOutcome::Executed(executed)
    }

    /// Runs until `stop` holds on the configuration or `max_steps` elapse.
    ///
    /// Returns counters for *this run only*. A terminal (silent)
    /// configuration that does not satisfy `stop` reports
    /// `converged == false`.
    pub fn run_until(
        &mut self,
        daemon: &mut impl Daemon,
        max_steps: u64,
        mut stop: impl FnMut(&[P::State]) -> bool,
    ) -> RunResult {
        let (s0, m0, r0) = (self.steps, self.moves, self.rounds);
        let mut converged = stop(&self.config);
        let mut budget = max_steps;
        while !converged && budget > 0 {
            if self.step(daemon).is_silent() {
                break;
            }
            budget -= 1;
            converged = stop(&self.config);
        }
        RunResult {
            converged,
            steps: self.steps - s0,
            moves: self.moves - m0,
            rounds: self.rounds - r0,
        }
    }

    /// Runs until no processor is enabled (silence) or `max_steps` elapse.
    pub fn run_until_silent(&mut self, daemon: &mut impl Daemon, max_steps: u64) -> RunResult {
        let (s0, m0, r0) = (self.steps, self.moves, self.rounds);
        let mut converged = false;
        for _ in 0..max_steps {
            if self.step(daemon).is_silent() {
                converged = true;
                break;
            }
        }
        // A freshly silent configuration may not have been probed yet.
        if !converged && self.enabled_nodes().is_empty() {
            converged = true;
        }
        RunResult {
            converged,
            steps: self.steps - s0,
            moves: self.moves - m0,
            rounds: self.rounds - r0,
        }
    }

    /// Runs for exactly `k` complete rounds (or until silent/`max_steps`).
    pub fn run_rounds(&mut self, daemon: &mut impl Daemon, k: u64, max_steps: u64) -> RunResult {
        let (s0, m0, r0) = (self.steps, self.moves, self.rounds);
        let target = self.rounds + k;
        let mut silent = false;
        let mut budget = max_steps;
        while self.rounds < target && budget > 0 {
            if self.step(daemon).is_silent() {
                silent = true;
                break;
            }
            budget -= 1;
        }
        RunResult {
            converged: self.rounds >= target || silent,
            steps: self.steps - s0,
            moves: self.moves - m0,
            rounds: self.rounds - r0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{CentralRoundRobin, DistributedRandom, Synchronous};
    use crate::examples::{hop_distance_legit, HopDistance};

    fn net(n: usize) -> Network {
        Network::new(sno_graph::generators::path(n), NodeId::new(0))
    }

    #[test]
    fn silent_when_nothing_enabled() {
        let net = net(3);
        // Already-correct distances: nothing to do.
        let mut sim = Simulation::new(&net, HopDistance, vec![0, 1, 2]);
        assert!(sim.step(&mut CentralRoundRobin::new()).is_silent());
        assert_eq!(sim.steps(), 0);
    }

    #[test]
    fn counters_accumulate() {
        let net = net(5);
        let mut sim = Simulation::from_initial(&net, HopDistance);
        let run = sim.run_until_silent(&mut Synchronous::new(), 1_000);
        assert!(run.converged);
        assert!(run.moves >= run.steps, "moves dominate steps");
        assert_eq!(sim.steps(), run.steps);
    }

    #[test]
    fn rounds_advance_under_round_robin() {
        let net = net(6);
        let mut sim = Simulation::from_initial(&net, HopDistance);
        let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 10_000);
        assert!(run.converged);
        // Distance propagation on a path takes about one round per hop.
        assert!(run.rounds >= 1, "at least one round elapsed");
        assert!(
            run.rounds <= 12,
            "rounds bounded by O(n): got {}",
            run.rounds
        );
    }

    #[test]
    fn synchronous_converges_in_height_rounds() {
        let g = sno_graph::generators::path(8);
        let net = Network::new(g, NodeId::new(0));
        let mut sim = Simulation::from_initial(&net, HopDistance);
        let run = sim.run_until_silent(&mut Synchronous::new(), 100);
        assert!(run.converged);
        // One synchronous step is exactly one round here.
        assert!(run.steps <= 8, "steps {} within height bound", run.steps);
        assert!(hop_distance_legit(&net, sim.config()));
    }

    #[test]
    fn run_until_predicate_stops_early() {
        let net = net(6);
        let mut sim = Simulation::from_initial(&net, HopDistance);
        let run = sim.run_until(&mut CentralRoundRobin::new(), 10_000, |c| c[1] == 1);
        assert!(run.converged);
    }

    #[test]
    fn run_until_reports_failure_on_budget() {
        let net = net(6);
        let mut sim = Simulation::from_initial(&net, HopDistance);
        let run = sim.run_until(&mut CentralRoundRobin::new(), 1, |c| c[5] == 5);
        assert!(!run.converged);
    }

    #[test]
    fn distributed_daemon_commits_simultaneous_writes() {
        let net = net(10);
        let mut sim = Simulation::from_initial(&net, HopDistance);
        let mut daemon = DistributedRandom::seeded(5);
        let run = sim.run_until_silent(&mut daemon, 100_000);
        assert!(run.converged);
        assert!(hop_distance_legit(&net, sim.config()));
    }

    #[test]
    fn set_state_resets_round_accounting() {
        let net = net(4);
        let mut sim = Simulation::from_initial(&net, HopDistance);
        sim.run_until_silent(&mut CentralRoundRobin::new(), 1_000);
        sim.set_state(NodeId::new(2), 99);
        assert!(!sim.enabled_nodes().is_empty(), "fault re-enables work");
        let run = sim.run_until_silent(&mut CentralRoundRobin::new(), 1_000);
        assert!(run.converged);
        assert!(hop_distance_legit(&net, sim.config()));
    }

    #[test]
    fn reinit_random_matches_fresh_from_random() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let net = net(7);
        let mut fresh_rng = StdRng::seed_from_u64(5);
        let mut fresh = Simulation::from_random(&net, HopDistance, &mut fresh_rng);
        let fresh_run = fresh.run_until_silent(&mut CentralRoundRobin::new(), 10_000);

        // A simulation that already ran something else, then re-armed.
        let mut reused = Simulation::from_initial(&net, HopDistance);
        reused.run_until_silent(&mut CentralRoundRobin::new(), 10_000);
        let mut reused_rng = StdRng::seed_from_u64(5);
        reused.reinit_random(&mut reused_rng);
        let reused_run = reused.run_until_silent(&mut CentralRoundRobin::new(), 10_000);

        assert_eq!(fresh_run, reused_run, "identical counters from equal seeds");
        assert_eq!(fresh.config(), reused.config(), "identical final configs");
        assert_eq!(reused.steps(), reused_run.steps, "counters were zeroed");
    }

    #[test]
    fn reinit_initial_matches_from_initial() {
        use rand::SeedableRng;

        let net = net(5);
        let mut reused =
            Simulation::from_random(&net, HopDistance, &mut rand::rngs::StdRng::seed_from_u64(9));
        reused.run_until_silent(&mut Synchronous::new(), 1_000);
        reused.reinit_initial();
        let mut fresh = Simulation::from_initial(&net, HopDistance);
        assert_eq!(fresh.config(), reused.config());
        let a = fresh.run_until_silent(&mut Synchronous::new(), 1_000);
        let b = reused.run_until_silent(&mut Synchronous::new(), 1_000);
        assert_eq!(a, b);
    }

    #[test]
    fn simulation_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Simulation<'static, HopDistance>>();
    }

    #[test]
    fn run_rounds_runs_requested_rounds() {
        let net = net(12);
        let mut sim = Simulation::from_initial(&net, HopDistance);
        let run = sim.run_rounds(&mut CentralRoundRobin::new(), 2, 10_000);
        assert!(run.converged);
        assert!(run.rounds >= 2 || sim.enabled_nodes().is_empty());
    }
}
